"""SLO report: one loadtest run reduced to a versioned JSON artifact.

The report is the service layer's analogue of the sweep records in
:mod:`repro.analysis.records`: a self-describing, schema-versioned JSON
document that CI can gate on and the trend ledger can track.  Its
determinism contract is explicit: every field except the ``wall_clock``
section is a pure function of the loadtest's seeded inputs, so
:func:`deterministic_view` (the report minus ``wall_clock``) must be
byte-identical across runs and machines — the committed
``benchmarks/SLO_baseline.json`` is diffed exactly that way in CI.

Latency percentiles are computed here from the full response list with
the nearest-rank rule (not from the decimated
:class:`~repro.obs.metrics.Histogram`), because the committed baseline
should pin exact values; the metrics snapshot rides along for the trend
ledger and for operators who want the full registry.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.service.loadgen import LoadtestResult
from repro.service.session import (
    COMPLETED,
    FAILED,
    FAILURE_CODES,
    REJECTED,
    REJECTION_CODES,
)
from repro.service.spans import PHASE_NAMES, span_digest

__all__ = [
    "SLO_SCHEMA_VERSION",
    "SLO_TREND_METRICS",
    "SLOTrend",
    "append_slo_history",
    "build_report",
    "deterministic_view",
    "load_report",
    "load_slo_history",
    "render_report",
    "render_slo_trend",
    "slo_history_entry",
    "summarize_slo_trend",
    "write_report",
]

SLO_SCHEMA_VERSION = 1

_HISTORY_KIND = "repro-slo-history"

#: Fields excluded from the determinism contract (and the CI byte-diff).
_NONDETERMINISTIC_KEYS = ("wall_clock",)


def _quantile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _latency_attribution(result: LoadtestResult) -> Optional[Dict[str, Any]]:
    """Fold the run's span trees into the ``latency_attribution`` section.

    Phase totals accumulate over *admitted* sessions (completed + failed)
    in response order; shares are fractions of the summed end-to-end
    latency.  Per-percentile rows pick the nearest-rank completed session
    (ties broken by session id, matching the ``latency`` section's
    nearest-rank convention) and show where *that* session's budget went.
    Per-session exactness — phase times summing bit-for-bit to the
    session latency — is the
    :func:`~repro.service.spans.attribute_phases` contract.
    """
    if result.spans is None:
        return None
    by_id = {
        tree.attrs.get("session_id"): tree for tree in result.spans
    }
    admitted = [
        r for r in result.responses if r.status in (COMPLETED, FAILED)
    ]
    totals = {name: 0.0 for name in PHASE_NAMES}
    total_latency = 0.0
    unmatched = 0
    for response in admitted:
        tree = by_id.get(response.session_id)
        if tree is None:
            unmatched += 1
            continue
        phases = tree.attrs.get("phases", {})
        for name in PHASE_NAMES:
            totals[name] += phases.get(name, 0.0)
        total_latency += response.latency

    def share(seconds: float) -> float:
        return seconds / total_latency if total_latency > 0 else 0.0

    completed = sorted(
        (r for r in result.responses if r.status == COMPLETED),
        key=lambda r: (r.latency, r.session_id),
    )
    percentiles: Dict[str, Any] = {}
    for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
        if not completed:
            percentiles[label] = None
            continue
        index = min(len(completed) - 1, int(q * len(completed)))
        pick = completed[index]
        tree = by_id.get(pick.session_id)
        percentiles[label] = {
            "session_id": pick.session_id,
            "latency": pick.latency,
            "attempts": pick.attempts,
            "phases": (
                dict(tree.attrs.get("phases", {})) if tree is not None
                else None
            ),
        }
    snapshot = result.service_snapshot
    return {
        "phases": {
            name: {"seconds": totals[name], "share": share(totals[name])}
            for name in PHASE_NAMES
        },
        "total_latency_seconds": total_latency,
        "sessions_attributed": len(admitted) - unmatched,
        "sessions_unmatched": unmatched,
        "percentiles": percentiles,
        "breaker_timelines": snapshot.get("breaker_timelines", {}),
        "spans": {
            "sessions": len(result.spans),
            "digest": span_digest(result.spans),
        },
    }


def build_report(
    result: LoadtestResult,
    *,
    label: str = "",
    slo_target_latency: float = 1.0,
    chaos_stack: Optional[str] = None,
) -> Dict[str, Any]:
    """Reduce one :class:`~repro.service.loadgen.LoadtestResult` to JSON.

    ``slo_target_latency`` defines attainment: the fraction of *offered*
    sessions that completed within the target — rejected and failed
    sessions count against the SLO, which is the point of measuring it
    under overload.
    """
    if slo_target_latency <= 0:
        raise ConfigurationError(
            f"slo_target_latency must be > 0, got {slo_target_latency}"
        )
    offered = result.sessions
    completed = [r for r in result.responses if r.status == COMPLETED]
    rejected = [r for r in result.responses if r.status == REJECTED]
    failed = [r for r in result.responses if r.status == FAILED]
    latencies = sorted(r.latency for r in completed)
    within = sum(1 for value in latencies if value <= slo_target_latency)
    config = result.config
    report = {
        "v": SLO_SCHEMA_VERSION,
        "label": label,
        "seed": result.seed,
        "profile": result.profile,
        "chaos_stack": chaos_stack,
        "config": {
            "shards": config.shards,
            "workers_per_shard": config.workers_per_shard,
            "queue_capacity": config.queue_capacity,
            "worker_steps_per_sec": config.worker_steps_per_sec,
            "vectorized_speedup": config.vectorized_speedup,
            "attempt_timeout": config.attempt_timeout,
            "max_attempts": config.max_attempts,
            "degrade_watermark": config.degrade_watermark,
        },
        "sessions": {
            "offered": offered,
            # Admitted counts only *observed* admitted outcomes; sessions
            # with no response at all (submit() raised, or a response slot
            # stayed None) land in "missing" instead of being silently
            # presumed admitted, so offered == admitted + rejected +
            # missing always holds.
            "admitted": len(completed) + len(failed),
            "missing": offered - len(result.responses),
            "completed": len(completed),
            "rejected": {
                code: sum(1 for r in rejected if r.code == code)
                for code in REJECTION_CODES
            },
            "failed": {
                code: sum(1 for r in failed if r.code == code)
                for code in FAILURE_CODES
            },
            "degraded": sum(1 for r in completed if r.degraded),
            "unexpected_errors": result.unexpected_errors,
        },
        "latency": {
            "p50": _quantile(latencies, 0.50),
            "p95": _quantile(latencies, 0.95),
            "p99": _quantile(latencies, 0.99),
            "mean": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "max": latencies[-1] if latencies else 0.0,
        },
        "duration_virtual_seconds": result.duration,
        "goodput_per_sec": (
            len(completed) / result.duration if result.duration > 0 else 0.0
        ),
        "shed_rate": len(rejected) / offered if offered else 0.0,
        "slo": {
            "target_latency": slo_target_latency,
            "attainment": within / offered if offered else 0.0,
        },
        "breakers": result.service_snapshot["breakers"],
        "degraded_mode": result.service_snapshot["degraded_mode"],
        "latency_attribution": _latency_attribution(result),
        "metrics": result.metrics.to_json(),
        "wall_clock": {
            "generated_unix": time.time(),
        },
    }
    return report


def deterministic_view(report: Dict[str, Any]) -> Dict[str, Any]:
    """The report minus its wall-clock fields — the byte-diffable part."""
    return {
        key: value
        for key, value in report.items()
        if key not in _NONDETERMINISTIC_KEYS
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write a report as canonical JSON (sorted keys, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    """Read a report back, refusing foreign schema versions."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if not isinstance(report, dict) or report.get("v") != SLO_SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported SLO report version "
            f"{report.get('v') if isinstance(report, dict) else report!r}; "
            f"this build reads version {SLO_SCHEMA_VERSION}"
        )
    return report


def render_report(report: Dict[str, Any]) -> str:
    """A terminal-friendly summary of one SLO report."""
    sessions = report["sessions"]
    latency = report["latency"]
    lines = [
        f"SLO report{' ' + report['label'] if report['label'] else ''} "
        f"(profile={report['profile']}, seed={report['seed']})",
        f"  sessions   offered={sessions['offered']} "
        f"admitted={sessions['admitted']} "
        f"completed={sessions['completed']} "
        f"degraded={sessions['degraded']} "
        f"missing={sessions['missing']} "
        f"unexpected={sessions['unexpected_errors']}",
        f"  rejected   " + " ".join(
            f"{code}={count}"
            for code, count in sorted(sessions["rejected"].items())
        ),
        f"  failed     " + " ".join(
            f"{code}={count}"
            for code, count in sorted(sessions["failed"].items())
        ),
        f"  latency    p50={latency['p50']:.4f}s p95={latency['p95']:.4f}s "
        f"p99={latency['p99']:.4f}s max={latency['max']:.4f}s",
        f"  goodput    {report['goodput_per_sec']:.1f}/s over "
        f"{report['duration_virtual_seconds']:.2f} virtual seconds",
        f"  shed rate  {report['shed_rate']:.3f}",
        f"  slo        {report['slo']['attainment']:.3f} within "
        f"{report['slo']['target_latency']:.2f}s",
    ]
    for shard, breaker in sorted(report["breakers"].items()):
        lines.append(
            f"  breaker[{shard}] state={breaker['state']} "
            f"opened={breaker['opened']} "
            f"half_opened={breaker['half_opened']} "
            f"closed_again={breaker['closed_again']}"
        )
    degraded = report["degraded_mode"]
    lines.append(
        f"  degraded   entered={degraded['entered']} "
        f"virtual_seconds={degraded['virtual_seconds']:.3f}"
    )
    attribution = report.get("latency_attribution")
    if attribution is not None:
        phases = attribution["phases"]
        lines.append(
            "  budget     " + " ".join(
                f"{name}={phases[name]['share']:.1%}"
                for name in sorted(phases)
                if phases[name]["seconds"] > 0 or name != "unattributed"
            )
        )
        for label in ("p50", "p95", "p99"):
            row = attribution["percentiles"].get(label)
            if row is None or row.get("phases") is None:
                continue
            breakdown = row["phases"]
            lines.append(
                f"  {label} budget "
                f"session={row['session_id']} "
                f"queue={breakdown.get('queue-wait', 0.0):.4f}s "
                f"worker={breakdown.get('worker-call', 0.0):.4f}s "
                f"backoff={breakdown.get('backoff', 0.0):.4f}s "
                f"stall={breakdown.get('stall', 0.0):.4f}s"
            )
        lines.append(
            f"  spans      {attribution['spans']['sessions']} tree(s) "
            f"digest={attribution['spans']['digest'][:19]}..."
        )
    return "\n".join(lines)


def slo_history_entry(report: Dict[str, Any]) -> Dict[str, Any]:
    """Distill one SLO report to a trend-ledger line.

    The same append-only JSONL discipline as the bench ledger
    (:mod:`repro.obs.trend`): one compact line per run, carrying the
    handful of numbers worth trending (tail latency, shed rate, goodput,
    attainment) plus enough identity (seed, profile, git SHA) to explain
    a shift.
    """
    from repro.obs.bench import _git_sha

    if "sessions" not in report or "latency" not in report:
        raise ConfigurationError(
            "not an SLO report: missing 'sessions'/'latency'; build one "
            "with build_report"
        )
    return {
        "v": SLO_SCHEMA_VERSION,
        "kind": _HISTORY_KIND,
        "label": report.get("label", ""),
        "seed": report.get("seed"),
        "profile": report.get("profile"),
        "chaos_stack": report.get("chaos_stack"),
        "git_sha": _git_sha(),
        "created_unix": report.get("wall_clock", {}).get("generated_unix"),
        "p50": report["latency"]["p50"],
        "p99": report["latency"]["p99"],
        "shed_rate": report["shed_rate"],
        "goodput_per_sec": report["goodput_per_sec"],
        "attainment": report["slo"]["attainment"],
        "unexpected_errors": report["sessions"]["unexpected_errors"],
    }


def append_slo_history(report: Dict[str, Any], path: str) -> Dict[str, Any]:
    """Append one report's ledger line to ``path``; returns the entry."""
    import os

    entry = slo_history_entry(report)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True,
                                separators=(",", ":")))
        handle.write("\n")
    return entry


#: The ledger fields `repro slo trend` tracks, in display order.  Latency
#: and shed rate trend *down*-is-better; goodput and attainment up — the
#: renderer shows raw fractional change and leaves the judgement to the
#: reader (the CI gate is the SLO baseline diff, not this table).
SLO_TREND_METRICS: Tuple[str, ...] = (
    "p50", "p99", "shed_rate", "goodput_per_sec", "attainment",
)


def load_slo_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load the SLO ledger, in append order.

    Same contract as the bench ledger reader
    (:func:`repro.obs.trend.load_history`): a missing file is an empty
    history; an unparseable *final* line is a torn append, tolerated with
    a warning; an unparseable line with durable entries after it, or any
    parseable line with a foreign version or kind, raises
    :class:`~repro.errors.ConfigurationError`.
    """
    path = Path(path)
    if not path.exists():
        return []
    entries: List[Dict[str, Any]] = []
    pending_error: Optional[Tuple[int, str]] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if pending_error is not None:
                raise ConfigurationError(
                    f"SLO history {str(path)!r} line {pending_error[0]} "
                    f"is unreadable but later entries exist: "
                    f"{pending_error[1]}"
                )
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as error:
                pending_error = (line_number, str(error))
                continue
            if not isinstance(entry, dict) \
                    or entry.get("v") != SLO_SCHEMA_VERSION:
                version = entry.get("v") if isinstance(entry, dict) else None
                raise ConfigurationError(
                    f"unsupported SLO history version {version!r} at "
                    f"{str(path)!r} line {line_number}; this build reads "
                    f"version {SLO_SCHEMA_VERSION}"
                )
            if entry.get("kind") != _HISTORY_KIND:
                raise ConfigurationError(
                    f"{str(path)!r} line {line_number} is not an SLO "
                    f"history entry (kind={entry.get('kind')!r}, "
                    f"expected {_HISTORY_KIND!r})"
                )
            entries.append(entry)
    if pending_error is not None:
        warnings.warn(
            f"SLO history {str(path)!r} ends with a torn line "
            f"(line {pending_error[0]}); dropping it: {pending_error[1]}",
            RuntimeWarning,
            stacklevel=2,
        )
    return entries


@dataclass(frozen=True)
class SLOTrend:
    """One ledger metric's trajectory across the loaded entries."""

    metric: str
    points: int
    first: float
    last: float
    #: Fractional change from the newest entry's predecessor; ``None``
    #: when the metric appears in fewer than two entries or the older
    #: value is zero (fractions of zero are meaningless, not infinite).
    latest_change: Optional[float]
    #: Fractional change across the whole window (first -> last).
    overall_change: Optional[float]


def _slo_fraction(old: float, new: float) -> Optional[float]:
    return (new - old) / old if old > 0 else None


def summarize_slo_trend(
    entries: Sequence[Dict[str, Any]], *, last: Optional[int] = None
) -> List[SLOTrend]:
    """Per-metric first/last/delta summary over the (windowed) ledger.

    ``last`` restricts the window to the newest N entries.  Metrics are
    summarized independently because older ledger lines may predate a
    metric (entries simply lacking the key are skipped for that metric).
    """
    if last is not None:
        if last < 1:
            raise ConfigurationError(f"last must be >= 1, got {last}")
        entries = list(entries)[-last:]
    trends: List[SLOTrend] = []
    for metric in SLO_TREND_METRICS:
        values = [
            float(entry[metric]) for entry in entries if metric in entry
        ]
        if not values:
            continue
        trends.append(SLOTrend(
            metric=metric,
            points=len(values),
            first=values[0],
            last=values[-1],
            latest_change=(
                _slo_fraction(values[-2], values[-1]) if len(values) >= 2
                else None
            ),
            overall_change=(
                _slo_fraction(values[0], values[-1]) if len(values) >= 2
                else None
            ),
        ))
    return trends


def render_slo_trend(
    entries: Sequence[Dict[str, Any]], *, last: Optional[int] = None
) -> str:
    """Human-readable SLO trend table for terminal output."""
    if not entries:
        return ("SLO history is empty; run `repro loadtest --history` to "
                "start the ledger")
    trends = summarize_slo_trend(entries, last=last)
    window = list(entries)[-last:] if last is not None else list(entries)
    first_sha = str(window[0].get("git_sha", "unknown"))[:12]
    last_sha = str(window[-1].get("git_sha", "unknown"))[:12]
    lines = [
        f"SLO trend over {len(window)} entr"
        f"{'y' if len(window) == 1 else 'ies'} "
        f"({first_sha} -> {last_sha})",
        f"{'metric':<18} {'first':>12} {'last':>12} {'latest':>8} "
        f"{'overall':>8}  points",
    ]
    for trend in trends:
        latest = (f"{trend.latest_change:+.1%}"
                  if trend.latest_change is not None else "-")
        overall = (f"{trend.overall_change:+.1%}"
                   if trend.overall_change is not None else "-")
        lines.append(
            f"{trend.metric:<18} {trend.first:>12.4f} "
            f"{trend.last:>12.4f} {latest:>8} {overall:>8}  "
            f"{trend.points}"
        )
    return "\n".join(lines)
