"""Versioned session span trees: where a session's deadline budget went.

PR 4-5 gave the *simulator* attribution (trace -> persona lineage ->
theory-graded step counts); this module gives the *service* the same
treatment.  Every session served by
:class:`~repro.service.service.ConsensusService` emits one deterministic
span tree rooted at a ``session`` span::

    session
    ├── admission      (instant: admitted, or rejected with a code)
    ├── breaker        (instant: breaker state consulted at admission)
    ├── stall          (slow client burning budget before attempt 0)
    └── attempt[i]     (one worker attempt)
        ├── queue-wait (waiting for a worker slot)
        ├── worker-call(the dispatched attempt: timeout, remaining, backend)
        └── backoff    (retry delay after a failed attempt)

Spans carry virtual-time ``start``/``end`` from the serving event loop,
so under the virtual-time loadtest every tree is a pure function of the
seeds.  The flat ``record_calls`` audit list from PR 8 is now a *view*
over these trees (:meth:`SpanRecorder.calls_view`), not a separate
recording path.

**The exact-decomposition contract.**  :func:`attribute_phases` folds a
tree's leaf spans into per-phase totals (``stall``, ``queue-wait``,
``worker-call``, ``backoff``) plus an explicit ``unattributed``
remainder, *in a fixed documented order*, such that
:func:`phase_sum` over the result reproduces the session's end-to-end
latency **exactly** (bit-for-bit float equality, not approximately).
The remainder absorbs float rounding from telescoping the interval
differences; because it is computed as ``latency - measured`` and added
back to ``measured`` at similar magnitude, Sterbenz's lemma makes the
round trip exact.  The SLO ``latency_attribution`` section and its CI
byte-diff stand on this invariant.

Serialization follows the repo-wide schema discipline: every tree's JSON
envelope carries ``"v": SPAN_SCHEMA_VERSION`` and foreign versions are
rejected loudly.  :func:`span_digest` hashes the canonical JSONL bytes —
the same bytes :func:`write_spans_jsonl` persists — so a digest recorded
in an SLO report can be re-checked against a spans file with plain
``sha256sum``.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, List, Optional, Union

from repro.errors import ConfigurationError

__all__ = [
    "PHASE_NAMES",
    "SPAN_NAMES",
    "SPAN_SCHEMA_VERSION",
    "Span",
    "SpanRecorder",
    "attribute_phases",
    "phase_sum",
    "read_spans_jsonl",
    "span_digest",
    "tree_from_json",
    "tree_to_json",
    "write_spans_jsonl",
]

#: Version stamped on every span-tree envelope; bump on incompatible change.
SPAN_SCHEMA_VERSION = 1

_TREE_KIND = "repro-session-spans"

#: The closed vocabulary of span names a tree may contain.
SPAN_NAMES = (
    "session",
    "admission",
    "breaker",
    "stall",
    "attempt",
    "queue-wait",
    "worker-call",
    "backoff",
)

#: Leaf span names that burn deadline budget, in the canonical fold
#: order, plus the explicit float-rounding remainder.  The order is part
#: of the exactness contract: :func:`attribute_phases` accumulates
#: ``measured`` in exactly this order and :func:`phase_sum` re-adds in
#: the same order, so the two agree bit-for-bit.
PHASE_NAMES = ("stall", "queue-wait", "worker-call", "backoff",
               "unattributed")


@dataclass
class Span:
    """One node of a session's span tree.

    Attributes:
        name: one of :data:`SPAN_NAMES`.
        start: virtual-time start (the serving loop's clock).
        end: virtual-time end; equals ``start`` for instant spans.
        status: outcome label (``admitted``, ``rejected``, ``completed``,
            ``timeout``, ``deadline``, a breaker state, ...).
        shard: owning shard index, when the span is shard-bound.
        attrs: small JSON-able payload (codes, timeouts, phase totals).
        children: nested spans in causal order.
    """

    name: str
    start: float
    end: float
    status: str = ""
    shard: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def child(
        self,
        name: str,
        start: float,
        end: Optional[float] = None,
        *,
        status: str = "",
        shard: Optional[int] = None,
        **attrs: Any,
    ) -> "Span":
        """Append and return a child span (``end`` defaults to instant)."""
        span = Span(
            name=name,
            start=start,
            end=start if end is None else end,
            status=status,
            shard=shard,
            attrs=dict(attrs),
        )
        self.children.append(span)
        return span

    def find(self, name: str) -> List["Span"]:
        """All descendant spans (and self) named ``name``, in tree order."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }
        if self.shard is not None:
            data["shard"] = self.shard
        if self.attrs:
            data["attrs"] = self.attrs
        if self.children:
            data["children"] = [child.to_json() for child in self.children]
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Span":
        if not isinstance(data, dict) or "name" not in data:
            raise ConfigurationError(
                f"span must be a JSON object with a 'name', got {data!r}"
            )
        name = str(data["name"])
        if name not in SPAN_NAMES:
            raise ConfigurationError(
                f"unknown span name {name!r}; expected one of "
                f"{', '.join(SPAN_NAMES)}"
            )
        return cls(
            name=name,
            start=float(data["start"]),
            end=float(data["end"]),
            status=str(data.get("status", "")),
            shard=data.get("shard"),
            attrs=dict(data.get("attrs", {})),
            children=[
                cls.from_json(child) for child in data.get("children", ())
            ],
        )


def tree_to_json(root: Span) -> Dict[str, Any]:
    """One session tree as its versioned JSON envelope."""
    if root.name != "session":
        raise ConfigurationError(
            f"a span tree must be rooted at a 'session' span, "
            f"got {root.name!r}"
        )
    return {
        "v": SPAN_SCHEMA_VERSION,
        "kind": _TREE_KIND,
        "session_id": root.attrs.get("session_id"),
        "root": root.to_json(),
    }


def tree_from_json(data: Any) -> Span:
    """Parse one envelope back to its root span, rejecting foreign versions."""
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"span tree must be a JSON object, got {type(data).__name__}"
        )
    if data.get("v") != SPAN_SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported span tree version {data.get('v')!r}; this build "
            f"reads version {SPAN_SCHEMA_VERSION}"
        )
    if data.get("kind") != _TREE_KIND:
        raise ConfigurationError(
            f"not a session span tree: kind={data.get('kind')!r}"
        )
    root = Span.from_json(data["root"])
    if root.name != "session":
        raise ConfigurationError(
            f"span tree root must be a 'session' span, got {root.name!r}"
        )
    return root


# -- exact phase attribution --------------------------------------------------


def attribute_phases(root: Span, latency: float) -> Dict[str, float]:
    """Fold a tree's leaf spans into the canonical phase decomposition.

    Accumulation is in tree order per phase, and ``measured`` is the sum
    ``stall + queue-wait + worker-call + backoff`` evaluated left to
    right; ``unattributed = latency - measured`` absorbs the float
    rounding of telescoping interval differences.  The result satisfies
    ``phase_sum(result) == latency`` *exactly* (see module docstring).
    """
    totals = {name: 0.0 for name in PHASE_NAMES[:-1]}
    for name in totals:
        for span in root.find(name):
            totals[name] += span.duration
    measured = (
        ((totals["stall"] + totals["queue-wait"]) + totals["worker-call"])
        + totals["backoff"]
    )
    totals["unattributed"] = latency - measured
    return totals


def phase_sum(phases: Dict[str, float]) -> float:
    """Re-add a phase decomposition in the canonical order."""
    total = 0.0
    for name in PHASE_NAMES:
        total += phases[name]
    return total


# -- canonical bytes, digest, persistence -------------------------------------


def _canonical_line(root: Span) -> str:
    return json.dumps(tree_to_json(root), sort_keys=True,
                      separators=(",", ":"))


def span_digest(roots: Iterable[Span]) -> str:
    """SHA-256 over the canonical JSONL bytes of ``roots``, in order.

    The hashed bytes are exactly what :func:`write_spans_jsonl` writes,
    so ``sha256sum SPANS_<label>.jsonl`` reproduces the hex part.
    """
    digest = hashlib.sha256()
    for root in roots:
        digest.update(_canonical_line(root).encode("utf-8"))
        digest.update(b"\n")
    return f"sha256:{digest.hexdigest()}"


def write_spans_jsonl(
    roots: Iterable[Span], path: Union[str, Path]
) -> Path:
    """Persist span trees as canonical JSONL (one session per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for root in roots:
            handle.write(_canonical_line(root))
            handle.write("\n")
    return path


def read_spans_jsonl(path: Union[str, Path]) -> List[Span]:
    """Read span trees back, rejecting foreign versions with a line number."""
    path = Path(path)
    roots: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"spans file {str(path)!r} line {line_number} is not "
                    f"JSON: {error}"
                ) from error
            try:
                roots.append(tree_from_json(data))
            except ConfigurationError as error:
                raise ConfigurationError(
                    f"spans file {str(path)!r} line {line_number}: {error}"
                ) from error
    return roots


# -- the recorder -------------------------------------------------------------


class SpanRecorder:
    """Retains finished session trees, oldest-evicting with accounting.

    ``capacity=None`` keeps every tree (the loadtest mode: attribution
    needs all of them); a bounded capacity keeps the newest ``k`` for
    long-lived servers, counting evictions in :attr:`dropped` instead of
    discarding silently — the same contract the
    :class:`~repro.obs.tracing.TraceRecorder` ring buffer honours.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1 (or None), got {capacity}"
            )
        self.capacity = capacity
        self._trees: Deque[Span] = deque(maxlen=capacity)
        #: Trees recorded over the recorder's lifetime, evicted or not.
        self.recorded_total = 0
        #: Trees evicted by the ring bound (0 when capacity is None).
        self.dropped = 0

    def record(self, root: Span) -> None:
        if self.capacity is not None and len(self._trees) == self.capacity:
            self.dropped += 1
        self._trees.append(root)
        self.recorded_total += 1

    def __len__(self) -> int:
        return len(self._trees)

    @property
    def trees(self) -> List[Span]:
        """Retained trees in recording (session completion) order."""
        return list(self._trees)

    def tree_for(self, session_id: int) -> Optional[Span]:
        """The newest retained tree for ``session_id`` (else ``None``)."""
        for root in reversed(self._trees):
            if root.attrs.get("session_id") == session_id:
                return root
        return None

    def calls_view(self) -> List[Dict[str, Any]]:
        """The flat PR 8 ``record_calls`` audit list, derived from spans.

        One entry per ``worker-call`` span, grouped by session in
        completion order then by attempt — the deadline-propagation
        invariant (``timeout <= remaining``) reads the same either way.
        """
        calls: List[Dict[str, Any]] = []
        for root in self._trees:
            for attempt in root.find("attempt"):
                for call in attempt.find("worker-call"):
                    calls.append({
                        "session_id": root.attrs.get("session_id"),
                        "shard": root.shard,
                        "attempt": attempt.attrs.get("attempt"),
                        "timeout": call.attrs.get("timeout"),
                        "remaining": call.attrs.get("remaining"),
                    })
        return calls

    def to_json(self) -> Dict[str, Any]:
        """Retention counters for snapshots and stats replies."""
        return {
            "retained": len(self._trees),
            "recorded_total": self.recorded_total,
            "dropped": self.dropped,
        }
