"""Deterministic open-loop traffic generation for the consensus service.

The loadgen is *open-loop*: arrival times come from a seeded Poisson
process that does not slow down when the service struggles — exactly the
regime where bounded queues and load-shedding matter (a closed-loop
generator self-throttles and can never demonstrate overload collapse).
Four :class:`ArrivalProfile`\\ s cover the ISSUE's traffic shapes:

- ``steady`` — constant-rate Poisson arrivals;
- ``burst`` — a base rate with periodic high-rate bursts (the overload
  story: shedding, degradation, breaker transitions);
- ``slow-clients`` — a fraction of sessions stall between admission and
  first attempt, burning deadline budget while holding queue slots;
- ``drops`` — a fraction of clients hang up before their response lands.

Everything is drawn up front, in arrival order, from one seeded stream:
the full arrival table (times, per-session stalls, drops) exists before
the first coroutine runs, so the traffic is a pure function of
``(profile, sessions, seed)`` and the whole loadtest — run on the
virtual-time loop via :func:`run_loadtest` — is a pure function of its
arguments.  Same seed, same report, any machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import asyncio

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.runtime.faults import ServiceFaultPlan
from repro.runtime.rng import derive_seed
from repro.service.service import ConsensusService, ServiceConfig
from repro.service.session import SessionRequest, SessionResponse
from repro.service.spans import Span
from repro.service.vtime import run_virtual
from repro.service.workers import ALGORITHMS

__all__ = [
    "ArrivalProfile",
    "LoadtestResult",
    "PROFILES",
    "run_loadtest",
]


@dataclass(frozen=True)
class ArrivalProfile:
    """One open-loop traffic shape.

    Attributes:
        name: profile identifier (also seeds the arrival stream).
        rate: baseline arrival rate, sessions per second.
        burst_rate: arrival rate inside burst windows (defaults to
            ``rate``: no bursts).
        burst_every: burst period in seconds; a burst occupies the first
            ``burst_duration`` seconds of each period.
        burst_duration: seconds each burst lasts.
        stall_fraction: fraction of sessions that are slow clients.
        stall_seconds: budget a slow client burns before its first
            attempt.
        drop_fraction: fraction of clients that hang up early.
        drop_after: seconds after arrival at which a dropping client
            hangs up.
    """

    name: str
    rate: float = 100.0
    burst_rate: Optional[float] = None
    burst_every: float = 4.0
    burst_duration: float = 1.0
    stall_fraction: float = 0.0
    stall_seconds: float = 0.0
    drop_fraction: float = 0.0
    drop_after: float = 0.05

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {self.rate}")
        if self.burst_rate is not None and self.burst_rate <= 0:
            raise ConfigurationError(
                f"burst_rate must be > 0, got {self.burst_rate}"
            )
        if self.burst_every <= 0 or self.burst_duration < 0:
            raise ConfigurationError(
                "burst_every must be > 0 and burst_duration >= 0, got "
                f"{self.burst_every}/{self.burst_duration}"
            )
        if self.burst_duration >= self.burst_every:
            raise ConfigurationError(
                f"burst_duration ({self.burst_duration}) must be shorter "
                f"than burst_every ({self.burst_every})"
            )
        for label, fraction in (
            ("stall_fraction", self.stall_fraction),
            ("drop_fraction", self.drop_fraction),
        ):
            if not 0 <= fraction <= 1:
                raise ConfigurationError(
                    f"{label} must be in [0, 1], got {fraction}"
                )

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at traffic time ``t``."""
        if self.burst_rate is None:
            return self.rate
        return (
            self.burst_rate
            if (t % self.burst_every) < self.burst_duration
            else self.rate
        )


#: The stock traffic shapes; ``repro loadtest --profile`` names these.
PROFILES: Dict[str, ArrivalProfile] = {
    "steady": ArrivalProfile(name="steady", rate=150.0),
    "burst": ArrivalProfile(
        name="burst",
        rate=150.0,
        burst_rate=1200.0,
        burst_every=4.0,
        burst_duration=1.5,
    ),
    "slow-clients": ArrivalProfile(
        name="slow-clients",
        rate=150.0,
        stall_fraction=0.2,
        stall_seconds=0.4,
    ),
    "drops": ArrivalProfile(
        name="drops",
        rate=150.0,
        drop_fraction=0.15,
        drop_after=0.02,
    ),
}


@dataclass(frozen=True)
class _Arrival:
    """One pre-drawn session: when it arrives and how the client behaves."""

    at: float
    request: SessionRequest
    stall: float
    drop_after: Optional[float]


@dataclass
class LoadtestResult:
    """Everything one loadtest run produced, in virtual-time terms."""

    profile: str
    seed: int
    sessions: int
    responses: List[SessionResponse]
    duration: float
    service_snapshot: Dict[str, Any]
    metrics: MetricsRegistry
    unexpected_errors: int
    config: ServiceConfig
    #: One span tree per session, in completion order (None only for
    #: results built by code predating the span schema).
    spans: Optional[List[Span]] = None


def _draw_arrivals(
    profile: ArrivalProfile,
    sessions: int,
    seed: int,
    *,
    algorithm: str,
    n: int,
    schedule_family: str,
    deadline: float,
) -> List[_Arrival]:
    """The full traffic table, drawn up front from one seeded stream."""
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; "
            f"choose from {tuple(sorted(ALGORITHMS))}"
        )
    rng = random.Random(derive_seed(seed, "loadgen", profile.name))
    arrivals: List[_Arrival] = []
    t = 0.0
    for index in range(sessions):
        t += rng.expovariate(profile.rate_at(t))
        stall = (
            profile.stall_seconds
            if profile.stall_fraction > 0
            and rng.random() < profile.stall_fraction
            else 0.0
        )
        drop_after = (
            profile.drop_after
            if profile.drop_fraction > 0
            and rng.random() < profile.drop_fraction
            else None
        )
        arrivals.append(_Arrival(
            at=t,
            request=SessionRequest(
                session_id=index,
                algorithm=algorithm,
                n=n,
                schedule_family=schedule_family,
                deadline=deadline,
                seed=seed,
            ),
            stall=stall,
            drop_after=drop_after,
        ))
    return arrivals


async def _drive(
    arrivals: List[_Arrival],
    service: ConsensusService,
) -> Tuple[List[Optional[SessionResponse]], int]:
    """Replay the arrival table against ``service`` on the current loop."""
    loop = asyncio.get_running_loop()
    start = loop.time()
    responses: List[Optional[SessionResponse]] = [None] * len(arrivals)
    errors = 0

    async def one(index: int, arrival: _Arrival) -> None:
        nonlocal errors
        await asyncio.sleep(max(0.0, start + arrival.at - loop.time()))
        drop_at = (
            None
            if arrival.drop_after is None
            else start + arrival.at + arrival.drop_after
        )
        try:
            responses[index] = await service.submit(
                arrival.request,
                client_stall=arrival.stall,
                drop_at=drop_at,
            )
        except Exception:
            # Anything escaping submit() is a service bug; the SLO gate in
            # CI requires this count to be zero.
            errors += 1

    await asyncio.gather(*(
        one(index, arrival) for index, arrival in enumerate(arrivals)
    ))
    return responses, errors


def run_loadtest(
    *,
    profile: str = "steady",
    sessions: int = 1000,
    seed: int = 0,
    config: Optional[ServiceConfig] = None,
    chaos: Optional[ServiceFaultPlan] = None,
    algorithm: str = "sifting",
    n: int = 8,
    schedule_family: str = "permuted",
    deadline: float = 5.0,
) -> LoadtestResult:
    """Run one seeded loadtest to completion on a virtual-time loop.

    Returns instantly in wall-clock terms regardless of how many virtual
    seconds the traffic spans.  The result is a pure function of the
    arguments: same inputs ⇒ identical responses, metrics, and snapshot
    (the determinism the committed SLO baseline is diffed against).
    """
    if sessions < 1:
        raise ConfigurationError(f"sessions must be >= 1, got {sessions}")
    if profile not in PROFILES:
        raise ConfigurationError(
            f"unknown profile {profile!r}; "
            f"choose from {tuple(sorted(PROFILES))}"
        )
    shape = PROFILES[profile]
    resolved = config or ServiceConfig()
    arrivals = _draw_arrivals(
        shape, sessions, seed,
        algorithm=algorithm, n=n,
        schedule_family=schedule_family, deadline=deadline,
    )

    async def main() -> Tuple[
        List[Optional[SessionResponse]], int, Dict[str, Any], float,
        MetricsRegistry, List[Span],
    ]:
        loop = asyncio.get_running_loop()
        metrics = MetricsRegistry()
        service = ConsensusService(resolved, metrics=metrics, chaos=chaos)
        start = loop.time()
        responses, errors = await _drive(arrivals, service)
        end = loop.time()
        return (
            responses, errors, service.snapshot(end), end - start, metrics,
            service.spans.trees,
        )

    responses, errors, snapshot, duration, metrics, spans = \
        run_virtual(main())
    missing = sum(1 for response in responses if response is None)
    return LoadtestResult(
        profile=profile,
        seed=seed,
        sessions=sessions,
        responses=[r for r in responses if r is not None],
        duration=duration,
        service_snapshot=snapshot,
        metrics=metrics,
        unexpected_errors=errors + missing,
        config=resolved,
        spans=spans,
    )
