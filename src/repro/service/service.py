"""The consensus service: admission control, retries, breakers, degradation.

:class:`ConsensusService` turns the repo's simulators into a served
system: clients submit :class:`~repro.service.session.SessionRequest`\\ s,
sharded workers run the rounds, and every robustness decision the ISSUE
names happens here, in one place, in deterministic order:

- **Bounded admission** — each shard admits at most ``queue_capacity``
  concurrent sessions; the rest get an instant
  ``Rejected(code="queue-full")`` instead of unbounded queueing (the
  load-shedding half of backpressure).
- **Deadline budgets** — a session's ``deadline`` is a total budget
  covering queue wait, client stalls, every retry attempt, and backoff.
  Each worker call's timeout is ``min(attempt_timeout, remaining)`` — the
  invariant the deadline-propagation tests pin — so no attempt can
  outlive its session.
- **Retries with capped full jitter** — transient worker failures (chaos
  kills, blackouts, timeouts) retry up to ``max_attempts`` times under
  the same :class:`~repro.runtime.backoff.BackoffPolicy` object the
  parallel sweep engine uses, with per-session seeded jitter.
- **Circuit breakers** — one :class:`~repro.service.breaker.CircuitBreaker`
  per shard, consulted at admission, fed by attempt outcomes; an open
  breaker sheds with ``Rejected(code="breaker-open")``.
- **Graceful degradation** — when queue occupancy stays above
  ``degrade_watermark`` for ``degrade_after`` seconds, eligible sessions
  fall back from the generator simulator to the ~50× vectorized backend;
  the response carries ``degraded=True`` so the downgrade is never
  silent.  Occupancy back under ``degrade_recover`` restores normal mode.

**The cost model.**  Simulated rounds are CPU-bound, so the service never
measures wall clock: an attempt's *service time* is computed from the
round's charged step count as ``dispatch_overhead + steps /
worker_steps_per_sec`` (divided by ``vectorized_speedup`` on the degraded
path, matching the ~52× speedup PR 6 measured) plus any chaos response
delay, and then *slept* on the event loop.  Under the virtual-time loop
(:mod:`repro.service.vtime`) those sleeps are instant and exact, which
makes a whole loadtest a pure function of its seeds; under a real loop
(``repro serve``) the same sleeps model a realistically loaded backend.

**Span trees.**  Every session — admitted or shed — leaves one
:class:`~repro.service.spans.Span` tree in :attr:`ConsensusService.spans`
recording where its deadline budget went (admission, breaker decision,
client stall, per-attempt queue wait / worker call / backoff), with
virtual-time boundaries taken from the serving loop.  Phase boundary
timestamps are shared between adjacent spans (each boundary is read from
the clock exactly once), so the leaf spans tile the session's lifetime
and :func:`~repro.service.spans.attribute_phases` decomposes its latency
exactly.  The PR 8 ``record_calls`` flat audit list survives as a view
over these trees (:attr:`ConsensusService.calls`).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.runtime.backoff import BackoffPolicy
from repro.runtime.faults import ServiceFaultController, ServiceFaultPlan
from repro.service.breaker import HALF_OPEN, BreakerConfig, CircuitBreaker
from repro.service.session import (
    COMPLETED,
    FAILED,
    FAILED_CLIENT_DROP,
    FAILED_DEADLINE,
    FAILED_WORKER,
    REJECTED,
    REJECTED_BREAKER_OPEN,
    REJECTED_DEADLINE,
    REJECTED_QUEUE_FULL,
    SessionRequest,
    SessionResponse,
)
from repro.service.spans import Span, SpanRecorder, attribute_phases
from repro.service.workers import execute_session, vectorized_eligible

__all__ = ["ConsensusService", "ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for one :class:`ConsensusService` instance.

    Attributes:
        shards: worker shards; sessions route by ``session_id % shards``.
        workers_per_shard: concurrent worker slots per shard.
        queue_capacity: max concurrent admitted sessions per shard
            (queued + in service); more means queue-full shedding.
        worker_steps_per_sec: cost model — simulated charged steps one
            worker retires per service-clock second.
        vectorized_speedup: cost-model divisor for degraded attempts
            (PR 6 measured ~52× on sweep workloads).
        dispatch_overhead: fixed per-attempt overhead seconds.
        attempt_timeout: per-attempt timeout ceiling; the effective
            timeout is ``min(attempt_timeout, remaining budget)``.
        max_attempts: worker attempts per session before giving up.
        backoff: retry backoff policy, shared shape with the sweep engine.
        breaker: per-shard circuit breaker configuration.
        degrade_watermark: queue occupancy fraction that starts the
            overload clock.
        degrade_after: seconds occupancy must stay above the watermark
            before degraded mode engages.
        degrade_recover: occupancy fraction at or below which degraded
            mode disengages.
        seed: master seed for service-side randomness (retry jitter).
        record_calls: retained for PR 8 compatibility.  Worker calls are
            always recorded now — as ``worker-call`` spans — and
            :attr:`ConsensusService.calls` derives the flat
            ``(session_id, shard, attempt, timeout, remaining)`` list
            from the span trees regardless of this flag.
        span_capacity: how many finished session span trees to retain
            (``None`` = all, the loadtest mode; bound it for long-lived
            servers — evictions are counted, never silent).
    """

    shards: int = 2
    workers_per_shard: int = 2
    queue_capacity: int = 16
    worker_steps_per_sec: float = 20_000.0
    vectorized_speedup: float = 50.0
    dispatch_overhead: float = 0.001
    attempt_timeout: float = 0.5
    max_attempts: int = 3
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(base=0.05, max_delay=0.5)
    )
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    degrade_watermark: float = 0.75
    degrade_after: float = 0.5
    degrade_recover: float = 0.25
    seed: int = 0
    record_calls: bool = False
    span_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.span_capacity is not None and self.span_capacity < 1:
            raise ConfigurationError(
                f"span_capacity must be >= 1 (or None), "
                f"got {self.span_capacity}"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.workers_per_shard < 1:
            raise ConfigurationError(
                f"workers_per_shard must be >= 1, "
                f"got {self.workers_per_shard}"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.worker_steps_per_sec <= 0:
            raise ConfigurationError(
                f"worker_steps_per_sec must be > 0, "
                f"got {self.worker_steps_per_sec}"
            )
        if self.vectorized_speedup < 1:
            raise ConfigurationError(
                f"vectorized_speedup must be >= 1, "
                f"got {self.vectorized_speedup}"
            )
        if self.dispatch_overhead < 0:
            raise ConfigurationError(
                f"dispatch_overhead must be >= 0, "
                f"got {self.dispatch_overhead}"
            )
        if self.attempt_timeout <= 0:
            raise ConfigurationError(
                f"attempt_timeout must be > 0, got {self.attempt_timeout}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if not 0 < self.degrade_watermark <= 1:
            raise ConfigurationError(
                f"degrade_watermark must be in (0, 1], "
                f"got {self.degrade_watermark}"
            )
        if self.degrade_after < 0:
            raise ConfigurationError(
                f"degrade_after must be >= 0, got {self.degrade_after}"
            )
        if not 0 <= self.degrade_recover < self.degrade_watermark:
            raise ConfigurationError(
                f"degrade_recover must be in [0, degrade_watermark), "
                f"got {self.degrade_recover}"
            )


class _Shard:
    """One shard's breaker, worker slots, and occupancy accounting."""

    def __init__(self, config: ServiceConfig):
        self.breaker = CircuitBreaker(config.breaker)
        self.workers = asyncio.Semaphore(config.workers_per_shard)
        self.occupancy = 0


class ConsensusService:
    """Sharded, deadline-aware, degradable consensus-round service.

    One instance serves one event loop (virtual or real).  All state is
    loop-confined — no locks beyond the worker semaphores — and every
    decision consults the loop clock, so the same request stream replays
    identically on the virtual loop.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        chaos: Optional[ServiceFaultPlan] = None,
    ):
        self.config = config or ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.chaos: Optional[ServiceFaultController] = (
            None if chaos is None or chaos.is_empty else chaos.controller()
        )
        self._shards = [_Shard(self.config) for _ in range(self.config.shards)]
        # Degraded-mode state: the overload clock starts when occupancy
        # crosses the watermark and the mode flips after degrade_after.
        self.degraded = False
        self._overload_since: Optional[float] = None
        self._degraded_entered_at = 0.0
        self.degraded_entries = 0
        self.degraded_seconds = 0.0
        #: Finished session span trees, in completion order.
        self.spans = SpanRecorder(capacity=self.config.span_capacity)
        #: Terminal-status tallies for snapshots ({status: {code: n}}).
        self._session_counts: Dict[str, Dict[str, int]] = {
            REJECTED: {}, FAILED: {},
        }
        self._completed_count = 0

    # -- introspection -------------------------------------------------------

    @property
    def calls(self) -> List[Dict[str, Any]]:
        """Flat worker-call audit view (deadline-propagation tests).

        Derived from the retained span trees; see
        :meth:`~repro.service.spans.SpanRecorder.calls_view`.
        """
        return self.spans.calls_view()

    def shard_for(self, session_id: int) -> int:
        return session_id % self.config.shards

    def breaker(self, shard: int) -> CircuitBreaker:
        return self._shards[shard].breaker

    @property
    def total_occupancy(self) -> int:
        return sum(shard.occupancy for shard in self._shards)

    def snapshot(self, now: float) -> Dict[str, Any]:
        """The service's full self-view: breakers, degradation,
        occupancy, terminal-status tallies, and span retention.

        This one dict feeds the SLO report, the server's
        ``{"cmd": "stats"}`` control verb, and the ``repro serve
        --stats-interval`` self-report, so all three agree by
        construction.
        """
        self._settle_degraded(now)
        return {
            "breakers": {
                str(index): shard.breaker.to_json()
                for index, shard in enumerate(self._shards)
            },
            "breaker_timelines": {
                str(index): shard.breaker.timeline_json()
                for index, shard in enumerate(self._shards)
            },
            "degraded_mode": {
                "active": self.degraded,
                "entered": self.degraded_entries,
                "virtual_seconds": self.degraded_seconds,
            },
            "occupancy": {
                "per_shard": [shard.occupancy for shard in self._shards],
                "total": self.total_occupancy,
                "capacity_per_shard": self.config.queue_capacity,
            },
            "sessions": {
                "completed": self._completed_count,
                "rejected": dict(sorted(
                    self._session_counts[REJECTED].items()
                )),
                "failed": dict(sorted(
                    self._session_counts[FAILED].items()
                )),
            },
            "spans": self.spans.to_json(),
        }

    # -- degradation clock ---------------------------------------------------

    def _capacity(self) -> int:
        return self.config.shards * self.config.queue_capacity

    def _update_overload(self, now: float) -> None:
        fraction = self.total_occupancy / self._capacity()
        if self.degraded:
            if fraction <= self.config.degrade_recover:
                self.degraded = False
                self.degraded_seconds += now - self._degraded_entered_at
                self._overload_since = None
                self.metrics.counter("service.degraded", event="exit").inc()
            return
        if fraction >= self.config.degrade_watermark:
            if self._overload_since is None:
                self._overload_since = now
            elif now - self._overload_since >= self.config.degrade_after:
                self.degraded = True
                self.degraded_entries += 1
                self._degraded_entered_at = now
                self.metrics.counter("service.degraded", event="enter").inc()
        else:
            self._overload_since = None

    def _settle_degraded(self, now: float) -> None:
        """Fold any still-open degraded window into the seconds counter."""
        if self.degraded:
            self.degraded_seconds += now - self._degraded_entered_at
            self._degraded_entered_at = now

    # -- the session lifecycle ----------------------------------------------

    async def submit(
        self,
        request: SessionRequest,
        *,
        client_stall: float = 0.0,
        drop_at: Optional[float] = None,
    ) -> SessionResponse:
        """Serve one session to a terminal response.

        ``client_stall`` models a slow client: the budget burns for that
        long between admission and the first attempt.  ``drop_at`` models
        a client hanging up at that loop time: the service still finishes
        the work (capacity is spent either way — the real cost of drops),
        but a completion after the hangup is reported as
        ``failed/client-drop`` because nobody received it.
        """
        loop = asyncio.get_running_loop()
        now = loop.time()
        shard_index = self.shard_for(request.session_id)
        shard = self._shards[shard_index]
        root = Span(
            name="session", start=now, end=now, shard=shard_index,
            attrs={
                "session_id": request.session_id,
                "deadline": request.deadline,
            },
        )

        # Admission: breaker first (cheapest signal of a sick shard), then
        # queue bound, then a deadline sanity check — a budget too small to
        # cover even the dispatch overhead can never be met, and rejecting
        # it up front costs nothing.
        allowed = shard.breaker.allow(now)
        # A half-open breaker admitted this session as a probe and reserved
        # a slot; every path from here must release it — via an attempt
        # outcome (record_success/record_failure) or probe_abandoned.
        probe = allowed and shard.breaker.state == HALF_OPEN
        root.child("breaker", now, status=shard.breaker.state,
                   shard=shard_index, probe=probe)
        if not allowed:
            root.child("admission", now, status=REJECTED,
                       code=REJECTED_BREAKER_OPEN)
            return self._reject(
                request, shard_index, REJECTED_BREAKER_OPEN, root
            )
        if shard.occupancy >= self.config.queue_capacity:
            if probe:
                shard.breaker.probe_abandoned(now)
            root.child("admission", now, status=REJECTED,
                       code=REJECTED_QUEUE_FULL)
            return self._reject(
                request, shard_index, REJECTED_QUEUE_FULL, root
            )
        if request.deadline <= self.config.dispatch_overhead:
            if probe:
                shard.breaker.probe_abandoned(now)
            root.child("admission", now, status=REJECTED,
                       code=REJECTED_DEADLINE)
            return self._reject(
                request, shard_index, REJECTED_DEADLINE, root
            )
        root.child("admission", now, status="admitted")

        shard.occupancy += 1
        self._update_overload(now)
        self.metrics.counter("service.admitted").inc()
        admitted_at = now
        deadline_at = admitted_at + request.deadline
        try:
            response = await self._serve(
                request, shard_index, shard, admitted_at, deadline_at,
                client_stall, probe, root,
            )
        finally:
            shard.occupancy -= 1
            self._update_overload(loop.time())

        if (
            response.status == COMPLETED
            and drop_at is not None
            and loop.time() > drop_at
        ):
            # The round finished, but the client was gone: spent capacity
            # with zero goodput.  Do not count it as a completion.
            response = SessionResponse(
                session_id=request.session_id,
                status=FAILED,
                code=FAILED_CLIENT_DROP,
                shard=shard_index,
                attempts=response.attempts,
                latency=response.latency,
                degraded=response.degraded,
                backend=response.backend,
            )
        # No awaits since the terminal timestamp inside _serve, so
        # loop.time() here still reads it: the root span closes exactly
        # where the last leaf span ended.
        self._finish_tree(root, response, loop.time())
        self._count(response)
        return response

    async def _serve(
        self,
        request: SessionRequest,
        shard_index: int,
        shard: _Shard,
        admitted_at: float,
        deadline_at: float,
        client_stall: float,
        probe: bool,
        root: Span,
    ) -> SessionResponse:
        loop = asyncio.get_running_loop()
        jitter = BackoffPolicy.rng(
            self.config.seed, "service", str(request.session_id)
        )
        degraded_session = False
        # ``cursor`` tracks the last phase boundary.  Each boundary is
        # read from the clock exactly once and shared between the span it
        # closes and the span it opens, so the leaf spans tile the
        # session's lifetime — the precondition for the exact phase
        # decomposition attribute_phases performs at the end.
        cursor = admitted_at
        # ``probe`` means this session still holds the half-open probe
        # slot its admission reserved.  The first attempt outcome reported
        # to the breaker releases it inside record_success/record_failure;
        # the finally below covers every exit path that ends the session
        # without reporting one (deadline during the stall or queue wait,
        # budget-clipped abandonment), so slots cannot leak and wedge the
        # breaker half-open.
        try:
            if client_stall > 0:
                await asyncio.sleep(
                    min(client_stall, max(0.0, deadline_at - cursor))
                )
                now = loop.time()
                root.child("stall", cursor, now, status="stalled",
                           shard=shard_index)
                cursor = now
            for attempt in range(self.config.max_attempts):
                ok = False
                attempt_span = root.child(
                    "attempt", cursor, shard=shard_index, attempt=attempt,
                )
                remaining = deadline_at - cursor
                if remaining <= 0:
                    attempt_span.status = "deadline"
                    return self._failed(
                        request, shard_index, FAILED_DEADLINE, attempt,
                        admitted_at, cursor, degraded_session,
                    )
                # Queue wait burns budget too: give up when the deadline
                # passes before a worker slot frees up.
                try:
                    await asyncio.wait_for(
                        shard.workers.acquire(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    now = loop.time()
                    attempt_span.child("queue-wait", cursor, now,
                                       status="deadline",
                                       shard=shard_index)
                    attempt_span.status = "deadline"
                    attempt_span.end = now
                    return self._failed(
                        request, shard_index, FAILED_DEADLINE, attempt,
                        admitted_at, now, degraded_session,
                    )
                now = loop.time()
                attempt_span.child("queue-wait", cursor, now,
                                   status="acquired", shard=shard_index)
                cursor = now
                try:
                    remaining = deadline_at - cursor
                    if remaining <= 0:
                        attempt_span.status = "deadline"
                        attempt_span.end = cursor
                        return self._failed(
                            request, shard_index, FAILED_DEADLINE, attempt,
                            admitted_at, cursor, degraded_session,
                        )
                    # THE deadline-propagation invariant: a worker call's
                    # timeout never exceeds the session's remaining budget.
                    timeout = min(self.config.attempt_timeout, remaining)
                    call_span = attempt_span.child(
                        "worker-call", cursor, shard=shard_index,
                        timeout=timeout, remaining=remaining,
                    )
                    self.metrics.counter("service.attempts").inc()

                    injected = (
                        self.chaos.attempt_failure(shard_index, cursor)
                        if self.chaos is not None
                        else None
                    )
                    if injected is not None:
                        # Chaos failures are near-instant: the worker dies
                        # on dispatch rather than mid-round.
                        await asyncio.sleep(
                            min(self.config.dispatch_overhead, timeout)
                        )
                        cursor = loop.time()
                        call_span.end = cursor
                        call_span.status = "chaos"
                        call_span.attrs["chaos"] = injected
                        attempt_span.status = "chaos"
                        self.metrics.counter(
                            "service.chaos", kind=injected
                        ).inc()
                        probe = False
                        shard.breaker.record_failure(cursor)
                        ok = False
                    else:
                        use_vectorized = (
                            self.degraded and vectorized_eligible(request)
                        )
                        degraded_session = degraded_session or use_vectorized
                        backend = (
                            "vectorized" if use_vectorized else "generator"
                        )
                        outcome = execute_session(request, backend=backend)
                        duration = self._service_time(
                            outcome.steps, backend, shard_index, cursor
                        )
                        call_span.attrs["backend"] = backend
                        if duration > timeout:
                            # The attempt is abandoned at its timeout; the
                            # worker slot was held for the whole window.
                            await asyncio.sleep(timeout)
                            cursor = loop.time()
                            call_span.end = cursor
                            if duration > self.config.attempt_timeout:
                                # Missing the full attempt window says the
                                # shard is slow; a timeout clipped by the
                                # client's remaining budget only measures
                                # deadline pressure, so it must not feed
                                # the breaker — the session fails as a
                                # deadline miss on the next loop check.
                                call_span.status = "timeout"
                                probe = False
                                shard.breaker.record_failure(cursor)
                            else:
                                call_span.status = "timeout-clipped"
                            attempt_span.status = call_span.status
                            ok = False
                        else:
                            await asyncio.sleep(duration)
                            finished = loop.time()
                            call_span.end = finished
                            call_span.status = COMPLETED
                            attempt_span.status = COMPLETED
                            attempt_span.end = finished
                            probe = False
                            shard.breaker.record_success(finished)
                            return SessionResponse(
                                session_id=request.session_id,
                                status=COMPLETED,
                                shard=shard_index,
                                attempts=attempt + 1,
                                latency=finished - admitted_at,
                                degraded=degraded_session,
                                backend=backend,
                                result=outcome.to_json(),
                            )
                finally:
                    shard.workers.release()
                attempt_span.end = cursor
                if not ok and attempt + 1 < self.config.max_attempts:
                    delay = self.config.backoff.delay(attempt, jitter)
                    remaining = deadline_at - cursor
                    if remaining <= 0:
                        return self._failed(
                            request, shard_index, FAILED_DEADLINE,
                            attempt + 1, admitted_at, cursor,
                            degraded_session,
                        )
                    await asyncio.sleep(min(delay, remaining))
                    now = loop.time()
                    attempt_span.child("backoff", cursor, now,
                                       status="waited", shard=shard_index,
                                       delay=delay)
                    attempt_span.end = now
                    cursor = now
            return self._failed(
                request, shard_index, FAILED_WORKER,
                self.config.max_attempts, admitted_at, cursor,
                degraded_session,
            )
        finally:
            if probe:
                shard.breaker.probe_abandoned(loop.time())

    def _service_time(
        self, steps: float, backend: str, shard_index: int, now: float
    ) -> float:
        duration = steps / self.config.worker_steps_per_sec
        if backend == "vectorized":
            duration /= self.config.vectorized_speedup
        duration += self.config.dispatch_overhead
        if self.chaos is not None:
            duration += self.chaos.extra_delay(shard_index, now)
        return duration

    def _reject(
        self,
        request: SessionRequest,
        shard_index: int,
        code: str,
        root: Span,
    ) -> SessionResponse:
        response = SessionResponse(
            session_id=request.session_id,
            status=REJECTED,
            code=code,
            shard=shard_index,
        )
        self._finish_tree(root, response, root.start)
        self._count(response)
        return response

    def _finish_tree(
        self, root: Span, response: SessionResponse, now: float
    ) -> None:
        """Close a session's root span and file the finished tree."""
        root.end = now
        root.status = response.status
        root.attrs["code"] = response.code
        root.attrs["attempts"] = response.attempts
        root.attrs["latency"] = response.latency
        root.attrs["degraded"] = response.degraded
        root.attrs["backend"] = response.backend
        root.attrs["phases"] = attribute_phases(root, response.latency)
        self.spans.record(root)

    def _failed(
        self,
        request: SessionRequest,
        shard_index: int,
        code: str,
        attempts: int,
        admitted_at: float,
        now: float,
        degraded: bool,
    ) -> SessionResponse:
        return SessionResponse(
            session_id=request.session_id,
            status=FAILED,
            code=code,
            shard=shard_index,
            attempts=attempts,
            latency=now - admitted_at,
            degraded=degraded,
        )

    def _count(self, response: SessionResponse) -> None:
        if response.status == COMPLETED:
            self._completed_count += 1
            self.metrics.counter(
                "service.completed", backend=response.backend or "generator"
            ).inc()
            self.metrics.histogram("service.latency").observe(
                response.latency
            )
            if response.degraded:
                self.metrics.counter("service.degraded_sessions").inc()
        elif response.status == REJECTED:
            code = response.code or ""
            counts = self._session_counts[REJECTED]
            counts[code] = counts.get(code, 0) + 1
            self.metrics.counter(
                "service.rejected", reason=code
            ).inc()
        else:
            code = response.code or ""
            counts = self._session_counts[FAILED]
            counts[code] = counts.get(code, 0) + 1
            self.metrics.counter(
                "service.failed", code=code
            ).inc()
