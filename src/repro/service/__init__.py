"""Consensus as a service: the serving layer over the simulators.

The ROADMAP's framing is a production-scale system; this package is the
serving half of that story.  It exposes the paper's conciliator/consensus
rounds as short-lived client *sessions* behind a sharded, deadline-aware,
load-shedding service (:mod:`repro.service.service`), generates
deterministic open-loop traffic against it
(:mod:`repro.service.loadgen`), and reduces each run to a versioned SLO
report (:mod:`repro.service.slo`).  The loadtest runs on a virtual-time
event loop (:mod:`repro.service.vtime`), so a multi-minute traffic story
replays in milliseconds and byte-identically from its seed; ``repro
serve`` (:mod:`repro.service.server`) runs the identical service code on
a real loop and socket.
"""

from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.loadgen import (
    PROFILES,
    ArrivalProfile,
    LoadtestResult,
    run_loadtest,
)
from repro.service.server import ServiceServer, serve
from repro.service.service import ConsensusService, ServiceConfig
from repro.service.session import (
    FAILURE_CODES,
    REJECTION_CODES,
    SESSION_STATUSES,
    SessionRequest,
    SessionResponse,
)
from repro.service.slo import (
    SLO_SCHEMA_VERSION,
    build_report,
    deterministic_view,
    load_report,
    render_report,
    write_report,
)
from repro.service.vtime import VirtualTimeEventLoop, run_virtual
from repro.service.workers import ALGORITHMS, WorkOutcome, execute_session

__all__ = [
    "ALGORITHMS",
    "FAILURE_CODES",
    "PROFILES",
    "REJECTION_CODES",
    "SESSION_STATUSES",
    "SLO_SCHEMA_VERSION",
    "ArrivalProfile",
    "BreakerConfig",
    "CircuitBreaker",
    "ConsensusService",
    "LoadtestResult",
    "ServiceConfig",
    "ServiceServer",
    "SessionRequest",
    "SessionResponse",
    "VirtualTimeEventLoop",
    "WorkOutcome",
    "build_report",
    "deterministic_view",
    "execute_session",
    "load_report",
    "render_report",
    "run_loadtest",
    "run_virtual",
    "serve",
    "write_report",
]
