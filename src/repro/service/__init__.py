"""Consensus as a service: the serving layer over the simulators.

The ROADMAP's framing is a production-scale system; this package is the
serving half of that story.  It exposes the paper's conciliator/consensus
rounds as short-lived client *sessions* behind a sharded, deadline-aware,
load-shedding service (:mod:`repro.service.service`), generates
deterministic open-loop traffic against it
(:mod:`repro.service.loadgen`), and reduces each run to a versioned SLO
report (:mod:`repro.service.slo`).  The loadtest runs on a virtual-time
event loop (:mod:`repro.service.vtime`), so a multi-minute traffic story
replays in milliseconds and byte-identically from its seed; ``repro
serve`` (:mod:`repro.service.server`) runs the identical service code on
a real loop and socket.

Every session also emits a *span tree* (:mod:`repro.service.spans`):
admission, queue waits, worker calls, and backoffs as nested intervals on
the virtual clock, with per-phase times that sum bit-for-bit to the
session's latency.  The SLO report folds the trees into its
``latency_attribution`` section, ``repro slo waterfall`` renders one
session's tree, and the server's ``{"cmd": "stats"}`` /
``{"cmd": "health"}`` control verbs expose the live
:meth:`ConsensusService.snapshot` over the same TCP stream.
"""

from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.loadgen import (
    PROFILES,
    ArrivalProfile,
    LoadtestResult,
    run_loadtest,
)
from repro.service.server import ServiceServer, serve
from repro.service.service import ConsensusService, ServiceConfig
from repro.service.session import (
    FAILURE_CODES,
    REJECTION_CODES,
    SESSION_STATUSES,
    SessionRequest,
    SessionResponse,
)
from repro.service.slo import (
    SLO_SCHEMA_VERSION,
    SLO_TREND_METRICS,
    SLOTrend,
    append_slo_history,
    build_report,
    deterministic_view,
    load_report,
    load_slo_history,
    render_report,
    render_slo_trend,
    slo_history_entry,
    summarize_slo_trend,
    write_report,
)
from repro.service.spans import (
    PHASE_NAMES,
    SPAN_NAMES,
    SPAN_SCHEMA_VERSION,
    Span,
    SpanRecorder,
    attribute_phases,
    phase_sum,
    read_spans_jsonl,
    span_digest,
    tree_from_json,
    tree_to_json,
    write_spans_jsonl,
)
from repro.service.vtime import VirtualTimeEventLoop, run_virtual
from repro.service.workers import ALGORITHMS, WorkOutcome, execute_session

__all__ = [
    "ALGORITHMS",
    "FAILURE_CODES",
    "PHASE_NAMES",
    "PROFILES",
    "REJECTION_CODES",
    "SESSION_STATUSES",
    "SLO_SCHEMA_VERSION",
    "SLO_TREND_METRICS",
    "SPAN_NAMES",
    "SPAN_SCHEMA_VERSION",
    "ArrivalProfile",
    "BreakerConfig",
    "CircuitBreaker",
    "ConsensusService",
    "LoadtestResult",
    "SLOTrend",
    "ServiceConfig",
    "ServiceServer",
    "SessionRequest",
    "SessionResponse",
    "Span",
    "SpanRecorder",
    "VirtualTimeEventLoop",
    "WorkOutcome",
    "append_slo_history",
    "attribute_phases",
    "build_report",
    "deterministic_view",
    "execute_session",
    "load_report",
    "load_slo_history",
    "phase_sum",
    "read_spans_jsonl",
    "render_report",
    "render_slo_trend",
    "run_loadtest",
    "run_virtual",
    "serve",
    "slo_history_entry",
    "span_digest",
    "summarize_slo_trend",
    "tree_from_json",
    "tree_to_json",
    "write_spans_jsonl",
]
