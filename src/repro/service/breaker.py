"""Per-shard circuit breaker with half-open probing.

A shard that keeps failing (blacked out, overloaded, or chaos-killed)
should not keep receiving sessions: every attempt it eats burns a chunk
of some client's deadline before failing, which is strictly worse than an
instant ``Rejected(breaker-open)`` the client can route around.  The
breaker implements the standard three-state machine:

- **closed** — healthy; failures are counted, ``failure_threshold``
  consecutive ones trip the breaker;
- **open** — every admission is refused for ``cooldown`` service-clock
  seconds, giving the shard time to recover;
- **half-open** — after the cooldown, up to ``half_open_probes`` sessions
  are let through as probes; a single failure re-opens the breaker (with
  a fresh cooldown), while ``half_open_probes`` successes close it.

The breaker is driven entirely by explicit ``(event, now)`` calls — it
never reads a clock itself — so under the virtual-time loadtest its
transitions are deterministic, and its transition counters
(``opened``/``half_opened``/``closed``) land in the SLO report as
first-class evidence that the overload story actually exercised all
three states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.errors import ConfigurationError

__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "BreakerConfig", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for one shard's circuit breaker.

    Attributes:
        failure_threshold: consecutive failures that trip a closed breaker.
        cooldown: seconds an open breaker refuses admissions before
            allowing half-open probes.
        half_open_probes: successful probes required to close again (and
            the concurrent probe budget while half-open).
    """

    failure_threshold: int = 4
    cooldown: float = 1.0
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, "
                f"got {self.failure_threshold}"
            )
        if self.cooldown <= 0:
            raise ConfigurationError(
                f"cooldown must be > 0, got {self.cooldown}"
            )
        if self.half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


class CircuitBreaker:
    """One shard's three-state breaker, clocked by its caller."""

    def __init__(self, config: BreakerConfig):
        self.config = config
        self.state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0
        # Transition counters, reported in the SLO artifact.
        self.opened = 0
        self.half_opened = 0
        self.closed_again = 0
        #: Every state transition as ``(now, new_state)``, in order.  The
        #: initial closed state is implicit.  Transitions need failures,
        #: so the list stays small even over long runs; the SLO report's
        #: ``latency_attribution`` section carries it per shard.
        self.timeline: List[Tuple[float, str]] = []

    def allow(self, now: float) -> bool:
        """May a session be admitted to this shard at ``now``?

        Admission to a half-open breaker reserves one probe slot; the
        caller must report the probe's fate via :meth:`record_success` or
        :meth:`record_failure` to release it.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self._opened_at >= self.config.cooldown:
                self.state = HALF_OPEN
                self.half_opened += 1
                self.timeline.append((now, HALF_OPEN))
                self._probes_in_flight = 0
                self._probe_successes = 0
            else:
                return False
        # half-open: admit only while probe slots remain.
        if self._probes_in_flight < self.config.half_open_probes:
            self._probes_in_flight += 1
            return True
        return False

    def record_success(self, now: float) -> None:
        """A served session (or probe) succeeded."""
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.config.half_open_probes:
                self.state = CLOSED
                self.closed_again += 1
                self.timeline.append((now, CLOSED))
                self._consecutive_failures = 0
        else:
            self._consecutive_failures = 0

    def probe_abandoned(self, now: float) -> None:
        """A probe admitted by :meth:`allow` ended without an outcome.

        Sessions can terminate before their first worker attempt — the
        deadline expires during a client stall or a queue wait, or a
        later admission check bounces them.  Such an ending says nothing
        about shard health, so it neither counts toward closing nor
        re-opens the breaker; it only releases the reserved probe slot.
        Without this, leaked slots would eventually exhaust
        ``half_open_probes`` and wedge the breaker half-open forever.
        """
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)

    def record_failure(self, now: float) -> None:
        """A served session (or probe) failed; may trip or re-open."""
        if self.state == HALF_OPEN:
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            self._trip(now)
        elif self.state == CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.config.failure_threshold:
                self._trip(now)
        # failures reported while already open (late in-flight results)
        # extend nothing: the cooldown runs from the trip that opened it.

    def _trip(self, now: float) -> None:
        self.state = OPEN
        self.opened += 1
        self.timeline.append((now, OPEN))
        self._opened_at = now
        self._consecutive_failures = 0
        self._probe_successes = 0

    def to_json(self) -> Dict[str, Any]:
        """Transition counters + final state for the SLO report."""
        return {
            "state": self.state,
            "opened": self.opened,
            "half_opened": self.half_opened,
            "closed_again": self.closed_again,
        }

    def timeline_json(self) -> List[List[Any]]:
        """The transition timeline as ``[[virtual_time, new_state], ...]``."""
        return [[now, state] for now, state in self.timeline]
