"""Session request/response vocabulary for the consensus service.

A *session* is one client interaction: "run me a conciliator/consensus
round with these parameters, within this deadline."  The service answers
every admitted-or-rejected session with exactly one
:class:`SessionResponse`, whose ``status`` is one of three words:

- ``"completed"`` — a worker ran the round and ``result`` holds it;
- ``"rejected"`` — the service refused the session *at admission*, before
  spending any worker capacity; ``code`` says why (queue full, breaker
  open, or a deadline too small to ever finish);
- ``"failed"`` — the session was admitted but could not be served;
  ``code`` says why (deadline expired in flight, worker attempts
  exhausted, or the client hung up first).

Rejected-at-admission and failed-in-flight are deliberately distinct
status words with disjoint code sets: a client seeing ``rejected`` knows
the request was free to retry elsewhere (no work was done), while
``failed`` means capacity was spent — retrying blindly amplifies
overload.  Tests pin this distinction (satellite: deadline propagation).

Everything here is a plain frozen value object with versioned JSON, so
the TCP server, the in-process loadtest, and the SLO report all speak the
same words.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError

__all__ = [
    "FAILURE_CODES",
    "REJECTION_CODES",
    "SESSION_STATUSES",
    "SessionRequest",
    "SessionResponse",
]

#: Admission-time rejection codes (status ``"rejected"``; no work done).
REJECTED_QUEUE_FULL = "queue-full"
REJECTED_BREAKER_OPEN = "breaker-open"
REJECTED_DEADLINE = "deadline-preadmission"
REJECTION_CODES = (
    REJECTED_QUEUE_FULL,
    REJECTED_BREAKER_OPEN,
    REJECTED_DEADLINE,
)

#: In-flight failure codes (status ``"failed"``; capacity was spent).
FAILED_DEADLINE = "deadline-in-flight"
FAILED_WORKER = "worker-failure"
FAILED_CLIENT_DROP = "client-drop"
FAILURE_CODES = (FAILED_DEADLINE, FAILED_WORKER, FAILED_CLIENT_DROP)

COMPLETED = "completed"
REJECTED = "rejected"
FAILED = "failed"
SESSION_STATUSES = (COMPLETED, REJECTED, FAILED)

_REQUEST_VERSION = 1


@dataclass(frozen=True)
class SessionRequest:
    """One client ask: a consensus/conciliator round within a deadline.

    Attributes:
        session_id: client-chosen id, echoed in the response; also the
            shard-routing key (``session_id % shards``).
        algorithm: catalog name from
            :data:`repro.service.workers.ALGORITHMS`.
        n: number of simulated processes (also the input width).
        schedule_family: oblivious adversary family for the round.
        deadline: total budget for the session in service-clock seconds,
            covering queueing, all retry attempts, and backoff.
        seed: master seed for the round; with ``session_id`` it makes the
            simulated execution a pure function of the request.
    """

    session_id: int
    algorithm: str = "sifting"
    n: int = 8
    schedule_family: str = "permuted"
    deadline: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.session_id < 0:
            raise ConfigurationError(
                f"session_id must be >= 0, got {self.session_id}"
            )
        if self.n < 2:
            raise ConfigurationError(f"n must be >= 2, got {self.n}")
        if self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be > 0, got {self.deadline}"
            )

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": _REQUEST_VERSION,
            "session_id": self.session_id,
            "algorithm": self.algorithm,
            "n": self.n,
            "schedule_family": self.schedule_family,
            "deadline": self.deadline,
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SessionRequest":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"session request JSON must be an object, "
                f"got {type(data).__name__}"
            )
        if data.get("version") != _REQUEST_VERSION:
            raise ConfigurationError(
                f"unsupported session request version "
                f"{data.get('version')!r}; this build reads version "
                f"{_REQUEST_VERSION}"
            )
        return cls(
            session_id=int(data["session_id"]),
            algorithm=str(data.get("algorithm", "sifting")),
            n=int(data.get("n", 8)),
            schedule_family=str(data.get("schedule_family", "permuted")),
            deadline=float(data.get("deadline", 5.0)),
            seed=int(data.get("seed", 0)),
        )


@dataclass(frozen=True)
class SessionResponse:
    """The service's single answer to one session.

    Attributes:
        session_id: echoed from the request.
        status: ``"completed"``, ``"rejected"``, or ``"failed"``.
        code: ``None`` for completed sessions, else one of
            :data:`REJECTION_CODES` / :data:`FAILURE_CODES` matching the
            status.
        shard: shard that served (or would have served) the session.
        attempts: worker attempts actually dispatched (0 for rejections).
        latency: admission-to-response service-clock seconds (0.0 for
            rejections — they never enter the queue).
        degraded: True when overload fell the session back to the
            vectorized backend; the downgrade is surfaced, never silent.
        backend: engine that produced the result (``"generator"`` or
            ``"vectorized"``), ``None`` when no attempt completed.
        result: completed sessions only — agreement flag, step counts.
    """

    session_id: int
    status: str
    code: Optional[str] = None
    shard: int = 0
    attempts: int = 0
    latency: float = 0.0
    degraded: bool = False
    backend: Optional[str] = None
    result: Optional[Dict[str, Any]] = field(default=None)

    def __post_init__(self) -> None:
        if self.status not in SESSION_STATUSES:
            raise ConfigurationError(
                f"unknown session status {self.status!r}; "
                f"choose from {SESSION_STATUSES}"
            )
        if self.status == COMPLETED and self.code is not None:
            raise ConfigurationError(
                f"completed sessions carry no code, got {self.code!r}"
            )
        if self.status == REJECTED and self.code not in REJECTION_CODES:
            raise ConfigurationError(
                f"rejected sessions need a code from {REJECTION_CODES}, "
                f"got {self.code!r}"
            )
        if self.status == FAILED and self.code not in FAILURE_CODES:
            raise ConfigurationError(
                f"failed sessions need a code from {FAILURE_CODES}, "
                f"got {self.code!r}"
            )

    @property
    def ok(self) -> bool:
        return self.status == COMPLETED

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": _REQUEST_VERSION,
            "session_id": self.session_id,
            "status": self.status,
            "code": self.code,
            "shard": self.shard,
            "attempts": self.attempts,
            "latency": self.latency,
            "degraded": self.degraded,
            "backend": self.backend,
            "result": self.result,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SessionResponse":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"session response JSON must be an object, "
                f"got {type(data).__name__}"
            )
        if data.get("version") != _REQUEST_VERSION:
            raise ConfigurationError(
                f"unsupported session response version "
                f"{data.get('version')!r}; this build reads version "
                f"{_REQUEST_VERSION}"
            )
        return cls(
            session_id=int(data["session_id"]),
            status=str(data["status"]),
            code=data.get("code"),
            shard=int(data.get("shard", 0)),
            attempts=int(data.get("attempts", 0)),
            latency=float(data.get("latency", 0.0)),
            degraded=bool(data.get("degraded", False)),
            backend=data.get("backend"),
            result=data.get("result"),
        )
