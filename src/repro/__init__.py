"""repro — faster randomized consensus with an oblivious adversary.

A complete, executable reproduction of James Aspnes, *"Faster randomized
consensus with an oblivious adversary"* (PODC 2012): the snapshot-model
priority conciliator (Algorithm 1), the register-model sifting conciliator
(Algorithm 2), the linear-total-work CIL embedding (Algorithm 3), the
adopt-commit objects they compose with, and the consensus protocols of
Corollaries 1–3 — all running on a deterministic asynchronous shared-memory
simulator with genuinely oblivious adversary schedules.

Quickstart::

    from repro import (
        SeedTree, RandomSchedule, register_consensus, run_consensus,
    )

    n = 16
    seeds = SeedTree(2012)
    protocol = register_consensus(n, value_domain=range(4))
    schedule = RandomSchedule(n, seeds.child("schedule").seed)
    inputs = [pid % 4 for pid in range(n)]
    result = run_consensus(protocol, inputs, schedule, seeds)
    assert result.agreement and result.validity_holds(dict(enumerate(inputs)))
    print(result.summary())

See DESIGN.md for the architecture and EXPERIMENTS.md for the per-theorem
reproduction results.
"""

from repro.adoptcommit import (
    ADOPT,
    COMMIT,
    AdoptCommitObject,
    AdoptCommitResult,
    BinaryAdoptCommit,
    CollectAdoptCommit,
    DomainEncoder,
    FlagAdoptCommit,
    IntEncoder,
    SnapshotAdoptCommit,
)
from repro.core import (
    ChainedConciliator,
    CILConciliator,
    CILEmbeddedConciliator,
    Conciliator,
    ConsensusProtocol,
    EmulatedSnapshotConciliator,
    Persona,
    SiftingConciliator,
    SnapshotConciliator,
    log_star,
    register_consensus,
    run_conciliator,
    run_consensus,
    sifting_rounds,
    snapshot_consensus,
    snapshot_rounds,
)
from repro.errors import (
    ConfigurationError,
    InvalidOperationError,
    ProtocolViolationError,
    ReproError,
    ScheduleExhaustedError,
    SimulationError,
    StepLimitExceededError,
)
from repro.memory import (
    AtomicRegister,
    BoundedMaxRegister,
    EmulatedSnapshot,
    MaxRegister,
    RegisterArray,
    SnapshotArray,
    SnapshotObject,
)
from repro.tas import SiftingTestAndSet
from repro.runtime import (
    BlockSchedule,
    CrashSchedule,
    ExplicitSchedule,
    FrontRunnerSchedule,
    Process,
    ProcessContext,
    RandomSchedule,
    Read,
    ReversedRoundRobinSchedule,
    RoundRobinSchedule,
    RunResult,
    Scan,
    Schedule,
    SeedTree,
    Simulator,
    StutterSchedule,
    Update,
    Write,
)
from repro.runtime.simulator import run_programs

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Persona",
    "Conciliator",
    "SnapshotConciliator",
    "SiftingConciliator",
    "CILConciliator",
    "CILEmbeddedConciliator",
    "ConsensusProtocol",
    "snapshot_consensus",
    "register_consensus",
    "run_conciliator",
    "run_consensus",
    "log_star",
    "snapshot_rounds",
    "sifting_rounds",
    # adopt-commit
    "ADOPT",
    "COMMIT",
    "AdoptCommitObject",
    "AdoptCommitResult",
    "BinaryAdoptCommit",
    "FlagAdoptCommit",
    "SnapshotAdoptCommit",
    "CollectAdoptCommit",
    "IntEncoder",
    "DomainEncoder",
    # memory
    "AtomicRegister",
    "SnapshotObject",
    "MaxRegister",
    "BoundedMaxRegister",
    "EmulatedSnapshot",
    "RegisterArray",
    "SnapshotArray",
    # extensions
    "EmulatedSnapshotConciliator",
    "SiftingTestAndSet",
    "ChainedConciliator",
    # runtime
    "SeedTree",
    "Schedule",
    "ExplicitSchedule",
    "RoundRobinSchedule",
    "ReversedRoundRobinSchedule",
    "RandomSchedule",
    "BlockSchedule",
    "FrontRunnerSchedule",
    "CrashSchedule",
    "StutterSchedule",
    "Simulator",
    "Process",
    "ProcessContext",
    "RunResult",
    "Read",
    "Write",
    "Update",
    "Scan",
    "run_programs",
    # errors
    "ReproError",
    "SimulationError",
    "ScheduleExhaustedError",
    "StepLimitExceededError",
    "ProtocolViolationError",
    "InvalidOperationError",
    "ConfigurationError",
]
