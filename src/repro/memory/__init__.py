"""Shared-memory object implementations.

The paper's two models are built from:

- :class:`~repro.memory.register.AtomicRegister` — multi-writer multi-reader
  atomic registers (Section 3's model);
- :class:`~repro.memory.snapshot.SnapshotObject` — unit-cost snapshots
  (Section 2's model): one ``update`` writes the caller's component, one
  ``scan`` atomically returns all components;
- :class:`~repro.memory.max_register.MaxRegister` — max registers, which the
  paper's footnote 1 observes suffice for Algorithm 1.

Registers are unbounded-size, as the paper assumes ("We do not assume any
limitation on the size of registers"), so values may be arbitrary Python
objects — in particular whole personae.

Objects may only be mutated through the simulator (processes yield operation
requests); direct method calls are reserved for test code that checks
sequential semantics.

All three primitive objects default to atomic semantics and can be
weakened declaratively: :mod:`repro.memory.semantics` defines the
:class:`~repro.memory.semantics.RegisterModel` ladder (atomic < regular <
safe) and the resolver/injector machinery that applies a model as a
read-resolution policy.
"""

from repro.memory.base import SharedObject
from repro.memory.bounded_max_register import BoundedMaxRegister
from repro.memory.emulated_snapshot import (
    EmulatedSnapshot,
    LazyRegisterFile,
    SnapshotCell,
)
from repro.memory.max_register import MaxRegister
from repro.memory.register import AtomicRegister
from repro.memory.register_array import RegisterArray, SnapshotArray
from repro.memory.semantics import (
    RegisterModel,
    SemanticsInjector,
    SemanticsResolver,
)
from repro.memory.snapshot import (
    SPARSE_AUTO_THRESHOLD,
    SnapshotObject,
    SparseView,
)

__all__ = [
    "SharedObject",
    "AtomicRegister",
    "SnapshotObject",
    "SparseView",
    "SPARSE_AUTO_THRESHOLD",
    "MaxRegister",
    "BoundedMaxRegister",
    "EmulatedSnapshot",
    "LazyRegisterFile",
    "SnapshotCell",
    "RegisterArray",
    "SnapshotArray",
    "RegisterModel",
    "SemanticsInjector",
    "SemanticsResolver",
]
