"""Register-model semantics: atomic, regular, and safe read resolution.

The paper proves its ``1 - ε`` agreement floors over *atomic* registers.
This module weakens that assumption declaratively, following the
Lamport hierarchy as sharpened by Hadzilacos–Hu–Toueg: a **regular**
register read that is concurrent with a write may return either the old
or the new value, and a **safe** register read that is concurrent with a
write may return *anything* the register could ever hold.

The simulator executes operations sequentially, so "concurrent" needs a
deterministic surrogate.  The one used here: every write to an object
opens a *contention window* covering the next ``window`` reads of that
object; a read inside the window issued by a process other than the
writer counts as concurrent with the write (a reader is never concurrent
with its own last write — read-your-writes is preserved under every
model).  Whether a concurrent read actually resolves old (or, for safe
registers, arbitrary) is decided by a seeded coin with probability
``p_old``, so a weakened run remains a pure function of
``(programs, inputs, schedule, seed tree, model)``.

A :class:`RegisterModel` is the declarative spec — a frozen, hashable,
versioned-JSON value object exactly like
:class:`~repro.workloads.schedules.ScheduleSpec` — and
:meth:`RegisterModel.resolver` builds the per-run stateful policy.  The
policy is *applied* inside the shared-memory objects themselves
(:class:`~repro.memory.register.AtomicRegister`,
:class:`~repro.memory.max_register.MaxRegister`,
:class:`~repro.memory.snapshot.SnapshotObject` all consult a bound
resolver on reads), and :class:`SemanticsInjector` is the step hook that
binds the resolver onto every shared object a run touches — including
registers allocated privately inside a protocol stack.

This layer also subsumes the ad-hoc ``stale-read``
:class:`~repro.runtime.faults.RegisterFault` from the fault-injection
substrate: :func:`stale_value` is the single definition of "the value a
one-step-stale regular read serves", and the fault injector delegates to
it, so old fault plans reproduce byte-identical outcomes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.errors import ConfigurationError
from repro.runtime.faults import StepHook
from repro.runtime.operations import Operation

__all__ = [
    "REGISTER_MODEL_KINDS",
    "RegisterModel",
    "SemanticsInjector",
    "SemanticsResolver",
    "stale_value",
]

#: Recognized register-model kinds, weakest-last.
ATOMIC = "atomic"
REGULAR = "regular"
SAFE = "safe"
REGISTER_MODEL_KINDS = (ATOMIC, REGULAR, SAFE)


def stale_value(history: Sequence[Any]) -> Any:
    """The value a one-step-stale regular read serves.

    ``history`` is the ordered list of values written to the register; a
    stale read returns the value the register held *before* its most
    recent write, or ``None`` when that value is unknown (fewer than two
    writes observed).  This is the exact rule the PR 2 ``stale-read``
    :class:`~repro.runtime.faults.RegisterFault` has always applied; the
    fault injector now delegates here so the definition lives with the
    rest of the register-model semantics.
    """
    return history[-2] if len(history) >= 2 else None


@dataclass(frozen=True)
class RegisterModel:
    """A declarative, seeded register-semantics spec.

    Attributes:
        kind: ``"atomic"`` (reads always return the last write),
            ``"regular"`` (a read concurrent with a write may return the
            old value), or ``"safe"`` (a read concurrent with a write
            may return any value the register ever held, including its
            initial value).
        seed: private seed for the resolution coin; independent of
            algorithm and adversary seeds.
        p_old: probability that a read inside a contention window
            resolves weakly instead of returning the current value.
        window: how many subsequent reads of an object each write's
            contention window covers (the sequential surrogate for
            "concurrent with the write").
    """

    kind: str = ATOMIC
    seed: int = 0
    p_old: float = 0.5
    window: int = 1

    _JSON_VERSION = 1

    def __post_init__(self) -> None:
        if self.kind not in REGISTER_MODEL_KINDS:
            raise ConfigurationError(
                f"unknown register model kind {self.kind!r}; choose from "
                f"{REGISTER_MODEL_KINDS}"
            )
        if not 0.0 <= self.p_old <= 1.0:
            raise ConfigurationError(
                f"p_old must be in [0, 1], got {self.p_old}"
            )
        if self.window < 1:
            raise ConfigurationError(
                f"window must be >= 1, got {self.window}"
            )

    @property
    def is_atomic(self) -> bool:
        """True when this model cannot produce weak reads."""
        return self.kind == ATOMIC

    def resolver(self) -> "SemanticsResolver":
        """Build a fresh per-run stateful resolution policy."""
        return SemanticsResolver(self)

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": self._JSON_VERSION,
            "kind": self.kind,
            "seed": self.seed,
            "p_old": self.p_old,
            "window": self.window,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RegisterModel":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"register model JSON must be an object, "
                f"got {type(data).__name__}"
            )
        if data.get("version") != cls._JSON_VERSION:
            raise ConfigurationError(
                f"unsupported register model version {data.get('version')!r}; "
                f"this build reads version {cls._JSON_VERSION}"
            )
        return cls(
            kind=str(data["kind"]),
            seed=int(data.get("seed", 0)),
            p_old=float(data.get("p_old", 0.5)),
            window=int(data.get("window", 1)),
        )


class _CellState:
    """Per-register (or per-snapshot-component) resolution bookkeeping."""

    __slots__ = ("last_writer", "observers", "old_value",
                 "reads_since_write", "values")

    def __init__(self) -> None:
        self.last_writer: Optional[int] = None
        #: Pids whose reads must resolve atomically inside the current
        #: window: the writer itself, plus any process whose completed
        #: (possibly no-op) write proves it already observed the current
        #: value — read-your-writes survives every weakening.
        self.observers: Set[int] = set()
        self.old_value: Any = None
        self.reads_since_write = 0
        self.values: List[Any] = []


class SemanticsResolver:
    """Per-run stateful read-resolution policy for one :class:`RegisterModel`.

    Shared objects call :meth:`note_write` on every applied write and
    :meth:`resolve_read` on every read; cells are keyed by a caller-chosen
    string (object name, or ``name[i]`` for snapshot components).  All
    weak resolutions are drawn from a private ``random.Random(seed)``, so
    the resolution sequence is a pure function of the operation sequence.
    """

    def __init__(self, model: RegisterModel):
        self.model = model
        self._rng = random.Random(model.seed)
        self._cells: Dict[str, _CellState] = {}
        #: (cell, reader pid, served value) for every weak resolution.
        self.weak_reads: List[Any] = []

    def _cell(self, key: str) -> _CellState:
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cells[key] = _CellState()
        return cell

    def note_write(self, key: str, pid: int, old_value: Any,
                   new_value: Any) -> None:
        """Record a write: ``old_value`` is the cell's value pre-write."""
        cell = self._cell(key)
        cell.last_writer = pid
        cell.observers = {pid}
        cell.old_value = old_value
        cell.reads_since_write = 0
        if not cell.values or cell.values[-1] != new_value:
            cell.values.append(new_value)

    def note_observed(self, key: str, pid: int) -> None:
        """Record that ``pid`` has provably observed the cell's current
        value (e.g. its no-op max-register write completed against it);
        its reads in the current window resolve atomically."""
        self._cell(key).observers.add(pid)

    def resolve_read(self, key: str, pid: int, current: Any,
                     initial: Any = None) -> Any:
        """The value this read observes under the model.

        ``current`` is what an atomic read would return; ``initial`` is
        the cell's initial value (the safe model may resurface it).
        """
        cell = self._cells.get(key)
        if cell is None or cell.last_writer is None:
            return current  # no write observed: nothing to be stale against
        in_window = cell.reads_since_write < self.model.window
        cell.reads_since_write += 1
        if not in_window or pid in cell.observers:
            return current
        if self.model.kind == REGULAR:
            if self._rng.random() < self.model.p_old:
                self.weak_reads.append((key, pid, cell.old_value))
                return cell.old_value
            return current
        if self.model.kind == SAFE:
            if self._rng.random() < self.model.p_old:
                domain = [initial, cell.old_value, *cell.values]
                served = domain[self._rng.randrange(len(domain))]
                self.weak_reads.append((key, pid, served))
                return served
            return current
        return current


class SemanticsInjector(StepHook):
    """Step hook distributing one resolver to every object a run touches.

    Protocol stacks allocate registers privately, so the harness cannot
    enumerate them up front; instead this hook inspects each scheduled
    operation's target object and binds the run's resolver the first time
    the object appears.  Objects that do not support weakened semantics
    (no ``bind_semantics`` method) are left untouched.
    """

    def __init__(self, model: RegisterModel):
        self.model = model
        self.resolver = model.resolver()
        self._bound: Set[int] = set()

    def before_step(self, pid: int, process_steps: int, global_steps: int,
                    operation: Optional[Operation]) -> Optional[str]:
        if operation is not None:
            obj = operation.obj
            if id(obj) not in self._bound:
                self._bound.add(id(obj))
                bind = getattr(obj, "bind_semantics", None)
                if bind is not None:
                    bind(self.resolver)
        return None
