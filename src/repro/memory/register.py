"""Atomic multi-writer multi-reader register."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.memory.base import SharedObject
from repro.runtime.operations import Operation, Read, Write

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.semantics import SemanticsResolver

__all__ = ["AtomicRegister"]


class AtomicRegister(SharedObject):
    """An unbounded-size atomic MWMR register.

    Supports :class:`~repro.runtime.operations.Read` (returns the value of
    the most recent write, or the initial value) and
    :class:`~repro.runtime.operations.Write`.  Each costs one step.

    The register also counts its writes, which tests use to verify claims
    such as "at most one iteration can skip the sifting step without writing
    ``proposal``" in Theorem 3's proof.

    By default reads are atomic.  Binding a
    :class:`~repro.memory.semantics.SemanticsResolver` (via
    :meth:`bind_semantics`) weakens reads to the resolver's declared model
    — regular or safe registers per Hadzilacos–Hu–Toueg — while writes and
    step accounting stay unchanged.
    """

    def __init__(self, name: str = "", initial: Any = None):
        super().__init__(name)
        self._value = initial
        self._initial = initial
        self._semantics: Optional["SemanticsResolver"] = None
        self.write_count = 0
        self.read_count = 0

    @property
    def value(self) -> Any:
        """Current value (for inspection by tests and harnesses)."""
        return self._value

    def bind_semantics(self, resolver: "SemanticsResolver") -> None:
        """Resolve future reads under ``resolver``'s register model."""
        self._semantics = resolver

    def apply(self, operation: Operation, pid: int) -> Any:
        if isinstance(operation, Read):
            self.read_count += 1
            if self._semantics is not None:
                return self._semantics.resolve_read(
                    self.name, pid, self._value, initial=self._initial
                )
            return self._value
        if isinstance(operation, Write):
            self.write_count += 1
            if self._semantics is not None:
                self._semantics.note_write(
                    self.name, pid, self._value, operation.value
                )
            self._value = operation.value
            return None
        return self._reject(operation)

    def reset(self) -> None:
        """Restore the initial value (between independent trials)."""
        self._value = self._initial
        self.write_count = 0
        self.read_count = 0
