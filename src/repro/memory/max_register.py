"""Max register (paper footnote 1).

A max register supports ``MaxWrite(v)`` and ``MaxRead()``, where reads return
the largest value ever written.  The paper observes (footnote 1) that because
Algorithm 1 only uses its snapshot to find the maximum-priority persona, max
registers suffice.  The library provides both variants of Algorithm 1 and an
experiment (E11) checking they behave identically in distribution.

Values must be mutually comparable; Algorithm 1 writes ``(priority, tiebreak,
persona)`` tuples so comparisons never reach the persona itself.
"""

from __future__ import annotations

from typing import Any

from repro.memory.base import SharedObject
from repro.runtime.operations import MaxRead, MaxWrite, Operation

__all__ = ["MaxRegister"]


class MaxRegister(SharedObject):
    """An unbounded atomic max register."""

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._value: Any = None
        self.write_count = 0
        self.read_count = 0

    @property
    def value(self) -> Any:
        """Current maximum (for inspection only)."""
        return self._value

    def apply(self, operation: Operation, pid: int) -> Any:
        if isinstance(operation, MaxWrite):
            self.write_count += 1
            if self._value is None or operation.value > self._value:
                self._value = operation.value
            return None
        if isinstance(operation, MaxRead):
            self.read_count += 1
            return self._value
        return self._reject(operation)
