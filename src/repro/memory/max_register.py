"""Max register (paper footnote 1).

A max register supports ``MaxWrite(v)`` and ``MaxRead()``, where reads return
the largest value ever written.  The paper observes (footnote 1) that because
Algorithm 1 only uses its snapshot to find the maximum-priority persona, max
registers suffice.  The library provides both variants of Algorithm 1 and an
experiment (E11) checking they behave identically in distribution.

Values must be mutually comparable; Algorithm 1 writes ``(priority, tiebreak,
persona)`` tuples so comparisons never reach the persona itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.memory.base import SharedObject
from repro.runtime.operations import MaxRead, MaxWrite, Operation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.semantics import SemanticsResolver

__all__ = ["MaxRegister"]


class MaxRegister(SharedObject):
    """An unbounded atomic max register.

    Binding a :class:`~repro.memory.semantics.SemanticsResolver` weakens
    ``MaxRead`` the same way it weakens register reads: a read concurrent
    with a ``MaxWrite`` may return the pre-write maximum (regular) or any
    maximum the register ever held (safe).  Only max-raising writes open a
    contention window — a ``MaxWrite`` that does not change the maximum is
    observationally a no-op, so there is no old/new value to disagree on;
    it does, however, prove its writer observed the current maximum, so
    that process keeps atomic reads for the rest of the window.
    """

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._value: Any = None
        self._semantics: Optional["SemanticsResolver"] = None
        self.write_count = 0
        self.read_count = 0

    @property
    def value(self) -> Any:
        """Current maximum (for inspection only)."""
        return self._value

    def bind_semantics(self, resolver: "SemanticsResolver") -> None:
        """Resolve future reads under ``resolver``'s register model."""
        self._semantics = resolver

    def apply(self, operation: Operation, pid: int) -> Any:
        if isinstance(operation, MaxWrite):
            self.write_count += 1
            if self._value is None or operation.value > self._value:
                if self._semantics is not None:
                    self._semantics.note_write(
                        self.name, pid, self._value, operation.value
                    )
                self._value = operation.value
            elif self._semantics is not None:
                # A no-op MaxWrite proves the writer linearized against a
                # maximum at least as large as its own value, so its later
                # reads must not be served anything older (read-your-writes
                # across the max-register's idempotent writes).
                self._semantics.note_observed(self.name, pid)
            return None
        if isinstance(operation, MaxRead):
            self.read_count += 1
            if self._semantics is not None:
                return self._semantics.resolve_read(
                    self.name, pid, self._value, initial=None
                )
            return self._value
        return self._reject(operation)
