"""Base class for shared-memory objects."""

from __future__ import annotations

import itertools
from typing import Any

from repro.errors import InvalidOperationError
from repro.runtime.operations import Operation

__all__ = ["SharedObject"]

_anonymous_counter = itertools.count()


class SharedObject:
    """A shared object that executes atomic operations.

    Subclasses implement :meth:`apply`, dispatching on the operation type and
    raising :class:`InvalidOperationError` for unsupported requests.  The
    simulator calls :meth:`apply` exactly once per charged step, and nothing
    else in the system mutates the object, so every operation is trivially
    atomic and the execution order is a linearization by construction.

    Every object has a :attr:`name` used in traces; anonymous objects get a
    generated one.
    """

    def __init__(self, name: str = ""):
        self.name = name or f"{type(self).__name__}-{next(_anonymous_counter)}"

    def apply(self, operation: Operation, pid: int) -> Any:
        """Execute one atomic operation on behalf of process ``pid``."""
        raise NotImplementedError

    def _reject(self, operation: Operation) -> Any:
        raise InvalidOperationError(
            f"{type(self).__name__} {self.name!r} does not support "
            f"{operation.kind} operations"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
