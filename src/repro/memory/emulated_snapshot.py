"""Wait-free atomic snapshot built from registers (Afek et al. style).

Section 2 assumes *unit-cost* snapshots and remarks that the model is
"practically irrelevant but theoretically significant": real wait-free
snapshots cost many register operations.  This module implements the
classic construction from atomic MWMR registers so the repository can
measure exactly what the unit-cost assumption hides (experiment E15):

- each component's register holds a cell ``(seq, value, embedded_view)``;
- ``update(v)`` performs an embedded ``scan``, then writes its cell with an
  incremented sequence number and the scanned view attached;
- ``scan`` repeatedly *collects* all registers; a clean double collect
  (no sequence number changed) is linearizable at the point between the two
  collects, and if some component changes **twice** during the scan, the
  scanner borrows that updater's embedded view, which was taken entirely
  inside the scanner's interval.

Wait-freedom: each failed double collect has at least one mover, and after
``n + 1`` failures some component has moved twice (pigeonhole), so a scan
costs at most ``(n + 2) * n`` reads.  An update costs a scan plus two more
steps.  Compare with 1 step in the unit-cost model.

Unlike :class:`repro.memory.snapshot.SnapshotObject` this is not a
``SharedObject`` — it is a *derived* object whose operations are
sub-programs (``yield from snapshot.update_program(...)``) issuing plain
register reads and writes, exactly how a real algorithm would layer it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.memory.register import AtomicRegister
from repro.runtime.operations import Operation, Read, Write
from repro.runtime.process import ProcessContext

__all__ = ["SnapshotCell", "EmulatedSnapshot", "LazyRegisterFile"]


class LazyRegisterFile:
    """A fixed-size register file allocated one register per first touch.

    Looks like the eager ``List[AtomicRegister]`` it replaces — indexing
    and iteration over all ``n`` slots work unchanged — but a register
    object only exists once some operation targets its index, so building
    an ``n``-component emulation costs :math:`O(1)` until processes move.
    A full collect still touches (and therefore allocates) every index:
    that is the emulation's own :math:`O(n)`-reads-per-scan price, not a
    storage artifact.
    """

    def __init__(self, n: int, name: str):
        self.n = n
        self.name = name
        self._registers: Dict[int, AtomicRegister] = {}

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> AtomicRegister:
        if not 0 <= index < self.n:
            raise IndexError(
                f"register index {index} out of range for n={self.n}"
            )
        register = self._registers.get(index)
        if register is None:
            register = AtomicRegister(f"{self.name}[{index}]")
            self._registers[index] = register
        return register

    def __iter__(self) -> Iterator[AtomicRegister]:
        for index in range(self.n):
            yield self[index]

    def allocated(self) -> List[int]:
        """Indices whose registers exist, in sorted order."""
        return sorted(self._registers)


@dataclass(frozen=True)
class SnapshotCell:
    """One component's register contents."""

    seq: int
    value: Any
    embedded_view: Tuple[Any, ...]


class EmulatedSnapshot:
    """An n-component snapshot emulated from n atomic registers."""

    def __init__(self, n: int, name: str = "emulated-snapshot"):
        if n < 1:
            raise ConfigurationError(f"snapshot needs n >= 1, got {n}")
        self.n = n
        self.name = name
        self.registers = LazyRegisterFile(n, name)
        # Instrumentation for E15 and the tests.
        self.clean_scans = 0
        self.borrowed_scans = 0

    # -- operations ---------------------------------------------------------

    def update_program(
        self, ctx: ProcessContext, value: Any
    ) -> Generator[Operation, Any, None]:
        """Write ``value`` into the caller's component (multi-step)."""
        view = yield from self.scan_program(ctx)
        own = self.registers[ctx.pid]
        current = yield Read(own)
        seq = 0 if current is None else current.seq + 1
        yield Write(own, SnapshotCell(seq=seq, value=value, embedded_view=view))

    def scan_program(
        self, ctx: ProcessContext
    ) -> Generator[Operation, Any, Tuple[Any, ...]]:
        """Atomically-linearizable read of all components (multi-step)."""
        moved = [0] * self.n
        previous = yield from self._collect()
        while True:
            current = yield from self._collect()
            if self._same_versions(previous, current):
                self.clean_scans += 1
                return self._values(current)
            for pid in range(self.n):
                if not self._same_cell_version(previous[pid], current[pid]):
                    moved[pid] += 1
                    if moved[pid] >= 2:
                        # pid performed a complete update inside our scan;
                        # its embedded view is linearizable in our interval.
                        self.borrowed_scans += 1
                        return current[pid].embedded_view
            previous = current

    # -- helpers ------------------------------------------------------------

    def _collect(
        self,
    ) -> Generator[Operation, Any, List[Optional[SnapshotCell]]]:
        cells: List[Optional[SnapshotCell]] = []
        for register in self.registers:
            cell = yield Read(register)
            cells.append(cell)
        return cells

    @staticmethod
    def _same_cell_version(
        before: Optional[SnapshotCell], after: Optional[SnapshotCell]
    ) -> bool:
        if before is None and after is None:
            return True
        if before is None or after is None:
            return False
        return before.seq == after.seq

    @classmethod
    def _same_versions(
        cls,
        before: List[Optional[SnapshotCell]],
        after: List[Optional[SnapshotCell]],
    ) -> bool:
        return all(
            cls._same_cell_version(b, a) for b, a in zip(before, after)
        )

    @staticmethod
    def _values(cells: List[Optional[SnapshotCell]]) -> Tuple[Any, ...]:
        return tuple(None if cell is None else cell.value for cell in cells)

    def scan_step_bound(self) -> int:
        """Worst-case reads per scan: (n + 2) collects of n registers."""
        return (self.n + 2) * self.n

    def update_step_bound(self) -> int:
        """Worst-case steps per update: a scan plus read + write."""
        return self.scan_step_bound() + 2
