"""Bounded max register built from 1-bit registers (Aspnes-Attiya-Censor-Hillel).

Footnote 1 of the paper observes Algorithm 1 only needs max registers and
cites [7], which constructs a linearizable max register for values in
``{0, ..., k-1}`` from a binary tree of switch bits with ``O(log k)`` steps
per operation.  This module implements that tree:

- an internal node holds one **switch** register (initially unset) and
  splits the value range between a left child (low half) and right child
  (high half);
- ``WriteMax(v)``: descend toward ``v``; going right, recurse **then** set
  the switch on the way out (so a reader that sees a set switch finds the
  high-half path already complete); going left, *first* check the switch —
  if it is already set a larger value is present and the write abandons
  (its value can never again be the maximum);
- ``ReadMax()``: at each node read the switch; go right if set, left
  otherwise; the leaf reached is the current maximum.

Following [7], the register initially holds 0 (an explicit "empty" marker
cannot be added with a side flag without breaking linearizability: a reader
could observe the flag before any tree switch is set and be forced to
return a value no write has linearized yet).

Cost: reads take at most ``depth`` steps and writes at most
``2 * depth``, with ``depth = ceil(log2 k)`` — the ``O(log k)`` of [7].
Like :class:`repro.memory.emulated_snapshot.EmulatedSnapshot`, this is a
derived object: its operations are sub-programs over plain registers.
"""

from __future__ import annotations

import math
from typing import Any, Generator

from repro.errors import ConfigurationError
from repro.memory.register import AtomicRegister
from repro.runtime.operations import Operation, Read, Write
from repro.runtime.process import ProcessContext

__all__ = ["BoundedMaxRegister"]


class _Node:
    """One range ``[low, low + span)`` of the value tree."""

    __slots__ = ("low", "span", "switch", "left", "right")

    def __init__(self, low: int, span: int, name: str):
        self.low = low
        self.span = span
        if span > 1:
            left_span = (span + 1) // 2
            self.switch = AtomicRegister(f"{name}.switch[{low}+{span}]",
                                         initial=False)
            self.left = _Node(low, left_span, name)
            self.right = _Node(low + left_span, span - left_span, name)
        else:
            self.switch = None
            self.left = None
            self.right = None


class BoundedMaxRegister:
    """Linearizable max register over ``{0..capacity-1}``, O(log k)/op.

    Initially holds 0, as in [7]; ``ReadMax`` returns the maximum of 0 and
    every linearized ``WriteMax``.
    """

    def __init__(self, capacity: int, name: str = "bounded-max"):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._root = _Node(0, capacity, name)

    @property
    def depth(self) -> int:
        """Tree depth ``ceil(log2 capacity)``."""
        return max(0, math.ceil(math.log2(self.capacity)))

    def read_step_bound(self) -> int:
        return max(1, self.depth)

    def write_step_bound(self) -> int:
        return max(1, 2 * self.depth)

    def write_program(
        self, ctx: ProcessContext, value: int
    ) -> Generator[Operation, Any, None]:
        """``WriteMax(value)`` as a register sub-program."""
        if not 0 <= value < self.capacity:
            raise ConfigurationError(
                f"value {value} outside [0, {self.capacity})"
            )
        yield from self._write_node(self._root, value)

    def _write_node(
        self, node: _Node, value: int
    ) -> Generator[Operation, Any, None]:
        if node.span == 1:
            return
        if value < node.right.low:
            switched = yield Read(node.switch)
            if switched:
                # A value from the high half is already present; ours can
                # never again be the maximum, so the write may stop.
                return
            yield from self._write_node(node.left, value)
        else:
            yield from self._write_node(node.right, value)
            yield Write(node.switch, True)

    def read_program(
        self, ctx: ProcessContext
    ) -> Generator[Operation, Any, int]:
        """``ReadMax()`` as a register sub-program."""
        node = self._root
        while node.span > 1:
            switched = yield Read(node.switch)
            node = node.right if switched else node.left
        return node.low
