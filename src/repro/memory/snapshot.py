"""Unit-cost atomic snapshot object.

Section 2 of the paper assumes a snapshot object whose ``scan`` returns the
entire vector of components in a single atomic step ("unit-cost snapshot
model").  Real wait-free snapshot constructions from registers cost
:math:`O(n)` or more per operation; the paper deliberately abstracts that
away, and so do we: ``scan`` is one charged step.

The object also maintains the *view history*: the proof of Lemma 1 depends on
views being totally ordered by inclusion ("each write ... can only add new
personae, each view is a subset of any larger views").  Tests use
:meth:`SnapshotObject.views_nest` to check this holds in every execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from repro.errors import InvalidOperationError
from repro.memory.base import SharedObject
from repro.runtime.operations import Operation, Scan, Update

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.semantics import SemanticsResolver

__all__ = ["SnapshotObject"]


class SnapshotObject(SharedObject):
    """An n-component snapshot object with unit-cost scans.

    Component ``i`` may only be updated by process ``i`` (the standard
    single-writer-per-component snapshot of the paper); a scan returns an
    immutable tuple of all components, with ``None`` for components never
    updated.

    Binding a :class:`~repro.memory.semantics.SemanticsResolver` weakens
    scans component-wise: each component behaves like a register of the
    declared model, so a scan concurrent with an update may observe that
    component's old value (regular) or any value it ever held (safe).
    View nesting (Lemma 1) is only guaranteed for the atomic model.
    """

    def __init__(self, n: int, name: str = ""):
        super().__init__(name)
        if n < 1:
            raise InvalidOperationError(f"snapshot needs n >= 1, got {n}")
        self.n = n
        self._components: List[Any] = [None] * n
        self._semantics: Optional["SemanticsResolver"] = None
        self.update_count = 0
        self.scan_count = 0
        self._view_sizes: List[int] = []

    def bind_semantics(self, resolver: "SemanticsResolver") -> None:
        """Resolve future scans component-wise under ``resolver``'s model."""
        self._semantics = resolver

    def apply(self, operation: Operation, pid: int) -> Any:
        if isinstance(operation, Update):
            if not 0 <= pid < self.n:
                raise InvalidOperationError(
                    f"pid {pid} out of range for snapshot of size {self.n}"
                )
            if self._semantics is not None:
                self._semantics.note_write(
                    f"{self.name}[{pid}]", pid,
                    self._components[pid], operation.value,
                )
            self._components[pid] = operation.value
            self.update_count += 1
            return None
        if isinstance(operation, Scan):
            self.scan_count += 1
            if self._semantics is not None:
                view = tuple(
                    self._semantics.resolve_read(
                        f"{self.name}[{index}]", pid, component, initial=None
                    )
                    for index, component in enumerate(self._components)
                )
            else:
                view = tuple(self._components)
            self._view_sizes.append(sum(1 for item in view if item is not None))
            return view
        return self._reject(operation)

    @property
    def components(self) -> Tuple[Any, ...]:
        """Current component vector (for inspection only)."""
        return tuple(self._components)

    @property
    def view_sizes(self) -> List[int]:
        """Number of non-empty components seen by each scan, in order."""
        return list(self._view_sizes)

    def views_nest(self) -> bool:
        """True if scan view sizes were non-decreasing.

        Because components are never cleared, non-decreasing sizes together
        with the single-assignment discipline imply set inclusion; the full
        inclusion check lives in :func:`repro.runtime.trace.check_snapshot_semantics`.
        """
        sizes = self._view_sizes
        return all(sizes[i] <= sizes[i + 1] for i in range(len(sizes) - 1))
