"""Unit-cost atomic snapshot object.

Section 2 of the paper assumes a snapshot object whose ``scan`` returns the
entire vector of components in a single atomic step ("unit-cost snapshot
model").  Real wait-free snapshot constructions from registers cost
:math:`O(n)` or more per operation; the paper deliberately abstracts that
away, and so do we: ``scan`` is one charged step.

The object also maintains the *view history*: the proof of Lemma 1 depends on
views being totally ordered by inclusion ("each write ... can only add new
personae, each view is a subset of any larger views").  Tests use
:meth:`SnapshotObject.views_nest` to check this holds in every execution.

Storage comes in two flavours behind the one constructor:

- **dense** (the historical default for small ``n``): a plain list of ``n``
  components; a scan returns a tuple and costs :math:`O(n)` Python work.
- **sparse** (``sparse=True``, and the automatic choice once
  ``n >= SPARSE_AUTO_THRESHOLD``): a dict keyed by the components actually
  written, so an idle process costs nothing until its first update.  Scans
  return a :class:`SparseView` — length ``n``, :math:`O(1)` indexing, but
  *iteration yields only the touched (non-default) components*, so the
  ubiquitous ``[entry for entry in view if entry is not None]`` pattern
  costs :math:`O(touched)` instead of :math:`O(n)`.  Dense and sparse modes
  are otherwise observationally equivalent (``view[i]`` agrees everywhere);
  the property suite pins that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import InvalidOperationError
from repro.memory.base import SharedObject
from repro.runtime.operations import Operation, Scan, Update

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.semantics import SemanticsResolver

__all__ = ["SPARSE_AUTO_THRESHOLD", "SnapshotObject", "SparseView"]

#: Component counts at or above this default to sparse storage.  Well below
#: it the dense list is smaller and faster; well above it the dense scan's
#: ``O(n)`` tuple copy per step is what makes million-process runs
#: infeasible.  Callers can force either mode explicitly.
SPARSE_AUTO_THRESHOLD = 1 << 14


class SparseView:
    """An immutable scan result backed by the touched components only.

    Behaves like the dense tuple for random access — ``view[i]`` is the
    component value (``None`` when never updated) for any ``0 <= i < n``,
    and ``len(view)`` is ``n`` — but **iteration yields only the touched
    components, in index order**.  That makes the conciliators' filter
    idiom (``[e for e in view if e is not None]``) a no-op pass over the
    processes that actually wrote, which is the whole point of the sparse
    model: a scan's cost follows the contention, not the namespace.
    """

    __slots__ = ("_items", "_n")

    def __init__(self, items: Tuple[Tuple[int, Any], ...], n: int):
        self._items = items
        self._n = n

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index: int) -> Any:
        if isinstance(index, slice):
            return tuple(self.dense())[index]
        if index < 0:
            index += self._n
        if not 0 <= index < self._n:
            raise IndexError(
                f"snapshot view index {index} out of range for n={self._n}"
            )
        # Touched sets are tiny relative to n by construction; a binary
        # search would only pay off past thousands of concurrent writers.
        for key, value in self._items:
            if key == index:
                return value
        return None

    def __iter__(self) -> Iterator[Any]:
        for _, value in self._items:
            yield value

    def items(self) -> Tuple[Tuple[int, Any], ...]:
        """The touched ``(index, value)`` pairs, in index order."""
        return self._items

    def touched(self) -> int:
        """Number of components ever updated at scan time."""
        return len(self._items)

    def dense(self) -> Iterator[Any]:
        """Iterate all ``n`` components densely (``None`` for untouched)."""
        position = 0
        for key, value in self._items:
            while position < key:
                yield None
                position += 1
            yield value
            position += 1
        while position < self._n:
            yield None
            position += 1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SparseView):
            return self._n == other._n and self._items == other._items
        if isinstance(other, (tuple, list)):
            return len(other) == self._n and all(
                a == b for a, b in zip(self.dense(), other)
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._n, self._items))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SparseView(n={self._n}, touched={len(self._items)})"


class SnapshotObject(SharedObject):
    """An n-component snapshot object with unit-cost scans.

    Component ``i`` may only be updated by process ``i`` (the standard
    single-writer-per-component snapshot of the paper); a scan returns an
    immutable view of all components, with ``None`` for components never
    updated.

    Args:
        n: number of components (one per process).
        sparse: storage mode.  ``None`` (default) picks dense below
            :data:`SPARSE_AUTO_THRESHOLD` and sparse at or above it;
            ``True``/``False`` force a mode.  Dense scans return plain
            tuples; sparse scans return :class:`SparseView` objects whose
            iteration covers touched components only.

    Binding a :class:`~repro.memory.semantics.SemanticsResolver` weakens
    scans component-wise: each component behaves like a register of the
    declared model, so a scan concurrent with an update may observe that
    component's old value (regular) or any value it ever held (safe).
    View nesting (Lemma 1) is only guaranteed for the atomic model.
    Weakened semantics resolve per *written* component, so they compose
    with sparse storage without touching idle components (an untouched
    component has no write history to weaken).
    """

    def __init__(self, n: int, name: str = "", *, sparse: Optional[bool] = None):
        super().__init__(name)
        if n < 1:
            raise InvalidOperationError(f"snapshot needs n >= 1, got {n}")
        self.n = n
        self.sparse = sparse if sparse is not None else n >= SPARSE_AUTO_THRESHOLD
        self._dense: List[Any] = [] if self.sparse else [None] * n
        self._sparse: Dict[int, Any] = {}
        self._semantics: Optional["SemanticsResolver"] = None
        self.update_count = 0
        self.scan_count = 0
        self._view_sizes: List[int] = []

    def bind_semantics(self, resolver: "SemanticsResolver") -> None:
        """Resolve future scans component-wise under ``resolver``'s model."""
        self._semantics = resolver

    # -- storage helpers -----------------------------------------------------

    def _get(self, index: int) -> Any:
        if self.sparse:
            return self._sparse.get(index)
        return self._dense[index]

    def _set(self, index: int, value: Any) -> None:
        if self.sparse:
            self._sparse[index] = value
        else:
            self._dense[index] = value

    def _touched_items(self) -> Tuple[Tuple[int, Any], ...]:
        return tuple(sorted(self._sparse.items()))

    def apply(self, operation: Operation, pid: int) -> Any:
        if isinstance(operation, Update):
            if not 0 <= pid < self.n:
                raise InvalidOperationError(
                    f"pid {pid} out of range for snapshot of size {self.n}"
                )
            if self._semantics is not None:
                self._semantics.note_write(
                    f"{self.name}[{pid}]", pid,
                    self._get(pid), operation.value,
                )
            self._set(pid, operation.value)
            self.update_count += 1
            return None
        if isinstance(operation, Scan):
            self.scan_count += 1
            view = self._scan_view(pid)
            self._view_sizes.append(
                view.touched() if isinstance(view, SparseView)
                else sum(1 for item in view if item is not None)
            )
            return view
        return self._reject(operation)

    def _scan_view(self, pid: int) -> Any:
        if self.sparse:
            if self._semantics is not None:
                items = tuple(
                    (index, self._semantics.resolve_read(
                        f"{self.name}[{index}]", pid, value, initial=None
                    ))
                    for index, value in self._touched_items()
                )
            else:
                items = self._touched_items()
            return SparseView(items, self.n)
        if self._semantics is not None:
            return tuple(
                self._semantics.resolve_read(
                    f"{self.name}[{index}]", pid, component, initial=None
                )
                for index, component in enumerate(self._dense)
            )
        return tuple(self._dense)

    @property
    def components(self) -> Tuple[Any, ...]:
        """Current dense component vector (for inspection only).

        Materializes ``O(n)`` even in sparse mode; inspection-only, never
        on the step path.
        """
        if self.sparse:
            return tuple(SparseView(self._touched_items(), self.n).dense())
        return tuple(self._dense)

    @property
    def touched_components(self) -> int:
        """Number of components ever updated (allocated cells when sparse)."""
        if self.sparse:
            return len(self._sparse)
        return sum(1 for item in self._dense if item is not None)

    @property
    def view_sizes(self) -> List[int]:
        """Number of non-empty components seen by each scan, in order."""
        return list(self._view_sizes)

    def views_nest(self) -> bool:
        """True if scan view sizes were non-decreasing.

        Because components are never cleared, non-decreasing sizes together
        with the single-assignment discipline imply set inclusion; the full
        inclusion check lives in :func:`repro.runtime.trace.check_snapshot_semantics`.
        """
        sizes = self._view_sizes
        return all(sizes[i] <= sizes[i + 1] for i in range(len(sizes) - 1))
