"""Lazily allocated arrays of shared objects.

Round-based protocols use one shared object per round (``A_i`` in
Algorithm 1, ``r_i`` in Algorithm 2), and consensus built from conciliators
uses an unbounded sequence of phase objects.  These helpers allocate objects
on first touch so protocols can be written against a conceptually infinite
array, while experiments can still enumerate what was actually used.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.memory.base import SharedObject
from repro.memory.register import AtomicRegister
from repro.memory.snapshot import SnapshotObject

__all__ = ["RegisterArray", "SnapshotArray", "ObjectArray"]


class ObjectArray:
    """A lazily materialized, unbounded array of shared objects."""

    def __init__(self, factory: Callable[[int], SharedObject], name: str = "array"):
        self._factory = factory
        self.name = name
        self._objects: Dict[int, SharedObject] = {}

    def __getitem__(self, index: int) -> SharedObject:
        if index < 0:
            raise IndexError(f"object array index must be >= 0, got {index}")
        if index not in self._objects:
            self._objects[index] = self._factory(index)
        return self._objects[index]

    def allocated(self) -> List[int]:
        """Indices of objects that have been touched, in sorted order."""
        return sorted(self._objects)

    def __iter__(self) -> Iterator[SharedObject]:
        for index in self.allocated():
            yield self._objects[index]

    def __len__(self) -> int:
        return len(self._objects)


class RegisterArray(ObjectArray):
    """Unbounded array of atomic registers, e.g. ``r_i`` in Algorithm 2."""

    def __init__(self, name: str = "r", initial: Any = None):
        super().__init__(
            lambda index: AtomicRegister(f"{name}[{index}]", initial=initial),
            name=name,
        )

    def __getitem__(self, index: int) -> AtomicRegister:
        register = super().__getitem__(index)
        assert isinstance(register, AtomicRegister)
        return register


class SnapshotArray(ObjectArray):
    """Unbounded array of snapshot objects, e.g. ``A_i`` in Algorithm 1.

    ``sparse`` is forwarded to every :class:`SnapshotObject` this array
    materializes (``None`` keeps the size-based automatic choice), so a
    round-indexed family of snapshots inherits the sparse storage model
    from one switch.
    """

    def __init__(self, n: int, name: str = "A", *, sparse: Optional[bool] = None):
        super().__init__(
            lambda index: SnapshotObject(n, f"{name}[{index}]", sparse=sparse),
            name=name,
        )
        self.n = n
        self.sparse = sparse

    def __getitem__(self, index: int) -> SnapshotObject:
        snapshot = super().__getitem__(index)
        assert isinstance(snapshot, SnapshotObject)
        return snapshot
