"""Observability layer: structured tracing, metrics, and benchmarking.

The paper's claims are quantitative (Theorems 1-3 bound expected steps and
rounds), so per-run step/round/contention numbers are both an engineering
and a scientific deliverable.  This package provides the measurement
substrate the rest of the repository plugs into:

- :mod:`repro.obs.events` — a versioned, JSONL-serializable trace event
  schema covering steps, register reads/writes, snapshot scans, persona
  adoptions, round transitions, crashes, and stalls;
- :mod:`repro.obs.tracing` — :class:`TraceRecorder`, a
  :class:`~repro.runtime.faults.StepHook` that records structured events
  with ring-buffer and sampling modes, and is zero-cost when not attached
  (the simulator skips all hook machinery when it has no hooks);
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` counters/histograms
  whose snapshots merge deterministically across the parallel trial engine
  (bit-identical to a serial sweep, the same contract the PR 1 engine
  makes for results);
- :mod:`repro.obs.bench` — the ``repro bench`` harness: a curated suite
  (one case per algorithm family plus a raw simulator-step microbench)
  that writes canonical ``BENCH_<label>.json`` files and a ``compare``
  mode that gates CI on steps/sec regressions.

PR 5 adds the *analysis* half — turning recordings into explanations:

- :mod:`repro.obs.analyze` — persona-lineage reconstruction,
  :class:`DisagreementReport` (why a run diverged, and in which round),
  and :class:`AttributionReport` (observed per-round step counts graded
  against :mod:`repro.analysis.theory` predictions);
- :mod:`repro.obs.timeline` — deterministic ASCII and static-HTML
  per-process timeline rendering of a trace, plus per-session waterfall
  rendering of the service layer's span trees (``repro slo waterfall``);
- :mod:`repro.obs.trend` — the append-only ``BENCH_history.jsonl``
  bench ledger and its ``repro bench trend`` summary.
"""

from repro.obs.analyze import (
    ANALYSIS_SCHEMA_VERSION,
    AdoptionStep,
    AttributionReport,
    DisagreementReport,
    PersonaLineage,
    SurvivingLineage,
    attribute_steps,
    build_lineages,
    explain_disagreement,
)
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchComparison,
    CaseComparison,
    SUITE_NAMES,
    compare_bench,
    load_bench_json,
    run_bench_suite,
    write_bench_json,
)
from repro.obs.events import (
    EVENT_KINDS,
    TRACE_SCHEMA_VERSION,
    TraceEventRecord,
    event_from_json,
    event_to_json,
    read_trace_jsonl,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Histogram,
    MetricsHook,
    MetricsRegistry,
    collecting,
    get_default_registry,
    merge_snapshots,
    set_default_registry,
)
from repro.obs.timeline import (
    render_timeline,
    render_timeline_html,
    render_waterfall,
    render_waterfall_html,
)
from repro.obs.tracing import TraceRecorder
from repro.obs.trend import (
    TREND_SCHEMA_VERSION,
    CaseTrend,
    append_history,
    history_entry,
    load_history,
    render_trend,
    summarize_trend,
)

__all__ = [
    "ANALYSIS_SCHEMA_VERSION",
    "AdoptionStep",
    "AttributionReport",
    "BENCH_SCHEMA_VERSION",
    "BenchComparison",
    "CaseComparison",
    "CaseTrend",
    "Counter",
    "DisagreementReport",
    "EVENT_KINDS",
    "Histogram",
    "METRICS_SCHEMA_VERSION",
    "MetricsHook",
    "MetricsRegistry",
    "PersonaLineage",
    "SUITE_NAMES",
    "SurvivingLineage",
    "TRACE_SCHEMA_VERSION",
    "TREND_SCHEMA_VERSION",
    "TraceEventRecord",
    "TraceRecorder",
    "append_history",
    "attribute_steps",
    "build_lineages",
    "collecting",
    "compare_bench",
    "event_from_json",
    "event_to_json",
    "explain_disagreement",
    "get_default_registry",
    "history_entry",
    "load_bench_json",
    "load_history",
    "merge_snapshots",
    "read_trace_jsonl",
    "render_timeline",
    "render_timeline_html",
    "render_trend",
    "render_waterfall",
    "render_waterfall_html",
    "run_bench_suite",
    "set_default_registry",
    "summarize_trend",
    "write_trace_jsonl",
]
