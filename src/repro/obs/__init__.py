"""Observability layer: structured tracing, metrics, and benchmarking.

The paper's claims are quantitative (Theorems 1-3 bound expected steps and
rounds), so per-run step/round/contention numbers are both an engineering
and a scientific deliverable.  This package provides the measurement
substrate the rest of the repository plugs into:

- :mod:`repro.obs.events` — a versioned, JSONL-serializable trace event
  schema covering steps, register reads/writes, snapshot scans, persona
  adoptions, round transitions, crashes, and stalls;
- :mod:`repro.obs.tracing` — :class:`TraceRecorder`, a
  :class:`~repro.runtime.faults.StepHook` that records structured events
  with ring-buffer and sampling modes, and is zero-cost when not attached
  (the simulator skips all hook machinery when it has no hooks);
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` counters/histograms
  whose snapshots merge deterministically across the parallel trial engine
  (bit-identical to a serial sweep, the same contract the PR 1 engine
  makes for results);
- :mod:`repro.obs.bench` — the ``repro bench`` harness: a curated suite
  (one case per algorithm family plus a raw simulator-step microbench)
  that writes canonical ``BENCH_<label>.json`` files and a ``compare``
  mode that gates CI on steps/sec regressions.
"""

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchComparison,
    CaseComparison,
    SUITE_NAMES,
    compare_bench,
    load_bench_json,
    run_bench_suite,
    write_bench_json,
)
from repro.obs.events import (
    EVENT_KINDS,
    TRACE_SCHEMA_VERSION,
    TraceEventRecord,
    event_from_json,
    event_to_json,
    read_trace_jsonl,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Histogram,
    MetricsHook,
    MetricsRegistry,
    collecting,
    get_default_registry,
    merge_snapshots,
    set_default_registry,
)
from repro.obs.tracing import TraceRecorder

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchComparison",
    "CaseComparison",
    "Counter",
    "EVENT_KINDS",
    "Histogram",
    "METRICS_SCHEMA_VERSION",
    "MetricsHook",
    "MetricsRegistry",
    "SUITE_NAMES",
    "TRACE_SCHEMA_VERSION",
    "TraceEventRecord",
    "TraceRecorder",
    "collecting",
    "compare_bench",
    "event_from_json",
    "event_to_json",
    "get_default_registry",
    "load_bench_json",
    "merge_snapshots",
    "read_trace_jsonl",
    "run_bench_suite",
    "set_default_registry",
    "write_trace_jsonl",
]
