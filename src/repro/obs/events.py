"""Versioned structured trace events and their JSONL encoding.

A structured trace is a sequence of :class:`TraceEventRecord` values, one
per observable occurrence in a run: a charged step (specialized by the
operation it executed), a fault-injected crash or stall, a process
finishing, protocol-level milestones (persona adoption, round transition),
and the run boundaries.  Events serialize to single-line JSON objects —
one per line, the JSONL convention — so traces stream to disk, diff
cleanly, and load without a custom parser.

Every serialized event carries ``"v": TRACE_SCHEMA_VERSION``.  Readers
reject other versions loudly (:class:`~repro.errors.ConfigurationError`)
instead of guessing: a trace is evidence, and silently misreading evidence
from a different schema generation is worse than refusing it.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigurationError

__all__ = [
    "EVENT_KINDS",
    "TRACE_SCHEMA_VERSION",
    "TraceEventRecord",
    "event_from_json",
    "event_to_json",
    "read_trace_jsonl",
    "write_trace_jsonl",
]

#: Version stamped on every serialized event; bump on incompatible change.
TRACE_SCHEMA_VERSION = 1

#: The closed set of event kinds this schema version defines.
EVENT_KINDS = (
    "run-start",
    "step",
    "register-read",
    "register-write",
    "snapshot-update",
    "snapshot-scan",
    "max-read",
    "max-write",
    "persona-adoption",
    "round-transition",
    "crash",
    "stall",
    "finish",
    "run-end",
)

#: Operation ``kind`` strings (see ``repro.runtime.operations``) mapped to
#: their specialized event kinds; unknown operations fall back to ``step``.
OPERATION_EVENT_KINDS = {
    "read": "register-read",
    "write": "register-write",
    "update": "snapshot-update",
    "scan": "snapshot-scan",
    "maxread": "max-read",
    "maxwrite": "max-write",
}


@dataclass(frozen=True)
class TraceEventRecord:
    """One structured trace event.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        step: global charged-step index at which the event occurred, or
            ``None`` for events outside the step measure (run boundaries,
            post-run protocol milestones).
        pid: the process concerned, or ``None`` for run-level events.
        payload: kind-specific details (object name, written value,
            result, round index, persona description, ...).  Values must
            be JSON-representable; the recorder is responsible for
            converting exotic results with ``repr`` before they get here.
    """

    kind: str
    step: Any = None
    pid: Any = None
    payload: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown trace event kind {self.kind!r}; "
                f"this schema version defines {EVENT_KINDS}"
            )


def event_to_json(event: TraceEventRecord) -> Dict[str, Any]:
    """The plain-JSON form of one event (keys sorted when dumped)."""
    data: Dict[str, Any] = {"v": TRACE_SCHEMA_VERSION, "kind": event.kind}
    if event.step is not None:
        data["step"] = event.step
    if event.pid is not None:
        data["pid"] = event.pid
    if event.payload:
        data["payload"] = dict(event.payload)
    return data


def event_from_json(data: Dict[str, Any]) -> TraceEventRecord:
    """Rebuild an event, rejecting other schema versions.

    Raises :class:`~repro.errors.ConfigurationError` for non-objects,
    missing/foreign versions, and unknown kinds.
    """
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"trace event must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("v")
    if version != TRACE_SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported trace event version {version!r}; this build "
            f"reads version {TRACE_SCHEMA_VERSION}"
        )
    return TraceEventRecord(
        kind=str(data.get("kind", "")),
        step=data.get("step"),
        pid=data.get("pid"),
        payload=dict(data.get("payload", {})),
    )


def dumps_event(event: TraceEventRecord) -> str:
    """One canonical JSONL line (sorted keys, no trailing newline)."""
    return json.dumps(event_to_json(event), sort_keys=True,
                      separators=(",", ":"))


def loads_event(line: str) -> TraceEventRecord:
    """Parse one JSONL line back into an event."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"trace line is not valid JSON: {error}"
        ) from error
    return event_from_json(data)


def write_trace_jsonl(
    events: Iterable[TraceEventRecord], path: Union[str, Path]
) -> int:
    """Write events as JSONL to ``path``; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(dumps_event(event))
            handle.write("\n")
            count += 1
    return count


def read_trace_jsonl(path: Union[str, Path]) -> List[TraceEventRecord]:
    """Load a JSONL trace, validating the version of every line."""
    return list(iter_trace_jsonl(path))


def iter_trace_jsonl(path: Union[str, Path]) -> Iterator[TraceEventRecord]:
    """Stream a JSONL trace without holding it all in memory.

    Tolerates a torn *final* line — the signature of a writer killed
    mid-append, the same contract as the checkpoint journal — by dropping
    it with a warning instead of crashing mid-triage.  An unparseable
    line with durable lines after it is corruption, not tearing, and
    raises; so does any parseable line with a foreign schema version,
    even at the tail (a version mismatch is never a partial write).
    """
    pending: Optional[Tuple[int, str]] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if pending is not None:
                raise ConfigurationError(
                    f"trace {str(path)!r} line {pending[0]} is unreadable "
                    f"but later lines exist: {pending[1]}"
                )
            try:
                data = json.loads(line)
            except json.JSONDecodeError as error:
                pending = (line_number, str(error))
                continue
            yield event_from_json(data)
    if pending is not None:
        warnings.warn(
            f"trace {str(path)!r} ends with a torn line "
            f"(line {pending[0]}); dropping it: {pending[1]}",
            RuntimeWarning,
            stacklevel=2,
        )


__all__ += ["OPERATION_EVENT_KINDS", "dumps_event", "iter_trace_jsonl",
            "loads_event"]
