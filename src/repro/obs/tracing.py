"""Structured trace recording as a simulator step hook.

:class:`TraceRecorder` subclasses :class:`~repro.runtime.faults.StepHook`
(the PR 2 protocol), so it attaches to any run via the ordinary ``hooks=``
argument and observes exactly what every other hook observes — charged
steps, injected crashes, withheld slots, completions, and run boundaries.
It converts each into a versioned :class:`~repro.obs.events.TraceEventRecord`.

Cost model:

- **Not attached** (the default): zero cost.  The simulator's step loop
  takes a guarded fast path when it has no hooks at all, so a run without
  observers executes no tracing code whatsoever.
- **Attached, ring buffer**: ``capacity=k`` keeps only the most recent
  ``k`` events in a ``deque`` — constant memory for arbitrarily long runs,
  ideal for "what happened just before the violation" forensics.
- **Attached, sampling**: ``sample_every=k`` records every ``k``-th step
  event (lifecycle events — crash, stall, finish, run boundaries — are
  always recorded; they are rare and carry the causal skeleton).
- **Attached, pid sampling** (the million-process mode): per-process
  lifecycle events stop being "rare" once there are :math:`10^6`
  processes — every pid emits at least a ``finish`` — so
  ``pid_sample_every=k`` restricts *all* per-pid events (steps and
  lifecycle alike) to the strided pid subset ``{0, k, 2k, ...}``, and
  ``pid_reservoir=m`` with ``reservoir_seed`` keeps a seeded
  pseudo-random subset of at most ``m`` pids instead (drawn once per run
  from the run's ``n``; deterministic given the seed).  Run boundaries
  (``run-start`` / ``run-end``) are always recorded — they carry the
  whole-run accounting.  The two pid filters are mutually exclusive.

Protocol-level milestones (persona adoption, round transitions) are not
visible at the shared-memory interface, so they cannot be captured at step
granularity without instrumenting every protocol.  Instead,
:meth:`TraceRecorder.annotate_conciliator` derives them after a run from
the round bookkeeping every :class:`~repro.core.conciliator.Conciliator`
already keeps.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional, Union

from repro.errors import ConfigurationError
from repro.obs.events import (
    OPERATION_EVENT_KINDS,
    TraceEventRecord,
    write_trace_jsonl,
)
from repro.runtime.faults import StepHook
from repro.runtime.operations import Operation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.core.conciliator import Conciliator
    from repro.runtime.results import RunResult
    from repro.runtime.simulator import Simulator

__all__ = ["TraceRecorder"]


def _jsonable(value: Any) -> Any:
    """Coerce a traced value into something JSON-representable."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


class TraceRecorder(StepHook):
    """Record structured, versioned trace events during a run.

    Args:
        capacity: ring-buffer size; ``None`` keeps every recorded event.
        sample_every: record every ``k``-th step event (1 = all).
            Lifecycle events are exempt from this *step* sampling.
        pid_sample_every: restrict every per-pid event (steps *and*
            lifecycle) to pids divisible by ``k`` (1 = all pids).  This is
            what keeps observability affordable at millions of processes,
            where even one ``finish`` event per pid is a gigabyte.
        pid_reservoir: instead of a stride, keep a seeded pseudo-random
            subset of at most this many pids, drawn once per run from the
            run's process count (``random.Random(reservoir_seed).sample``),
            so the retained pids are unbiased in pid order yet exactly
            reproducible.  Mutually exclusive with ``pid_sample_every``.
        reservoir_seed: seed for the reservoir draw (default 0).
        include_values: include written values and results in payloads
            (True by default; disable to shrink traces of value-heavy
            protocols while keeping the step/object skeleton).

    Run boundaries (``run-start`` / ``run-end``) are never pid-sampled;
    events recorded before any run starts (externally emitted milestones)
    pass the reservoir filter untouched, because the population is not
    known until ``on_run_start``.
    """

    def __init__(
        self,
        *,
        capacity: Optional[int] = None,
        sample_every: int = 1,
        pid_sample_every: int = 1,
        pid_reservoir: Optional[int] = None,
        reservoir_seed: int = 0,
        include_values: bool = True,
    ):
        if capacity is not None and capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1 (or None), got {capacity}"
            )
        if sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        if pid_sample_every < 1:
            raise ConfigurationError(
                f"pid_sample_every must be >= 1, got {pid_sample_every}"
            )
        if pid_reservoir is not None:
            if pid_reservoir < 1:
                raise ConfigurationError(
                    f"pid_reservoir must be >= 1 (or None), got "
                    f"{pid_reservoir}"
                )
            if pid_sample_every != 1:
                raise ConfigurationError(
                    "pid_sample_every and pid_reservoir are mutually "
                    "exclusive pid filters; set at most one"
                )
        self.capacity = capacity
        self.sample_every = sample_every
        self.pid_sample_every = pid_sample_every
        self.pid_reservoir = pid_reservoir
        self.reservoir_seed = reservoir_seed
        self.include_values = include_values
        self._reservoir: Optional[frozenset] = None
        self._events: Deque[TraceEventRecord] = deque(maxlen=capacity)
        self._step_events_seen = 0
        #: Events recorded (post-sampling) over the recorder's lifetime,
        #: even those since evicted from a full ring buffer.
        self.recorded_total = 0
        #: Step events observed before sampling, for sampling diagnostics.
        self.steps_observed = 0
        #: Per-pid events dropped by the pid filter, for diagnostics.
        self.pid_events_dropped = 0
        #: Events evicted from a full ring buffer to make room.  Nonzero
        #: means "the trace you are reading is a suffix": the events were
        #: recorded, then aged out — distinct from ``pid_events_dropped``,
        #: which counts events the filters never recorded at all.
        self.ring_dropped = 0

    # ----- access ----------------------------------------------------------

    @property
    def events(self) -> List[TraceEventRecord]:
        """The retained events, in recording order."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events_of_kind(self, kind: str) -> List[TraceEventRecord]:
        """Retained events of one kind, in recording order."""
        return [event for event in self._events if event.kind == kind]

    def to_jsonl(self, path: Union[str, "Path"]) -> int:
        """Write the retained events as JSONL; returns the count written."""
        return write_trace_jsonl(self._events, path)

    # ----- recording -------------------------------------------------------

    def _record(self, event: TraceEventRecord) -> None:
        if self.capacity is not None and len(self._events) == self.capacity:
            self.ring_dropped += 1
        self._events.append(event)
        self.recorded_total += 1

    def metadata(self) -> dict:
        """Retention counters, for trace headers and ``repro explain``.

        ``recorded_total`` - ``ring_dropped`` == ``retained`` always
        holds; ``steps_observed`` and ``pid_events_dropped`` say how much
        the sampling filters discarded *before* recording.
        """
        return {
            "recorded_total": self.recorded_total,
            "retained": len(self._events),
            "steps_observed": self.steps_observed,
            "ring_dropped": self.ring_dropped,
            "pid_events_dropped": self.pid_events_dropped,
        }

    def emit(self, event: TraceEventRecord) -> None:
        """Record an externally built event (protocol milestones, tests)."""
        self._record(event)

    # ----- pid sampling -----------------------------------------------------

    def _pid_sampled(self, pid: int) -> bool:
        """True when ``pid``'s events should be retained."""
        if self.pid_reservoir is not None:
            if self._reservoir is None:
                return True  # population unknown before the run starts
            return pid in self._reservoir
        return pid % self.pid_sample_every == 0

    @property
    def sampled_pids(self) -> Optional[frozenset]:
        """The reservoir pid set once a run has started (else ``None``)."""
        return self._reservoir

    # ----- StepHook interface ----------------------------------------------

    def on_run_start(self, simulator: "Simulator") -> None:
        if self.pid_reservoir is not None:
            import random

            population = simulator.n
            size = min(self.pid_reservoir, population)
            self._reservoir = frozenset(
                random.Random(self.reservoir_seed).sample(
                    range(population), size
                )
            )
        self._record(TraceEventRecord(
            kind="run-start",
            payload={"n": simulator.n, "step_limit": simulator.step_limit},
        ))

    def after_step(
        self, pid: int, step_index: int, operation: Operation, result: Any
    ) -> None:
        self.steps_observed += 1
        if not self._pid_sampled(pid):
            self.pid_events_dropped += 1
            self._step_events_seen += 1
            return
        if self._step_events_seen % self.sample_every == 0:
            kind = OPERATION_EVENT_KINDS.get(operation.kind, "step")
            payload = {"obj": operation.obj.name, "op": operation.kind}
            if self.include_values:
                value = getattr(operation, "value", None)
                if value is not None:
                    payload["value"] = _jsonable(value)
                if result is not None:
                    payload["result"] = _jsonable(result)
            self._record(TraceEventRecord(
                kind=kind, step=step_index, pid=pid, payload=payload,
            ))
        self._step_events_seen += 1

    def before_step(
        self,
        pid: int,
        process_steps: int,
        global_steps: int,
        operation: Optional[Operation],
    ) -> Optional[str]:
        return None

    def on_skip(self, pid: int, global_steps: int) -> None:
        if not self._pid_sampled(pid):
            self.pid_events_dropped += 1
            return
        self._record(TraceEventRecord(
            kind="stall", step=global_steps, pid=pid,
        ))

    def on_crash(self, pid: int, steps_taken: int) -> None:
        if not self._pid_sampled(pid):
            self.pid_events_dropped += 1
            return
        self._record(TraceEventRecord(
            kind="crash", pid=pid, payload={"steps_taken": steps_taken},
        ))

    def on_finish(self, pid: int, output: Any) -> None:
        if not self._pid_sampled(pid):
            self.pid_events_dropped += 1
            return
        payload = {}
        if self.include_values:
            payload["output"] = _jsonable(output)
        self._record(TraceEventRecord(kind="finish", pid=pid, payload=payload))

    def on_run_end(self, result: "RunResult") -> None:
        self._record(TraceEventRecord(
            kind="run-end",
            payload={
                "completed": result.completed,
                "total_steps": result.total_steps,
                "max_individual_steps": result.max_individual_steps,
                "crashed": sorted(result.crashed),
            },
        ))

    # ----- protocol milestones ---------------------------------------------

    def _emit_adoption(
        self, round_number: int, pid: int, persona: Any, protocol: str
    ) -> None:
        payload: dict = {
            "round": round_number,
            "persona": _jsonable(persona),
            "origin": getattr(persona, "origin", None),
            "protocol": protocol,
        }
        if self.include_values:
            payload["value"] = _jsonable(getattr(persona, "value", None))
            payload["coin"] = getattr(persona, "coin", None)
        self._record(TraceEventRecord(
            kind="persona-adoption", pid=pid, payload=payload,
        ))

    def annotate_conciliator(self, conciliator: "Conciliator") -> int:
        """Derive persona-adoption and round-transition events post-run.

        Round bookkeeping is local to each process (free in the step
        measure), so these events carry no ``step`` index; they describe
        the protocol's logical progress, ordered by round.  Returns the
        number of events appended.

        Algorithm 3 (:class:`~repro.core.cil_embedded.CILEmbeddedConciliator`)
        keeps no outer-loop bookkeeping — its rounds live in the embedded
        inner conciliator — so annotation descends into ``.inner`` when the
        outer object recorded nothing.  A conciliator with no bookkeeping
        anywhere (an unknown program shape, or one that never ran) raises
        :class:`~repro.errors.ConfigurationError` instead of silently
        emitting nothing: an empty annotation would read as "no adoptions
        happened", which is never true of a completed run.
        """
        from repro.core.conciliator import Conciliator

        if not isinstance(conciliator, Conciliator):
            raise ConfigurationError(
                f"annotate_conciliator needs a Conciliator, got "
                f"{type(conciliator).__name__}"
            )
        target = conciliator
        while not target._initial and not target._after_round:
            inner = getattr(target, "inner", None)
            if not isinstance(inner, Conciliator):
                raise ConfigurationError(
                    f"conciliator {conciliator.name!r} "
                    f"({type(conciliator).__name__}) has no round "
                    f"bookkeeping to annotate: unknown program shape, or "
                    f"the conciliator never ran"
                )
            target = inner
        protocol = target.name
        appended = 0
        for pid in sorted(target._initial):
            self._emit_adoption(0, pid, target._initial[pid], protocol)
            appended += 1
        for round_index in sorted(target._after_round):
            holders = target._after_round[round_index]
            survivors = target.survivors_after_round(round_index)
            self._record(TraceEventRecord(
                kind="round-transition",
                payload={
                    "round": round_index,
                    "survivors": survivors,
                    "protocol": protocol,
                },
            ))
            appended += 1
            for pid in sorted(holders):
                self._emit_adoption(
                    round_index + 1, pid, holders[pid], protocol
                )
                appended += 1
        return appended
