"""Append-only bench trend ledger: ``benchmarks/BENCH_history.jsonl``.

A single bench report answers "how fast is this commit?"; the gate
(:func:`~repro.obs.bench.compare_bench`) answers "did this PR regress?".
Neither answers "what has steps/sec done over the last ten PRs?" — that
needs history.  This module keeps it as JSONL: one line per bench run,
carrying the git SHA, the creation time, and each case's steps/sec.
Appending a line never rewrites earlier ones, so the ledger survives
crashes mid-append with at most one torn final line — which the reader
tolerates with a warning, the same contract as the PR 2 checkpoint
journal and :func:`~repro.obs.events.iter_trace_jsonl`.

Entries carry ``"v": TREND_SCHEMA_VERSION`` and foreign versions are
rejected loudly.  Timing numbers are host-dependent; the summary compares
entries from whatever hosts produced them, so read cross-host deltas as
context, not verdicts (the ``env`` fingerprint in the full bench report is
the tie-breaker).
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

__all__ = [
    "TREND_SCHEMA_VERSION",
    "CaseTrend",
    "append_history",
    "history_entry",
    "load_history",
    "render_trend",
    "summarize_trend",
]

#: Version stamped on every ledger line; bump on incompatible change.
TREND_SCHEMA_VERSION = 1

_ENTRY_KIND = "repro-bench-history"


def history_entry(report: Dict[str, Any]) -> Dict[str, Any]:
    """Distill one bench report (see ``run_bench_suite``) to a ledger line."""
    if "cases" not in report or "label" not in report:
        raise ConfigurationError(
            "not a bench report: missing 'cases'/'label'; build one with "
            "run_bench_suite"
        )
    return {
        "v": TREND_SCHEMA_VERSION,
        "kind": _ENTRY_KIND,
        "label": report["label"],
        "quick": bool(report.get("quick", False)),
        "seed": report.get("seed"),
        "git_sha": report.get("git_sha", "unknown"),
        "created_unix": report.get("created_unix"),
        "cases": {
            name: case["steps_per_sec"]
            for name, case in sorted(report["cases"].items())
        },
    }


def append_history(
    report: Dict[str, Any], path: Union[str, Path]
) -> Dict[str, Any]:
    """Append one report's ledger line to ``path``; returns the entry."""
    entry = history_entry(report)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True,
                                separators=(",", ":")))
        handle.write("\n")
    return entry


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load the ledger, in append order.

    A missing file is an empty history.  An unparseable *final* line is a
    torn append — tolerated with a warning.  An unparseable line with
    durable entries after it, or any parseable line with a foreign
    version, raises :class:`~repro.errors.ConfigurationError`.
    """
    path = Path(path)
    if not path.exists():
        return []
    entries: List[Dict[str, Any]] = []
    pending_error: Optional[Tuple[int, str]] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if pending_error is not None:
                raise ConfigurationError(
                    f"bench history {str(path)!r} line {pending_error[0]} "
                    f"is unreadable but later entries exist: "
                    f"{pending_error[1]}"
                )
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as error:
                pending_error = (line_number, str(error))
                continue
            if not isinstance(entry, dict) \
                    or entry.get("v") != TREND_SCHEMA_VERSION:
                version = entry.get("v") if isinstance(entry, dict) else None
                raise ConfigurationError(
                    f"unsupported bench history version {version!r} at "
                    f"{str(path)!r} line {line_number}; this build reads "
                    f"version {TREND_SCHEMA_VERSION}"
                )
            entries.append(entry)
    if pending_error is not None:
        warnings.warn(
            f"bench history {str(path)!r} ends with a torn line "
            f"(line {pending_error[0]}); dropping it: {pending_error[1]}",
            RuntimeWarning,
            stacklevel=2,
        )
    return entries


@dataclass(frozen=True)
class CaseTrend:
    """One case's trajectory across the loaded ledger entries."""

    name: str
    points: int
    first_steps_per_sec: float
    last_steps_per_sec: float
    #: Fractional change from the newest entry's predecessor; ``None``
    #: when the case appears in fewer than two entries.
    latest_change: Optional[float]
    #: Fractional change across the whole window (first -> last).
    overall_change: Optional[float]


def _fraction(old: float, new: float) -> Optional[float]:
    return (new - old) / old if old > 0 else None


def summarize_trend(
    entries: Sequence[Dict[str, Any]], *, last: Optional[int] = None
) -> List[CaseTrend]:
    """Per-case first/last/delta summary over the (windowed) ledger.

    ``last`` restricts the window to the newest N entries.  Cases are
    summarized independently because the suite can gain cases over time.
    """
    if last is not None:
        if last < 1:
            raise ConfigurationError(f"last must be >= 1, got {last}")
        entries = list(entries)[-last:]
    series: Dict[str, List[float]] = {}
    for entry in entries:
        for name, steps_per_sec in entry.get("cases", {}).items():
            series.setdefault(name, []).append(float(steps_per_sec))
    trends: List[CaseTrend] = []
    for name in sorted(series):
        values = series[name]
        trends.append(CaseTrend(
            name=name,
            points=len(values),
            first_steps_per_sec=values[0],
            last_steps_per_sec=values[-1],
            latest_change=(
                _fraction(values[-2], values[-1]) if len(values) >= 2
                else None
            ),
            overall_change=(
                _fraction(values[0], values[-1]) if len(values) >= 2
                else None
            ),
        ))
    return trends


def render_trend(
    entries: Sequence[Dict[str, Any]], *, last: Optional[int] = None
) -> str:
    """Human-readable trend table for terminal output."""
    if not entries:
        return ("bench history is empty; run `repro bench --history` to "
                "start the ledger")
    trends = summarize_trend(entries, last=last)
    window = list(entries)[-last:] if last is not None else list(entries)
    first_sha = str(window[0].get("git_sha", "unknown"))[:12]
    last_sha = str(window[-1].get("git_sha", "unknown"))[:12]
    lines = [
        f"bench trend over {len(window)} entr"
        f"{'y' if len(window) == 1 else 'ies'} "
        f"({first_sha} -> {last_sha})",
        f"{'case':<24} {'first':>12} {'last':>12} {'latest':>8} "
        f"{'overall':>8}  points",
    ]
    for trend in trends:
        latest = (f"{trend.latest_change:+.1%}"
                  if trend.latest_change is not None else "-")
        overall = (f"{trend.overall_change:+.1%}"
                   if trend.overall_change is not None else "-")
        lines.append(
            f"{trend.name:<24} {trend.first_steps_per_sec:>12.0f} "
            f"{trend.last_steps_per_sec:>12.0f} {latest:>8} {overall:>8}  "
            f"{trend.points}"
        )
    return "\n".join(lines)
