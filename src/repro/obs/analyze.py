"""Trace analytics: persona lineage, disagreement root-cause, attribution.

PR 4's :class:`~repro.obs.events.TraceEventRecord` streams record *what
happened*; this module answers *why*.  Three analyses, all pure functions
of an event list (so they are deterministic, replayable on saved JSONL
traces, and byte-identical regardless of how the trace was produced):

- :func:`build_lineages` reconstructs, per process, the chain of persona
  adoptions — which round each adoption happened in, whether the process
  kept its own persona or adopted another, and (best effort) which write
  by which process the adoption read;
- :func:`explain_disagreement` folds the lineages into a versioned
  :class:`DisagreementReport` naming the divergence round and the
  surviving lineages of a disagreeing run;
- :func:`attribute_steps` folds register/snapshot operation events into
  per-round step counts and compares them against the closed-form
  predictions of :mod:`repro.analysis.theory`, producing a versioned
  :class:`AttributionReport` with observed-vs-predicted deltas.

Both report types serialize with ``"v": ANALYSIS_SCHEMA_VERSION`` and
their readers reject foreign versions loudly, the same contract every
other JSON artifact in this repository makes.

The analyses assume an *unsampled* trace (``TraceRecorder`` defaults:
``capacity=None``, ``sample_every=1``): a thinned trace silently
undercounts steps and drops adoption evidence.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import TraceEventRecord

__all__ = [
    "ANALYSIS_SCHEMA_VERSION",
    "AdoptionStep",
    "AttributionReport",
    "DisagreementReport",
    "PersonaLineage",
    "SurvivingLineage",
    "attribute_steps",
    "build_lineages",
    "explain_disagreement",
]

#: Version stamped on every serialized analysis report; bump on change.
ANALYSIS_SCHEMA_VERSION = 1

_DISAGREEMENT_KIND = "repro-disagreement-report"
_ATTRIBUTION_KIND = "repro-attribution-report"

#: Round-indexed shared objects: ``<name>.r[i]`` (sifting round registers),
#: ``<name>.A[i]`` (snapshot round arrays), ``<name>.M[i]`` (max registers).
#: Other objects (CIL proposal, combine stage, adopt-commit flags) are not
#: round-indexed and land in the unattributed bucket.
_ROUND_OBJECT = re.compile(r"\.(?:r|A|M)\[(\d+)\]")

_READ_KINDS = frozenset({"register-read", "snapshot-scan", "max-read"})
_WRITE_KINDS = frozenset({"register-write", "snapshot-update", "max-write"})
_OP_KINDS = _READ_KINDS | _WRITE_KINDS | {"step"}


def _round_index(obj_name: str) -> Optional[int]:
    """The round a shared object belongs to, or ``None`` if not round-indexed."""
    match = _ROUND_OBJECT.search(obj_name)
    return int(match.group(1)) if match else None


def _payload_mentions(value: Any, needle: str) -> bool:
    """True when ``needle`` (a persona repr) appears anywhere in ``value``."""
    if value is None:
        return False
    if isinstance(value, str):
        return needle in value
    return needle in json.dumps(value, sort_keys=True, default=repr)


def _check_version(data: Any, kind: str) -> Dict[str, Any]:
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"analysis report must be a JSON object, got {type(data).__name__}"
        )
    if data.get("v") != ANALYSIS_SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported analysis report version {data.get('v')!r}; this "
            f"build reads version {ANALYSIS_SCHEMA_VERSION}"
        )
    if data.get("kind") != kind:
        raise ConfigurationError(
            f"wrong analysis report kind {data.get('kind')!r}; expected {kind!r}"
        )
    return data


# ----- persona lineage -------------------------------------------------------


@dataclass(frozen=True)
class AdoptionStep:
    """One link in a process's persona chain.

    ``round_number`` follows the annotation convention of
    :meth:`~repro.obs.tracing.TraceRecorder.annotate_conciliator`: round 0
    is the initial persona, round ``k >= 1`` the persona held after
    protocol round ``k - 1`` — i.e. acquired through operations on the
    round-``k-1`` shared object.  ``writer_pid``/``write_step`` name the
    write the adoption read, reconstructed best-effort by matching the
    persona against operation payloads; they stay ``None`` when the
    process kept its own persona or the trace lacks the evidence (values
    stripped, ring buffer eviction).
    """

    round_number: int
    persona: str
    value: Any = None
    origin: Optional[int] = None
    kept_own: bool = True
    read_obj: Optional[str] = None
    read_step: Optional[int] = None
    writer_pid: Optional[int] = None
    write_step: Optional[int] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "round": self.round_number,
            "persona": self.persona,
            "value": self.value,
            "origin": self.origin,
            "kept_own": self.kept_own,
            "read_obj": self.read_obj,
            "read_step": self.read_step,
            "writer_pid": self.writer_pid,
            "write_step": self.write_step,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "AdoptionStep":
        return cls(
            round_number=int(data["round"]),
            persona=str(data["persona"]),
            value=data.get("value"),
            origin=data.get("origin"),
            kept_own=bool(data.get("kept_own", True)),
            read_obj=data.get("read_obj"),
            read_step=data.get("read_step"),
            writer_pid=data.get("writer_pid"),
            write_step=data.get("write_step"),
        )


@dataclass(frozen=True)
class PersonaLineage:
    """One process's full persona-adoption chain, in round order."""

    pid: int
    steps: Tuple[AdoptionStep, ...]

    @property
    def final(self) -> Optional[AdoptionStep]:
        return self.steps[-1] if self.steps else None

    def held_at(self, round_number: int) -> Optional[AdoptionStep]:
        """The latest adoption at or before ``round_number``."""
        held = None
        for step in self.steps:
            if step.round_number > round_number:
                break
            held = step
        return held

    def to_json(self) -> Dict[str, Any]:
        return {
            "pid": self.pid,
            "steps": [step.to_json() for step in self.steps],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "PersonaLineage":
        return cls(
            pid=int(data["pid"]),
            steps=tuple(
                AdoptionStep.from_json(step) for step in data.get("steps", ())
            ),
        )


def _find_provenance(
    events: Sequence[TraceEventRecord],
    pid: int,
    register_round: int,
    persona: str,
) -> Tuple[Optional[str], Optional[int], Optional[int], Optional[int]]:
    """Best-effort (read_obj, read_step, writer_pid, write_step) for an
    adoption: the read by ``pid`` on a round-``register_round`` object whose
    result mentions ``persona``, and the latest earlier write of it there."""
    read_obj: Optional[str] = None
    read_step: Optional[int] = None
    for event in events:
        if event.kind not in _READ_KINDS or event.pid != pid:
            continue
        obj = event.payload.get("obj", "")
        if _round_index(obj) != register_round:
            continue
        if _payload_mentions(event.payload.get("result"), persona):
            read_obj, read_step = obj, event.step
            break
    if read_obj is None:
        return None, None, None, None
    writer_pid: Optional[int] = None
    write_step: Optional[int] = None
    for event in events:
        if event.kind not in _WRITE_KINDS:
            continue
        if event.payload.get("obj") != read_obj:
            continue
        if read_step is not None and event.step is not None \
                and event.step >= read_step:
            continue
        if _payload_mentions(event.payload.get("value"), persona):
            writer_pid, write_step = event.pid, event.step
    return read_obj, read_step, writer_pid, write_step


def build_lineages(
    events: Sequence[TraceEventRecord],
) -> Dict[int, PersonaLineage]:
    """Reconstruct every process's persona chain from an annotated trace.

    Requires ``persona-adoption`` events (see
    :meth:`~repro.obs.tracing.TraceRecorder.annotate_conciliator`); raises
    :class:`~repro.errors.ConfigurationError` when the trace has none,
    because an empty lineage map would be indistinguishable from "nobody
    ever adopted anything".
    """
    adoptions: Dict[int, Dict[int, TraceEventRecord]] = {}
    for event in events:
        if event.kind != "persona-adoption" or event.pid is None:
            continue
        round_number = int(event.payload.get("round", 0))
        adoptions.setdefault(int(event.pid), {})[round_number] = event
    if not adoptions:
        raise ConfigurationError(
            "trace carries no persona-adoption events; annotate the trace "
            "with TraceRecorder.annotate_conciliator before building lineages"
        )
    lineages: Dict[int, PersonaLineage] = {}
    for pid in sorted(adoptions):
        steps: List[AdoptionStep] = []
        previous: Optional[str] = None
        for round_number in sorted(adoptions[pid]):
            payload = adoptions[pid][round_number].payload
            persona = str(payload.get("persona", ""))
            kept_own = previous is None or persona == previous
            read_obj = read_step = writer_pid = write_step = None
            if round_number >= 1 and not kept_own:
                read_obj, read_step, writer_pid, write_step = _find_provenance(
                    events, pid, round_number - 1, persona
                )
            steps.append(AdoptionStep(
                round_number=round_number,
                persona=persona,
                value=payload.get("value"),
                origin=payload.get("origin"),
                kept_own=kept_own,
                read_obj=read_obj,
                read_step=read_step,
                writer_pid=writer_pid,
                write_step=write_step,
            ))
            previous = persona
        lineages[pid] = PersonaLineage(pid=pid, steps=tuple(steps))
    return lineages


# ----- disagreement root-cause -----------------------------------------------


@dataclass(frozen=True)
class SurvivingLineage:
    """One distinct final persona and the processes that ended holding it."""

    persona: str
    value: Any
    origin: Optional[int]
    holders: Tuple[int, ...]

    def to_json(self) -> Dict[str, Any]:
        return {
            "persona": self.persona,
            "value": self.value,
            "origin": self.origin,
            "holders": list(self.holders),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SurvivingLineage":
        return cls(
            persona=str(data["persona"]),
            value=data.get("value"),
            origin=data.get("origin"),
            holders=tuple(int(pid) for pid in data.get("holders", ())),
        )


@dataclass(frozen=True)
class DisagreementReport:
    """Why a conciliator run ended with more than one surviving persona.

    ``divergence_round`` is the smallest recorded round ``d`` such that
    the processes never again all hold one persona from round ``d``
    onward — equivalently, one past the last unanimous round, or 0 when
    the initial personae already never converged.  ``None`` when the run
    did not diverge.
    """

    diverged: bool
    divergence_round: Optional[int]
    rounds_recorded: int
    survivors: Tuple[SurvivingLineage, ...]
    lineages: Tuple[PersonaLineage, ...]
    note: str = ""

    @property
    def final_values(self) -> Tuple[Any, ...]:
        """The distinct surviving values, in survivor order."""
        return tuple(survivor.value for survivor in self.survivors)

    def to_json(self) -> Dict[str, Any]:
        return {
            "v": ANALYSIS_SCHEMA_VERSION,
            "kind": _DISAGREEMENT_KIND,
            "diverged": self.diverged,
            "divergence_round": self.divergence_round,
            "rounds_recorded": self.rounds_recorded,
            "survivors": [survivor.to_json() for survivor in self.survivors],
            "lineages": [lineage.to_json() for lineage in self.lineages],
            "note": self.note,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "DisagreementReport":
        data = _check_version(data, _DISAGREEMENT_KIND)
        return cls(
            diverged=bool(data["diverged"]),
            divergence_round=data.get("divergence_round"),
            rounds_recorded=int(data.get("rounds_recorded", 0)),
            survivors=tuple(
                SurvivingLineage.from_json(entry)
                for entry in data.get("survivors", ())
            ),
            lineages=tuple(
                PersonaLineage.from_json(entry)
                for entry in data.get("lineages", ())
            ),
            note=str(data.get("note", "")),
        )

    def render(self) -> str:
        """Human-readable summary for terminal triage."""
        if not self.diverged:
            lines = [
                "no disagreement: every process ended holding the same "
                f"persona (over {self.rounds_recorded} recorded round(s))"
            ]
        else:
            lines = [
                f"DISAGREEMENT: {len(self.survivors)} personae survived "
                f"{self.rounds_recorded} recorded round(s); "
                f"divergence round: {self.divergence_round}",
            ]
            for survivor in self.survivors:
                holders = ",".join(f"p{pid}" for pid in survivor.holders)
                lines.append(
                    f"  {survivor.persona} (value={survivor.value!r}) "
                    f"held by {holders}"
                )
            for lineage in self.lineages:
                hops = []
                for step in lineage.steps:
                    if step.kept_own:
                        continue
                    src = (f"p{step.writer_pid}@{step.write_step}"
                           if step.writer_pid is not None else "?")
                    hops.append(
                        f"r{step.round_number}<-{src}:{step.persona}"
                    )
                chain = "; ".join(hops) if hops else "kept its own persona"
                lines.append(f"  p{lineage.pid}: {chain}")
        if self.note:
            lines.append(f"note: {self.note}")
        return "\n".join(lines)


def explain_disagreement(
    events: Sequence[TraceEventRecord], *, note: str = ""
) -> DisagreementReport:
    """Build a :class:`DisagreementReport` from an annotated trace.

    Always returns a report — ``diverged`` is False for agreeing runs —
    so callers can record the analysis unconditionally; raises only when
    the trace carries no adoption evidence at all (see
    :func:`build_lineages`).
    """
    lineages = build_lineages(events)
    max_round = max(
        (step.round_number for lineage in lineages.values()
         for step in lineage.steps),
        default=0,
    )

    def holders_at(round_number: int) -> Dict[str, AdoptionStep]:
        held: Dict[str, AdoptionStep] = {}
        for lineage in lineages.values():
            step = lineage.held_at(round_number)
            if step is not None:
                held.setdefault(step.persona, step)
        return held

    final = holders_at(max_round)
    diverged = len(final) > 1
    divergence_round: Optional[int] = None
    if diverged:
        last_unanimous = -1
        for round_number in range(max_round + 1):
            if len(holders_at(round_number)) == 1:
                last_unanimous = round_number
        divergence_round = last_unanimous + 1

    survivors = []
    for persona in sorted(final):
        step = final[persona]
        holders = tuple(sorted(
            lineage.pid for lineage in lineages.values()
            if (held := lineage.held_at(max_round)) is not None
            and held.persona == persona
        ))
        survivors.append(SurvivingLineage(
            persona=persona, value=step.value, origin=step.origin,
            holders=holders,
        ))
    return DisagreementReport(
        diverged=diverged,
        divergence_round=divergence_round,
        rounds_recorded=max_round + 1,
        survivors=tuple(survivors),
        lineages=tuple(lineages[pid] for pid in sorted(lineages)),
        note=note,
    )


# ----- step attribution vs. theory -------------------------------------------


@dataclass(frozen=True)
class AttributionReport:
    """Observed per-round step counts against the paper's predictions.

    ``predicted`` is the closed-form dict from
    :func:`repro.analysis.theory.predicted_attribution`; its ``relation``
    field defines the tolerance this report documents:

    - ``"exact"`` (Algorithms 1-2): on a run where processes completed,
      the observed round count must *equal* the predicted one and every
      completed process's attributed steps must equal the predicted
      individual steps — tolerance zero;
    - ``"upper-bound"`` (Algorithm 3): the observed round count must not
      exceed the predicted inner-round count and no completed process may
      exceed the predicted individual step bound.
    """

    predicted: Dict[str, Any]
    observed_rounds: int
    per_round_ops: Dict[int, int]
    per_pid_attributed: Dict[int, int]
    per_pid_total: Dict[int, int]
    unattributed_ops: int
    completed_pids: Tuple[int, ...]
    within_tolerance: bool
    note: str = ""

    @property
    def round_delta(self) -> int:
        """Observed minus predicted rounds (0 on an exact match)."""
        return self.observed_rounds - int(self.predicted["rounds"])

    def to_json(self) -> Dict[str, Any]:
        return {
            "v": ANALYSIS_SCHEMA_VERSION,
            "kind": _ATTRIBUTION_KIND,
            "predicted": dict(self.predicted),
            "observed_rounds": self.observed_rounds,
            "round_delta": self.round_delta,
            "per_round_ops": {
                str(round_number): count
                for round_number, count in sorted(self.per_round_ops.items())
            },
            "per_pid_attributed": {
                str(pid): count
                for pid, count in sorted(self.per_pid_attributed.items())
            },
            "per_pid_total": {
                str(pid): count
                for pid, count in sorted(self.per_pid_total.items())
            },
            "unattributed_ops": self.unattributed_ops,
            "completed_pids": list(self.completed_pids),
            "within_tolerance": self.within_tolerance,
            "note": self.note,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "AttributionReport":
        data = _check_version(data, _ATTRIBUTION_KIND)
        return cls(
            predicted=dict(data["predicted"]),
            observed_rounds=int(data["observed_rounds"]),
            per_round_ops={
                int(key): int(value)
                for key, value in data.get("per_round_ops", {}).items()
            },
            per_pid_attributed={
                int(key): int(value)
                for key, value in data.get("per_pid_attributed", {}).items()
            },
            per_pid_total={
                int(key): int(value)
                for key, value in data.get("per_pid_total", {}).items()
            },
            unattributed_ops=int(data.get("unattributed_ops", 0)),
            completed_pids=tuple(
                int(pid) for pid in data.get("completed_pids", ())
            ),
            within_tolerance=bool(data["within_tolerance"]),
            note=str(data.get("note", "")),
        )

    def render(self) -> str:
        """Human-readable observed-vs-predicted summary."""
        predicted = self.predicted
        relation = predicted["relation"]
        verdict = "within tolerance" if self.within_tolerance \
            else "OUT OF TOLERANCE"
        lines = [
            f"step attribution: {predicted['algorithm']} n={predicted['n']} "
            f"eps={predicted['epsilon']} ({relation}) -> {verdict}",
            f"  rounds: observed {self.observed_rounds} vs predicted "
            f"{predicted['rounds']} (delta {self.round_delta:+d})",
            f"  individual steps predicted: {predicted['individual_steps']} "
            f"({predicted['steps_per_round']}/round)",
        ]
        for pid in sorted(self.per_pid_total):
            attributed = self.per_pid_attributed.get(pid, 0)
            total = self.per_pid_total[pid]
            done = "done" if pid in self.completed_pids else "incomplete"
            lines.append(
                f"  p{pid}: {attributed} round-attributed / {total} total "
                f"ops ({done})"
            )
        if self.unattributed_ops:
            lines.append(
                f"  unattributed ops (proposal/combine/non-round objects): "
                f"{self.unattributed_ops}"
            )
        if self.note:
            lines.append(f"  note: {self.note}")
        return "\n".join(lines)


def attribute_steps(
    events: Sequence[TraceEventRecord], predicted: Dict[str, Any]
) -> AttributionReport:
    """Fold operation events into per-round counts and grade them.

    ``predicted`` comes from
    :func:`repro.analysis.theory.predicted_attribution`.  Attribution is
    purely structural: an operation belongs to round ``i`` when its object
    name carries a round index (``.r[i]``/``.A[i]``/``.M[i]``); anything
    else — CIL proposal reads, combine-stage traffic, adopt-commit flags —
    is counted but unattributed.
    """
    for key in ("algorithm", "n", "rounds", "individual_steps", "relation"):
        if key not in predicted:
            raise ConfigurationError(
                f"prediction dict is missing {key!r}; build it with "
                "repro.analysis.theory.predicted_attribution"
            )
    per_round_ops: Dict[int, int] = {}
    per_pid_attributed: Dict[int, int] = {}
    per_pid_total: Dict[int, int] = {}
    unattributed = 0
    completed: List[int] = []
    for event in events:
        if event.kind == "finish" and event.pid is not None:
            completed.append(int(event.pid))
            continue
        if event.kind not in _OP_KINDS or event.pid is None:
            continue
        pid = int(event.pid)
        per_pid_total[pid] = per_pid_total.get(pid, 0) + 1
        round_number = _round_index(event.payload.get("obj", ""))
        if round_number is None:
            unattributed += 1
            continue
        per_round_ops[round_number] = per_round_ops.get(round_number, 0) + 1
        per_pid_attributed[pid] = per_pid_attributed.get(pid, 0) + 1

    observed_rounds = max(per_round_ops, default=-1) + 1
    completed_pids = tuple(sorted(set(completed)))
    relation = predicted["relation"]
    note = ""
    if not completed_pids:
        within = observed_rounds <= int(predicted["rounds"])
        note = ("no process completed; only the round-count bound was "
                "checked")
    elif relation == "exact":
        within = observed_rounds == int(predicted["rounds"]) and all(
            per_pid_attributed.get(pid, 0) == int(predicted["individual_steps"])
            for pid in completed_pids
        )
    else:
        within = observed_rounds <= int(predicted["rounds"]) and all(
            per_pid_total.get(pid, 0) <= int(predicted["individual_steps"])
            for pid in completed_pids
        )
    return AttributionReport(
        predicted=dict(predicted),
        observed_rounds=observed_rounds,
        per_round_ops=per_round_ops,
        per_pid_attributed=per_pid_attributed,
        per_pid_total=per_pid_total,
        unattributed_ops=unattributed,
        completed_pids=completed_pids,
        within_tolerance=within,
        note=note,
    )
