"""Deterministic per-process timeline rendering of a structured trace.

:func:`render_timeline` turns a list of
:class:`~repro.obs.events.TraceEventRecord` into a fixed-width ASCII chart:
one column per process, one row per event, a marker letter at the acting
process's column, and a detail column naming the object and values
involved.  Round transitions become separator rows so the protocol's
logical phases stand out while scanning a corpus reproducer in a terminal.

:func:`render_timeline_html` emits the same rows as a minimal static HTML
table (no scripts, no external assets) for cases where a browser beats a
pager.  Both renderers are pure functions of the event list — same trace,
same bytes — so their output can be diffed across runs and committed as
test fixtures.

:func:`render_waterfall` / :func:`render_waterfall_html` apply the same
discipline to one *session span tree* from the service layer
(``repro.service.spans``): each span becomes a row whose bar is placed
on a shared virtual-time axis, so a glance shows where a session's
deadline budget went (queue wait vs worker call vs backoff).  They take
the plain tree-JSON document (``tree_to_json`` output, or just its
``root`` object) rather than ``Span`` instances: the service layer
imports :mod:`repro.obs` for metrics, so the dependency cannot also run
the other way.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.events import TraceEventRecord

__all__ = [
    "EVENT_MARKERS",
    "render_timeline",
    "render_timeline_html",
    "render_waterfall",
    "render_waterfall_html",
]

#: Single-character column markers, one per event kind that names a process.
EVENT_MARKERS = {
    "register-read": "R",
    "register-write": "W",
    "snapshot-update": "U",
    "snapshot-scan": "S",
    "max-read": "r",
    "max-write": "w",
    "step": "*",
    "persona-adoption": "P",
    "crash": "X",
    "stall": "~",
    "finish": "F",
}


def _truncate(text: str, width: int) -> str:
    if width <= 0 or len(text) <= width:
        return text
    if width <= 3:
        return text[:width]
    return text[: width - 3] + "..."


def _detail(event: TraceEventRecord) -> str:
    payload = event.payload
    if event.kind == "run-start":
        return f"run start: n={payload.get('n')} " \
               f"step_limit={payload.get('step_limit')}"
    if event.kind == "run-end":
        return (
            f"run end: completed={payload.get('completed')} "
            f"total_steps={payload.get('total_steps')} "
            f"crashed={payload.get('crashed')}"
        )
    if event.kind == "persona-adoption":
        detail = f"round {payload.get('round')}: adopt " \
                 f"{payload.get('persona')}"
        if payload.get("protocol"):
            detail += f" [{payload['protocol']}]"
        return detail
    if event.kind == "crash":
        return f"crash after {payload.get('steps_taken')} step(s)"
    if event.kind == "stall":
        return "stalled (slot withheld)"
    if event.kind == "finish":
        if "output" in payload:
            return f"finish -> {payload['output']!r}"
        return "finish"
    parts = [str(payload.get("obj", "?"))]
    if "value" in payload:
        parts.append(f":= {payload['value']!r}")
    if "result" in payload:
        parts.append(f"-> {payload['result']!r}")
    return " ".join(parts)


def _pids_in(events: Sequence[TraceEventRecord]) -> List[int]:
    pids = sorted({int(e.pid) for e in events if e.pid is not None})
    if not pids:
        raise ConfigurationError(
            "trace names no processes; nothing to render on a timeline"
        )
    return pids


def render_timeline(
    events: Sequence[TraceEventRecord], *, width: int = 100
) -> str:
    """Render an ASCII timeline chart of a trace.

    Layout: a ``step`` column (global charged-step index, ``-`` for
    events outside the step measure), one two-character column per
    process, and a truncated detail column.  ``width`` bounds the full
    line length (minimum 40).
    """
    if width < 40:
        raise ConfigurationError(f"width must be >= 40, got {width}")
    pids = _pids_in(events)
    step_w = max(4, *(len(str(e.step)) for e in events if e.step is not None)) \
        if any(e.step is not None for e in events) else 4
    lane_w = max(len(f"p{pid}") for pid in pids) + 1

    def row(step_text: str, markers: Dict[int, str], detail: str) -> str:
        cells = "".join(
            markers.get(pid, ".").ljust(lane_w) for pid in pids
        )
        line = f"{step_text:>{step_w}}  {cells} {detail}"
        return _truncate(line.rstrip(), width)

    header = row("step", {pid: f"p{pid}" for pid in pids}, "event")
    rule = "-" * len(header)
    lines = [header, rule]
    for event in events:
        detail = _detail(event)
        if event.kind == "round-transition":
            label = (
                f"-- end of round {event.payload.get('round')} "
                f"({event.payload.get('survivors')} persona(e) survive) "
            )
            if event.payload.get("protocol"):
                label += f"[{event.payload['protocol']}] "
            lines.append(_truncate(
                f"{'':>{step_w}}  {label:-<{lane_w * len(pids) + 1}}", width
            ))
            continue
        if event.pid is None:
            lines.append(row("-", {}, detail))
            continue
        marker = EVENT_MARKERS.get(event.kind, "?")
        step_text = str(event.step) if event.step is not None else "-"
        lines.append(row(step_text, {int(event.pid): marker}, detail))
    legend = ", ".join(
        f"{marker}={kind}" for kind, marker in EVENT_MARKERS.items()
    )
    lines += [rule, _truncate(f"legend: {legend}", width)]
    return "\n".join(lines) + "\n"


_HTML_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: monospace; margin: 1.5em; }}
table {{ border-collapse: collapse; }}
th, td {{ border: 1px solid #ccc; padding: 2px 8px; text-align: left; }}
tr.round td {{ background: #eef; font-style: italic; }}
td.mark {{ text-align: center; font-weight: bold; }}
</style>
</head>
<body>
<h1>{title}</h1>
<table>
<tr><th>step</th>{pid_headers}<th>event</th></tr>
{rows}
</table>
</body>
</html>
"""


def render_timeline_html(
    events: Sequence[TraceEventRecord], *, title: str = "repro trace timeline"
) -> str:
    """Render the same timeline as a self-contained static HTML page."""
    pids = _pids_in(events)
    pid_headers = "".join(f"<th>p{pid}</th>" for pid in pids)
    rows: List[str] = []

    def cell(content: str, css: str = "") -> str:
        attr = f' class="{css}"' if css else ""
        return f"<td{attr}>{html.escape(content)}</td>"

    for event in events:
        detail = _detail(event)
        if event.kind == "round-transition":
            label = (
                f"end of round {event.payload.get('round')} — "
                f"{event.payload.get('survivors')} persona(e) survive"
            )
            rows.append(
                f'<tr class="round"><td colspan="{len(pids) + 2}">'
                f"{html.escape(label)}</td></tr>"
            )
            continue
        step_text = str(event.step) if event.step is not None else "-"
        marks: Dict[int, str] = {}
        if event.pid is not None:
            marks[int(event.pid)] = EVENT_MARKERS.get(event.kind, "?")
        cells = "".join(
            cell(marks.get(pid, ""), "mark") for pid in pids
        )
        rows.append(f"<tr>{cell(step_text)}{cells}{cell(detail)}</tr>")
    return _HTML_PAGE.format(
        title=html.escape(title),
        pid_headers=pid_headers,
        rows="\n".join(rows),
    )


def _waterfall_root(tree: Dict[str, Any]) -> Dict[str, Any]:
    """Accept either a ``tree_to_json`` document or a bare root span."""
    if not isinstance(tree, dict):
        raise ConfigurationError(
            f"waterfall input must be a span-tree dict, got {type(tree).__name__}"
        )
    root = tree.get("root", tree)
    if not isinstance(root, dict) or "name" not in root \
            or "start" not in root or "end" not in root:
        raise ConfigurationError(
            "not a span tree: expected a dict with name/start/end (the "
            "repro.service.spans tree_to_json shape)"
        )
    return root


def _waterfall_label(span: Dict[str, Any], depth: int) -> str:
    name = str(span["name"])
    attrs = span.get("attrs", {})
    if name == "attempt" and "attempt" in attrs:
        name = f"attempt[{attrs['attempt']}]"
    return "  " * depth + name


def _waterfall_rows(
    root: Dict[str, Any],
) -> List[Tuple[str, float, float, str]]:
    """Flatten the tree depth-first to ``(label, start, end, status)``."""
    rows: List[Tuple[str, float, float, str]] = []

    def walk(span: Dict[str, Any], depth: int) -> None:
        end = span["end"] if span.get("end") is not None else span["start"]
        rows.append((
            _waterfall_label(span, depth),
            float(span["start"]),
            float(end),
            str(span.get("status", "")),
        ))
        for child in span.get("children", ()):
            walk(child, depth + 1)

    walk(root, 0)
    return rows


def render_waterfall(tree: Dict[str, Any], *, width: int = 100) -> str:
    """Render one session span tree as an ASCII waterfall chart.

    One row per span, depth-first; each bar occupies the span's slice of
    a shared axis running from the session's admission to its terminal
    timestamp.  Zero-duration spans (instant admissions, rejections)
    render as a single ``|`` tick.  ``width`` bounds the full line
    length (minimum 40), matching :func:`render_timeline`.
    """
    if width < 40:
        raise ConfigurationError(f"width must be >= 40, got {width}")
    root = _waterfall_root(tree)
    rows = _waterfall_rows(root)
    t0 = rows[0][1]
    t1 = max(end for _, _, end, _ in rows)
    total = t1 - t0
    attrs = root.get("attrs", {})
    label_w = max(len(label) for label, _, _, _ in rows)
    # label | track | duration+status suffix; keep the track usable even
    # at the minimum width by capping the label column.
    label_w = min(label_w, max(12, width - 40))
    track_w = max(10, width - label_w - 22)

    def bar(start: float, end: float) -> str:
        if total <= 0:
            return "|" + " " * (track_w - 1)
        begin = int((start - t0) / total * (track_w - 1))
        finish = int((end - t0) / total * (track_w - 1))
        if finish <= begin:
            return " " * begin + "|" + " " * (track_w - begin - 1)
        return (" " * begin + "#" * (finish - begin)).ljust(track_w)

    detail = [
        part for part in (
            f"{attrs['attempts']} attempt(s)" if "attempts" in attrs
            else None,
            f"shard {root['shard']}" if root.get("shard") is not None
            else None,
        ) if part is not None
    ]
    header = (
        f"session {attrs.get('session_id')}: {root.get('status', '?')} "
        f"in {total:.4f}s"
        + (f" ({', '.join(detail)})" if detail else "")
    )
    lines = [_truncate(header, width)]
    axis = f"{'':<{label_w}} |{f'{0.0:.4f}s':<{track_w - 8}}{f'{total:.4f}s':>7}|"
    lines.append(_truncate(axis, width))
    for label, start, end, status in rows:
        line = (
            f"{_truncate(label, label_w):<{label_w}} |{bar(start, end)}| "
            f"{end - start:.4f}s {status}"
        )
        lines.append(_truncate(line.rstrip(), width))
    phases = attrs.get("phases")
    if isinstance(phases, dict):
        lines.append(_truncate(
            "phases: " + " ".join(
                f"{name}={seconds:.4f}s"
                for name, seconds in phases.items()
            ),
            width,
        ))
    return "\n".join(lines) + "\n"


_WATERFALL_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: monospace; margin: 1.5em; }}
table {{ border-collapse: collapse; width: 100%; }}
th, td {{ border: 1px solid #ccc; padding: 2px 8px; text-align: left; }}
td.track {{ width: 60%; position: relative; }}
td.track div {{ background: #69c; height: 0.9em; min-width: 2px; }}
td.num {{ text-align: right; }}
</style>
</head>
<body>
<h1>{title}</h1>
<p>{summary}</p>
<table>
<tr><th>span</th><th>timeline</th><th>duration</th><th>status</th></tr>
{rows}
</table>
{phases}
</body>
</html>
"""


def render_waterfall_html(
    tree: Dict[str, Any], *, title: str = "repro session waterfall"
) -> str:
    """Render the same waterfall as a self-contained static HTML page.

    No scripts, no external assets — bar geometry is inline CSS
    percentages of the session's lifetime, so the file can be attached
    to a CI artifact or an issue and opened anywhere.
    """
    root = _waterfall_root(tree)
    rows = _waterfall_rows(root)
    t0 = rows[0][1]
    t1 = max(end for _, _, end, _ in rows)
    total = t1 - t0
    attrs = root.get("attrs", {})

    html_rows: List[str] = []
    for label, start, end, status in rows:
        left = ((start - t0) / total * 100.0) if total > 0 else 0.0
        span_width = ((end - start) / total * 100.0) if total > 0 else 0.0
        html_rows.append(
            "<tr>"
            f"<td><pre style=\"margin:0\">{html.escape(label)}</pre></td>"
            f"<td class=\"track\"><div style=\"margin-left:{left:.2f}%;"
            f"width:{span_width:.2f}%\"></div></td>"
            f"<td class=\"num\">{end - start:.4f}s</td>"
            f"<td>{html.escape(status)}</td>"
            "</tr>"
        )
    phases = attrs.get("phases")
    phase_text = ""
    if isinstance(phases, dict):
        phase_text = "<p>phases: " + " ".join(
            f"{html.escape(str(name))}={seconds:.4f}s"
            for name, seconds in phases.items()
        ) + "</p>"
    summary = (
        f"session {attrs.get('session_id')}: "
        f"{root.get('status', '?')} in {total:.4f}s"
    )
    return _WATERFALL_PAGE.format(
        title=html.escape(title),
        summary=html.escape(summary),
        rows="\n".join(html_rows),
        phases=phase_text,
    )
