"""Deterministic per-process timeline rendering of a structured trace.

:func:`render_timeline` turns a list of
:class:`~repro.obs.events.TraceEventRecord` into a fixed-width ASCII chart:
one column per process, one row per event, a marker letter at the acting
process's column, and a detail column naming the object and values
involved.  Round transitions become separator rows so the protocol's
logical phases stand out while scanning a corpus reproducer in a terminal.

:func:`render_timeline_html` emits the same rows as a minimal static HTML
table (no scripts, no external assets) for cases where a browser beats a
pager.  Both renderers are pure functions of the event list — same trace,
same bytes — so their output can be diffed across runs and committed as
test fixtures.
"""

from __future__ import annotations

import html
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.obs.events import TraceEventRecord

__all__ = ["EVENT_MARKERS", "render_timeline", "render_timeline_html"]

#: Single-character column markers, one per event kind that names a process.
EVENT_MARKERS = {
    "register-read": "R",
    "register-write": "W",
    "snapshot-update": "U",
    "snapshot-scan": "S",
    "max-read": "r",
    "max-write": "w",
    "step": "*",
    "persona-adoption": "P",
    "crash": "X",
    "stall": "~",
    "finish": "F",
}


def _truncate(text: str, width: int) -> str:
    if width <= 0 or len(text) <= width:
        return text
    if width <= 3:
        return text[:width]
    return text[: width - 3] + "..."


def _detail(event: TraceEventRecord) -> str:
    payload = event.payload
    if event.kind == "run-start":
        return f"run start: n={payload.get('n')} " \
               f"step_limit={payload.get('step_limit')}"
    if event.kind == "run-end":
        return (
            f"run end: completed={payload.get('completed')} "
            f"total_steps={payload.get('total_steps')} "
            f"crashed={payload.get('crashed')}"
        )
    if event.kind == "persona-adoption":
        detail = f"round {payload.get('round')}: adopt " \
                 f"{payload.get('persona')}"
        if payload.get("protocol"):
            detail += f" [{payload['protocol']}]"
        return detail
    if event.kind == "crash":
        return f"crash after {payload.get('steps_taken')} step(s)"
    if event.kind == "stall":
        return "stalled (slot withheld)"
    if event.kind == "finish":
        if "output" in payload:
            return f"finish -> {payload['output']!r}"
        return "finish"
    parts = [str(payload.get("obj", "?"))]
    if "value" in payload:
        parts.append(f":= {payload['value']!r}")
    if "result" in payload:
        parts.append(f"-> {payload['result']!r}")
    return " ".join(parts)


def _pids_in(events: Sequence[TraceEventRecord]) -> List[int]:
    pids = sorted({int(e.pid) for e in events if e.pid is not None})
    if not pids:
        raise ConfigurationError(
            "trace names no processes; nothing to render on a timeline"
        )
    return pids


def render_timeline(
    events: Sequence[TraceEventRecord], *, width: int = 100
) -> str:
    """Render an ASCII timeline chart of a trace.

    Layout: a ``step`` column (global charged-step index, ``-`` for
    events outside the step measure), one two-character column per
    process, and a truncated detail column.  ``width`` bounds the full
    line length (minimum 40).
    """
    if width < 40:
        raise ConfigurationError(f"width must be >= 40, got {width}")
    pids = _pids_in(events)
    step_w = max(4, *(len(str(e.step)) for e in events if e.step is not None)) \
        if any(e.step is not None for e in events) else 4
    lane_w = max(len(f"p{pid}") for pid in pids) + 1

    def row(step_text: str, markers: Dict[int, str], detail: str) -> str:
        cells = "".join(
            markers.get(pid, ".").ljust(lane_w) for pid in pids
        )
        line = f"{step_text:>{step_w}}  {cells} {detail}"
        return _truncate(line.rstrip(), width)

    header = row("step", {pid: f"p{pid}" for pid in pids}, "event")
    rule = "-" * len(header)
    lines = [header, rule]
    for event in events:
        detail = _detail(event)
        if event.kind == "round-transition":
            label = (
                f"-- end of round {event.payload.get('round')} "
                f"({event.payload.get('survivors')} persona(e) survive) "
            )
            if event.payload.get("protocol"):
                label += f"[{event.payload['protocol']}] "
            lines.append(_truncate(
                f"{'':>{step_w}}  {label:-<{lane_w * len(pids) + 1}}", width
            ))
            continue
        if event.pid is None:
            lines.append(row("-", {}, detail))
            continue
        marker = EVENT_MARKERS.get(event.kind, "?")
        step_text = str(event.step) if event.step is not None else "-"
        lines.append(row(step_text, {int(event.pid): marker}, detail))
    legend = ", ".join(
        f"{marker}={kind}" for kind, marker in EVENT_MARKERS.items()
    )
    lines += [rule, _truncate(f"legend: {legend}", width)]
    return "\n".join(lines) + "\n"


_HTML_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: monospace; margin: 1.5em; }}
table {{ border-collapse: collapse; }}
th, td {{ border: 1px solid #ccc; padding: 2px 8px; text-align: left; }}
tr.round td {{ background: #eef; font-style: italic; }}
td.mark {{ text-align: center; font-weight: bold; }}
</style>
</head>
<body>
<h1>{title}</h1>
<table>
<tr><th>step</th>{pid_headers}<th>event</th></tr>
{rows}
</table>
</body>
</html>
"""


def render_timeline_html(
    events: Sequence[TraceEventRecord], *, title: str = "repro trace timeline"
) -> str:
    """Render the same timeline as a self-contained static HTML page."""
    pids = _pids_in(events)
    pid_headers = "".join(f"<th>p{pid}</th>" for pid in pids)
    rows: List[str] = []

    def cell(content: str, css: str = "") -> str:
        attr = f' class="{css}"' if css else ""
        return f"<td{attr}>{html.escape(content)}</td>"

    for event in events:
        detail = _detail(event)
        if event.kind == "round-transition":
            label = (
                f"end of round {event.payload.get('round')} — "
                f"{event.payload.get('survivors')} persona(e) survive"
            )
            rows.append(
                f'<tr class="round"><td colspan="{len(pids) + 2}">'
                f"{html.escape(label)}</td></tr>"
            )
            continue
        step_text = str(event.step) if event.step is not None else "-"
        marks: Dict[int, str] = {}
        if event.pid is not None:
            marks[int(event.pid)] = EVENT_MARKERS.get(event.kind, "?")
        cells = "".join(
            cell(marks.get(pid, ""), "mark") for pid in pids
        )
        rows.append(f"<tr>{cell(step_text)}{cells}{cell(detail)}</tr>")
    return _HTML_PAGE.format(
        title=html.escape(title),
        pid_headers=pid_headers,
        rows="\n".join(rows),
    )
