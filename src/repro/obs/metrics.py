"""Metrics registry: counters and histograms with deterministic merging.

The registry exists to make the paper's quantities observable per run —
steps per process, rounds to decision, register contention, scheduler
queue depth — and to aggregate them across the PR 1 parallel trial engine
without breaking its core contract: **a parallel sweep is bit-identical to
a serial one**.  Three rules make that hold for metrics too:

- metric state is plain data (ints, floats, bounded sample lists), never
  wall-clock or host-dependent unless the caller explicitly records it;
- each trial collects into its own fresh registry, and per-trial
  *snapshots* travel back to the coordinator through the parallel engine,
  which re-orders them by trial index;
- the coordinator folds snapshots **in trial order** with
  :func:`merge_snapshots`; the fold is a pure function of the snapshot
  sequence, so worker count and chunking cannot change the result.

Histograms keep exact ``count``/``total``/``min``/``max`` and a bounded,
*deterministically decimated* sample list for quantiles: when the retained
samples would exceed ``max_samples``, every second retained sample is
dropped and the retention stride doubles.  Decimation depends only on the
observation sequence, never on time or randomness, so it survives the
bit-identical contract (quantiles become approximate for huge streams, the
moments stay exact).

Snapshots are versioned JSON; readers reject foreign versions loudly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError
from repro.runtime.faults import StepHook
from repro.runtime.operations import Operation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.results import RunResult
    from repro.runtime.simulator import Simulator

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Histogram",
    "MetricsHook",
    "MetricsRegistry",
    "collecting",
    "get_default_registry",
    "merge_snapshots",
    "set_default_registry",
]

#: Version stamped on every snapshot; bump on incompatible change.
METRICS_SCHEMA_VERSION = 1

#: Default cap on retained histogram samples before decimation kicks in.
DEFAULT_MAX_SAMPLES = 4096


class Counter:
    """A monotonically accumulating numeric metric."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, float] = 0):
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value!r})"


class Histogram:
    """Exact moments plus bounded deterministic samples for quantiles.

    ``count``/``total``/``min``/``max`` are exact for every observation
    ever made.  ``samples`` retains every ``stride``-th observation (in
    observation order); the stride doubles whenever retention would exceed
    ``max_samples``, so memory is bounded and the retained set is a pure
    function of the observation sequence.
    """

    __slots__ = ("count", "total", "min", "max", "samples", "stride",
                 "_observed_since_kept", "max_samples")

    def __init__(self, *, max_samples: int = DEFAULT_MAX_SAMPLES):
        if max_samples < 2:
            raise ConfigurationError(
                f"max_samples must be >= 2, got {max_samples}"
            )
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []
        self.stride = 1
        self._observed_since_kept = 0
        self.max_samples = max_samples

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self._observed_since_kept % self.stride == 0:
            self.samples.append(value)
            self._observed_since_kept = 0
            if len(self.samples) > self.max_samples:
                self._decimate()
        self._observed_since_kept += 1

    def _decimate(self) -> None:
        self.samples = self.samples[::2]
        self.stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained samples."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    def merge_from(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (exact moments, then samples).

        Before pooling, both sample sets are decimated to the *coarser* of
        the two strides.  Each retained sample then stands for the same
        number of observations on both sides, so the pooled list remains an
        unweighted uniform subsample and quantiles stay unbiased; naively
        extending would overweight the finer-stride stream (e.g. a 100-
        observation histogram at stride 1 merged into a 10^4-observation
        histogram at stride 32 would contribute 100 of ~400 samples while
        representing under 1% of the mass, dragging p99 toward its values).
        """
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        other_samples = other.samples
        other_stride = other.stride
        while self.stride < other_stride:
            self._decimate()
        while other_stride < self.stride:
            other_samples = other_samples[::2]
            other_stride *= 2
        self.samples.extend(other_samples)
        while len(self.samples) > self.max_samples:
            self._decimate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram(count={self.count}, mean={self.mean:.3g}, "
                f"min={self.min}, max={self.max})")


def _metric_key(name: str, labels: Dict[str, Any]) -> str:
    """Flatten ``name`` + labels into one stable string key."""
    if not name:
        raise ConfigurationError("metric name must be non-empty")
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """A namespace of counters and histograms.

    Metric identity is ``name`` plus optional labels, flattened into a
    single string key (``"sim.steps{pid=3}"``) so snapshots stay plain
    JSON.  ``counter``/``histogram`` are get-or-create; asking for the
    same key with a different metric type is a configuration error.
    """

    def __init__(self, *, max_samples: int = DEFAULT_MAX_SAMPLES):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._max_samples = max_samples

    # ----- creation / lookup ----------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = _metric_key(name, labels)
        if key in self._histograms:
            raise ConfigurationError(
                f"metric {key!r} is already a histogram"
            )
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = _metric_key(name, labels)
        if key in self._counters:
            raise ConfigurationError(
                f"metric {key!r} is already a counter"
            )
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(
                max_samples=self._max_samples
            )
        return histogram

    def counter_value(self, name: str, **labels: Any) -> Union[int, float]:
        """Current value of a counter, 0 if it was never touched."""
        counter = self._counters.get(_metric_key(name, labels))
        return counter.value if counter is not None else 0

    def counter_keys(self, prefix: str = "") -> List[str]:
        """Sorted counter keys, optionally filtered by prefix."""
        return sorted(k for k in self._counters if k.startswith(prefix))

    def histogram_for(self, name: str, **labels: Any) -> Optional[Histogram]:
        return self._histograms.get(_metric_key(name, labels))

    @property
    def empty(self) -> bool:
        return not self._counters and not self._histograms

    # ----- snapshots -------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """A versioned, key-sorted, JSON-plain snapshot of every metric."""
        return {
            "v": METRICS_SCHEMA_VERSION,
            "counters": {
                key: self._counters[key].value
                for key in sorted(self._counters)
            },
            "histograms": {
                key: {
                    "count": hist.count,
                    "total": hist.total,
                    "min": hist.min,
                    "max": hist.max,
                    "stride": hist.stride,
                    "samples": list(hist.samples),
                }
                for key, hist in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_json(
        cls, data: Dict[str, Any], *, max_samples: int = DEFAULT_MAX_SAMPLES
    ) -> "MetricsRegistry":
        """Rebuild a registry from a snapshot, rejecting foreign versions."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"metrics snapshot must be a JSON object, "
                f"got {type(data).__name__}"
            )
        if data.get("v") != METRICS_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported metrics snapshot version {data.get('v')!r}; "
                f"this build reads version {METRICS_SCHEMA_VERSION}"
            )
        registry = cls(max_samples=max_samples)
        for key, value in data.get("counters", {}).items():
            registry._counters[key] = Counter(value)
        for key, entry in data.get("histograms", {}).items():
            histogram = Histogram(max_samples=max_samples)
            histogram.count = int(entry["count"])
            histogram.total = float(entry["total"])
            histogram.min = entry["min"]
            histogram.max = entry["max"]
            histogram.stride = int(entry.get("stride", 1))
            histogram.samples = [float(v) for v in entry.get("samples", [])]
            registry._histograms[key] = histogram
        return registry

    def merge_snapshot(self, data: Dict[str, Any]) -> None:
        """Fold one snapshot into this registry.

        The fold is exact for counters and histogram moments, and
        deterministic for histogram samples; folding per-trial snapshots
        in trial order therefore yields the same registry no matter how
        the trials were sharded.
        """
        other = MetricsRegistry.from_json(data, max_samples=self._max_samples)
        for key, counter in other._counters.items():
            self.counter(key).inc(counter.value)
        for key, histogram in other._histograms.items():
            self.histogram(key).merge_from(histogram)


def merge_snapshots(
    snapshots: Iterable[Dict[str, Any]],
    *,
    into: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Fold snapshots, in the given order, into one registry."""
    registry = into if into is not None else MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry


# ----- session default registry ---------------------------------------------
#
# Mirrors repro.runtime.parallel's session parallelism default: callers that
# do not thread an explicit registry (the benchmark conftest, the
# experiments CLI) can enable collection for everything beneath them.

_default_registry: Optional[MetricsRegistry] = None


def get_default_registry() -> Optional[MetricsRegistry]:
    """The session-wide default registry, or ``None`` (collection off)."""
    return _default_registry


def set_default_registry(
    registry: Optional[MetricsRegistry],
) -> Optional[MetricsRegistry]:
    """Replace the session default; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Enable default metrics collection for the dynamic extent.

    Yields the active registry (a fresh one unless provided), restoring
    the previous default on exit.
    """
    active = registry if registry is not None else MetricsRegistry()
    previous = set_default_registry(active)
    try:
        yield active
    finally:
        set_default_registry(previous)


class MetricsHook(StepHook):
    """Populate a registry from one simulated run.

    Everything recorded here is a deterministic function of the execution
    (step counts, operation mix, contention, queue depth, crashes,
    stalls), so per-trial snapshots merge bit-identically across the
    parallel engine.  Wall-clock timing is deliberately *not* recorded by
    this hook — the bench harness measures time at the case level, where
    nondeterminism is expected and quarantined.

    Args:
        registry: destination for every metric.
        per_pid: also keep per-process step counters (``sim.steps{pid=}``);
            off by default to bound key cardinality in wide sweeps.
        queue_depth_every: observe the scheduler's unfinished-process count
            every ``k`` charged steps (0 disables the queue-depth series).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        per_pid: bool = False,
        queue_depth_every: int = 64,
    ):
        if queue_depth_every < 0:
            raise ConfigurationError(
                f"queue_depth_every must be >= 0, got {queue_depth_every}"
            )
        self.registry = registry
        self.per_pid = per_pid
        self.queue_depth_every = queue_depth_every
        self._simulator: Optional["Simulator"] = None
        self._steps_by_pid: Dict[int, int] = {}
        self._steps_seen = 0

    def on_run_start(self, simulator: "Simulator") -> None:
        self._simulator = simulator
        self.registry.counter("run.count").inc()

    def after_step(
        self, pid: int, step_index: int, operation: Operation, result: Any
    ) -> None:
        registry = self.registry
        registry.counter("sim.steps").inc()
        registry.counter("sim.ops", op=operation.kind).inc()
        registry.counter("sim.object_ops", obj=operation.obj.name).inc()
        self._steps_by_pid[pid] = self._steps_by_pid.get(pid, 0) + 1
        if self.per_pid:
            registry.counter("sim.steps_by_pid", pid=pid).inc()
        self._steps_seen += 1
        if (self.queue_depth_every
                and self._steps_seen % self.queue_depth_every == 0
                and self._simulator is not None):
            registry.histogram("sched.queue_depth").observe(
                len(self._simulator._unfinished)
            )

    def on_skip(self, pid: int, global_steps: int) -> None:
        self.registry.counter("sim.stalled_slots").inc()

    def on_crash(self, pid: int, steps_taken: int) -> None:
        self.registry.counter("sim.crashes").inc()
        self.registry.histogram("sim.steps_at_crash").observe(steps_taken)

    def on_finish(self, pid: int, output: Any) -> None:
        self.registry.histogram("sim.steps_to_finish").observe(
            self._steps_by_pid.get(pid, 0)
        )

    def on_run_end(self, result: "RunResult") -> None:
        registry = self.registry
        registry.histogram("run.total_steps").observe(result.total_steps)
        registry.histogram("run.max_individual_steps").observe(
            result.max_individual_steps
        )
        if result.completed:
            registry.counter("run.completed").inc()
        self._simulator = None
