"""The ``repro bench`` harness: curated suite, canonical JSON, compare gate.

The suite has one case per algorithm family plus a raw simulator-step
microbench, so a perf regression anywhere in the hot path — the step loop,
snapshot scans, sifting rounds, consensus composition — moves at least one
number here:

- ``simulator-step``     raw step-loop throughput, no hooks attached
- ``snapshot-conciliator``  Algorithm 1 end to end
- ``sifting-conciliator``   Algorithm 2 end to end
- ``cil-embedded``          Algorithm 3 (CIL with embedded conciliator)
- ``consensus``             the conciliator + adopt-commit composition
- ``vectorized-sifting``    Algorithm 2 on the NumPy mass-trial backend
- ``vectorized-snapshot``   Algorithm 1 on the NumPy mass-trial backend
- ``late-adversary-sifting``  Algorithm 2 under the late-δ choosing
  adversary (the weakened-model hot path: adversary wrapper + clamping)
- ``sparse-sifting-large``  Algorithm 2 at thousands of processes under an
  O(1)-memory streaming schedule (the large-n generator path: lazy
  register allocation + pure-function sampling)
- ``streaming-schedule``    raw ``pid_at`` sampler throughput at
  n = 10^6 (the million-process regime's schedule hot loop)

The two ``vectorized-*`` cases exist to pin the mass-trial backend's
headline claim — orders of magnitude more steps/sec than the generator's
``simulator-step`` floor — as a number the perf gate can watch.  When NumPy
is not installed they are skipped from the default selection (logged, not
silent); naming one explicitly without NumPy raises
:class:`ConfigurationError`.

Each case runs a fixed, seeded workload for a fixed trial count (smaller
under ``--quick``), measures per-trial wall latency, counts charged steps,
and collects a deterministic metrics snapshot via
:class:`~repro.obs.metrics.MetricsHook`.  The headline figure is
**steps/sec** — work over time — because it is comparable across hosts of
similar class and robust to trial-count changes.

Reports are versioned JSON (``BENCH_<label>.json``) carrying machine
totals, p50/p95 latencies, steps/sec, the metrics snapshot, the git SHA,
and an environment fingerprint.  :func:`compare_bench` diffs two reports
and flags any case whose steps/sec regressed past a threshold — the CI
perf gate.  Timing numbers are host-dependent by nature; the committed
baseline plus a generous threshold (40% in CI) absorbs runner noise while
still catching step-loop pessimizations, which tend to be multiplicative.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsHook, MetricsRegistry, merge_snapshots
from repro.runtime.operations import Read, Write
from repro.runtime.rng import SeedTree
from repro.runtime.simulator import run_programs
from repro.workloads.schedules import make_schedule

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchComparison",
    "CaseComparison",
    "SUITE_NAMES",
    "compare_bench",
    "load_bench_json",
    "run_bench_suite",
    "write_bench_json",
]

#: Version stamped on every bench report; bump on incompatible change.
BENCH_SCHEMA_VERSION = 1

#: Default steps/sec regression fraction past which compare fails.
DEFAULT_THRESHOLD = 0.4


# ----- case implementations --------------------------------------------------


@dataclass(frozen=True)
class _Sizing:
    """Per-case workload size; quick mode trades coverage for CI latency."""

    n: int
    trials: int


def _percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sequence."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[rank]


def _spin_program(ops: int):
    """A program executing ``ops`` register steps: the step-loop microbench.

    Alternates writes and reads on the process's own register so the
    measured cost is the simulator loop itself, not object contention.
    """

    def program(ctx):
        from repro.memory.register import AtomicRegister

        register = AtomicRegister(name=f"spin-{ctx.pid}")
        for index in range(ops // 2):
            yield Write(register, index)
            yield Read(register)
        return ctx.pid

    return program


def _run_trials(
    build: Callable[[SeedTree], Tuple[List[Any], List[Any]]],
    *,
    n: int,
    trials: int,
    seed: int,
    hooks_factory: Optional[Callable[[], Tuple[List[Any], MetricsRegistry]]],
    allow_partial: bool = False,
    family: str = "random",
) -> Dict[str, Any]:
    """Shared measurement loop: per-trial latency, steps, metric snapshots.

    ``build(seeds)`` returns ``(programs, inputs)`` for one trial; the
    schedule is the ``family`` member built from the trial's ``"schedule"``
    seed branch as usual.
    """
    latencies: List[float] = []
    total_steps = 0
    snapshots: List[Dict[str, Any]] = []
    for trial in range(trials):
        seeds = SeedTree(seed).child(f"bench-{trial}")
        programs, inputs = build(seeds)
        schedule = make_schedule(family, n, seeds.child("schedule"))
        hooks: List[Any] = []
        registry: Optional[MetricsRegistry] = None
        if hooks_factory is not None:
            hooks, registry = hooks_factory()
        started = time.perf_counter()
        result = run_programs(
            programs,
            schedule,
            seeds,
            inputs=inputs,
            hooks=hooks,
            allow_partial=allow_partial,
        )
        latencies.append(time.perf_counter() - started)
        total_steps += result.total_steps
        if registry is not None:
            snapshots.append(registry.to_json())
    elapsed = sum(latencies)
    merged = merge_snapshots(snapshots) if snapshots else None
    metrics = merged.to_json() if merged is not None else None
    if metrics is not None:
        # The report's metrics blob is for reading, not re-aggregation:
        # keep the exact moments, drop the decimated sample arrays so a
        # committed baseline stays a small, reviewable diff.
        for hist in metrics.get("histograms", {}).values():
            hist.pop("samples", None)
            hist.pop("stride", None)
    return {
        "trials": trials,
        "n": n,
        "total_steps": total_steps,
        "elapsed_seconds": elapsed,
        "steps_per_sec": total_steps / elapsed if elapsed > 0 else 0.0,
        "latency_p50_s": _percentile(latencies, 0.50),
        "latency_p95_s": _percentile(latencies, 0.95),
        "metrics": metrics,
    }


def _metrics_hooks() -> Tuple[List[Any], MetricsRegistry]:
    registry = MetricsRegistry()
    return [MetricsHook(registry)], registry


def _case_simulator_step(sizing: _Sizing, seed: int) -> Dict[str, Any]:
    """Raw step-loop throughput with no hooks: the zero-overhead floor."""
    ops = 2_000

    def build(seeds: SeedTree):
        return [_spin_program(ops)] * sizing.n, list(range(sizing.n))

    return _run_trials(
        build, n=sizing.n, trials=sizing.trials, seed=seed,
        hooks_factory=None,
    )


def _conciliator_case(factory: Callable[[int], Any]):
    def case(sizing: _Sizing, seed: int) -> Dict[str, Any]:
        def build(seeds: SeedTree):
            conciliator = factory(sizing.n)
            return ([conciliator.program] * sizing.n,
                    list(range(sizing.n)))

        return _run_trials(
            build, n=sizing.n, trials=sizing.trials, seed=seed,
            hooks_factory=_metrics_hooks,
        )

    return case


def _case_consensus(sizing: _Sizing, seed: int) -> Dict[str, Any]:
    from repro.core.consensus import register_consensus

    def build(seeds: SeedTree):
        protocol = register_consensus(
            sizing.n, value_domain=list(range(sizing.n))
        )
        return [protocol.program] * sizing.n, list(range(sizing.n))

    return _run_trials(
        build, n=sizing.n, trials=sizing.trials, seed=seed,
        hooks_factory=_metrics_hooks,
    )


def _snapshot_factory(n: int):
    from repro.core.snapshot_conciliator import SnapshotConciliator

    return SnapshotConciliator(n)


def _sifting_factory(n: int):
    from repro.core.sifting_conciliator import SiftingConciliator

    return SiftingConciliator(n)


def _cil_factory(n: int):
    from repro.core.cil_embedded import CILEmbeddedConciliator

    return CILEmbeddedConciliator(n)


def _case_late_adversary_sifting(sizing: _Sizing, seed: int) -> Dict[str, Any]:
    """Algorithm 2 under the late-δ choosing adversary.

    Exercises the weakened-model hot path — the adversary wrapper's
    snapshot ring buffer, stale-view projection, and unrunnable-pick
    clamping — so a pessimization in the ladder machinery moves this
    number without disturbing the atomic-register cases.
    """
    from dataclasses import replace

    from repro.core.sifting_conciliator import SiftingConciliator
    from repro.runtime.adaptive import run_adaptive_programs
    from repro.runtime.adversary import AdversarySpec

    spec = AdversarySpec("late", inner="pending-reads", delay=1)
    latencies: List[float] = []
    total_steps = 0
    snapshots: List[Dict[str, Any]] = []
    for trial in range(sizing.trials):
        seeds = SeedTree(seed).child(f"bench-{trial}")
        conciliator = SiftingConciliator(sizing.n)
        adversary = replace(
            spec, seed=seeds.child("adversary").rng().randrange(2**32)
        ).build()
        hooks, registry = _metrics_hooks()
        started = time.perf_counter()
        result = run_adaptive_programs(
            [conciliator.program] * sizing.n,
            adversary,
            seeds,
            inputs=list(range(sizing.n)),
            hooks=hooks,
        )
        latencies.append(time.perf_counter() - started)
        total_steps += result.total_steps
        snapshots.append(registry.to_json())
    elapsed = sum(latencies)
    merged = merge_snapshots(snapshots) if snapshots else None
    metrics = merged.to_json() if merged is not None else None
    if metrics is not None:
        for hist in metrics.get("histograms", {}).values():
            hist.pop("samples", None)
            hist.pop("stride", None)
    return {
        "trials": sizing.trials,
        "n": sizing.n,
        "total_steps": total_steps,
        "elapsed_seconds": elapsed,
        "steps_per_sec": total_steps / elapsed if elapsed > 0 else 0.0,
        "latency_p50_s": _percentile(latencies, 0.50),
        "latency_p95_s": _percentile(latencies, 0.95),
        "metrics": metrics,
    }


def _case_sparse_sifting_large(sizing: _Sizing, seed: int) -> Dict[str, Any]:
    """Algorithm 2 at thousands of processes on the generator backend.

    Exercises the large-n path the small cases never touch: lazily
    allocated register files (only the handful of round registers
    materialize) driven by an O(1)-memory streaming schedule instead of a
    materialized pid list.  Metrics hooks are left off — at this size the
    hook dispatch would dominate and hide a regression in the state layer
    itself.
    """
    from repro.core.sifting_conciliator import SiftingConciliator

    def build(seeds: SeedTree):
        conciliator = SiftingConciliator(sizing.n)
        return ([conciliator.program] * sizing.n,
                [pid % 2 for pid in range(sizing.n)])

    return _run_trials(
        build, n=sizing.n, trials=sizing.trials, seed=seed,
        hooks_factory=None, family="streaming-permuted",
    )


def _case_streaming_schedule(sizing: _Sizing, seed: int) -> Dict[str, Any]:
    """Raw streaming-sampler throughput at the million-process regime.

    One timed scan of ``trials`` slots through a
    :class:`~repro.runtime.streaming.StreamingPermutedSchedule` at
    ``n = 10^6`` — the schedule hot loop of every large-n experiment, with
    no simulator around it.  ``total_steps`` counts sampled slots, so the
    headline stays steps/sec; the pid checksum keeps the loop honest.
    """
    from repro.runtime.streaming import StreamingPermutedSchedule

    schedule = StreamingPermutedSchedule(sizing.n, seed)
    slots = sizing.trials
    checksum = 0
    started = time.perf_counter()
    for step in range(slots):
        checksum += schedule.pid_at(step)
    elapsed = time.perf_counter() - started
    assert 0 <= checksum < slots * sizing.n
    return {
        "trials": 1,
        "n": sizing.n,
        "total_steps": slots,
        "elapsed_seconds": elapsed,
        "steps_per_sec": slots / elapsed if elapsed > 0 else 0.0,
        "latency_p50_s": elapsed,
        "latency_p95_s": elapsed,
        "metrics": None,
    }


def _numpy_available() -> bool:
    """Indirection over the backend's probe (monkeypatchable in tests)."""
    from repro.runtime.vectorized import numpy_available

    return numpy_available()


def _vectorized_case(factory: Callable[[int], Any], family: str):
    """A mass-trial case: one batched sweep, measured as a single call.

    The whole sweep is one kernel invocation, so there is no per-trial
    latency distribution — p50/p95 both report the sweep's wall time and
    the headline stays steps/sec, comparable with the generator cases.
    """

    def case(sizing: _Sizing, seed: int) -> Dict[str, Any]:
        from repro.runtime.vectorized import run_vectorized_sweep

        # Untimed warm-up: the generator cases amortize import/allocator
        # warm-up across hundreds of timed trials; this case is a single
        # batched call, so pay that cost before the clock starts.
        run_vectorized_sweep(
            lambda: factory(sizing.n),
            list(range(sizing.n)),
            schedule_family=family,
            trials=max(1, sizing.trials // 8),
            master_seed=seed + 1,
            workers=1,
        )
        started = time.perf_counter()
        sweep = run_vectorized_sweep(
            lambda: factory(sizing.n),
            list(range(sizing.n)),
            schedule_family=family,
            trials=sizing.trials,
            master_seed=seed,
            workers=1,
        )
        elapsed = time.perf_counter() - started
        total_steps = int(sum(sweep.total_steps))
        return {
            "trials": sizing.trials,
            "n": sizing.n,
            "total_steps": total_steps,
            "elapsed_seconds": elapsed,
            "steps_per_sec": total_steps / elapsed if elapsed > 0 else 0.0,
            "latency_p50_s": elapsed,
            "latency_p95_s": elapsed,
            "metrics": None,
        }

    return case


#: name -> (case function, quick sizing, full sizing)
_SUITE: Dict[str, Tuple[Callable[[_Sizing, int], Dict[str, Any]],
                        _Sizing, _Sizing]] = {
    # Sizings target roughly a second per case in quick mode and several
    # seconds in full mode: long enough that steps/sec is a stable signal
    # on a shared CI runner, short enough to gate every PR.
    "simulator-step": (
        _case_simulator_step, _Sizing(n=8, trials=30), _Sizing(n=8, trials=100),
    ),
    "snapshot-conciliator": (
        _conciliator_case(_snapshot_factory),
        _Sizing(n=16, trials=300), _Sizing(n=32, trials=500),
    ),
    "sifting-conciliator": (
        _conciliator_case(_sifting_factory),
        _Sizing(n=16, trials=300), _Sizing(n=32, trials=500),
    ),
    "cil-embedded": (
        _conciliator_case(_cil_factory),
        _Sizing(n=16, trials=200), _Sizing(n=32, trials=300),
    ),
    "consensus": (
        _case_consensus, _Sizing(n=12, trials=200), _Sizing(n=16, trials=400),
    ),
    # Mass-trial cases: `trials` here is the batched sweep size, so quick
    # mode still pushes tens of millions of charged steps through the
    # kernels — enough that steps/sec is stable, still well under a second.
    "vectorized-sifting": (
        _vectorized_case(_sifting_factory, "permuted"),
        _Sizing(n=64, trials=16384), _Sizing(n=64, trials=65536),
    ),
    "vectorized-snapshot": (
        _vectorized_case(_snapshot_factory, "interleaved"),
        _Sizing(n=64, trials=16384), _Sizing(n=64, trials=65536),
    ),
    # The choosing-adversary path runs the same step loop plus the wrapper
    # layer (ring buffer, stale view, clamping), so its steps/sec should
    # track sifting-conciliator at a modest constant-factor discount.
    "late-adversary-sifting": (
        _case_late_adversary_sifting,
        _Sizing(n=16, trials=200), _Sizing(n=32, trials=300),
    ),
    # Large-n cases for the million-process machinery: the generator loop
    # over lazy registers + streaming schedule, and the bare sampler.  For
    # `streaming-schedule`, `trials` is the slot count of one timed scan.
    "sparse-sifting-large": (
        _case_sparse_sifting_large,
        _Sizing(n=2048, trials=3), _Sizing(n=4096, trials=6),
    ),
    "streaming-schedule": (
        _case_streaming_schedule,
        _Sizing(n=1_000_000, trials=100_000),
        _Sizing(n=1_000_000, trials=400_000),
    ),
}

SUITE_NAMES: Tuple[str, ...] = tuple(_SUITE)

#: Cases that need NumPy; skipped from the *default* selection when it is
#: absent (explicitly requesting one without NumPy raises instead).
VECTORIZED_SUITE_NAMES: Tuple[str, ...] = (
    "vectorized-sifting", "vectorized-snapshot",
)


# ----- report construction ---------------------------------------------------


def _git_sha() -> str:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


def _env_fingerprint() -> Dict[str, Any]:
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        cpus = os.cpu_count() or 1
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": cpus,
    }


def _select_cases(
    suites: Optional[Sequence[str]],
    emit: Callable[[str], None] = lambda message: None,
) -> List[str]:
    """Resolve a ``suites`` request to the list of cases to run.

    Unknown names are rejected up front so a typo cannot silently produce
    an empty gate.  When NumPy is absent, the *default* selection drops the
    vectorized cases (with a log line); an explicit request keeps them, so
    the sweep fails loudly with the backend's install hint instead.
    """
    wanted = list(suites) if suites else list(SUITE_NAMES)
    unknown = [name for name in wanted if name not in _SUITE]
    if unknown:
        raise ConfigurationError(
            f"unknown bench case(s) {unknown}; choose from {SUITE_NAMES}"
        )
    if not suites and not _numpy_available():
        skipped = [n for n in wanted if n in VECTORIZED_SUITE_NAMES]
        if skipped:
            wanted = [n for n in wanted if n not in VECTORIZED_SUITE_NAMES]
            emit(f"bench: skipping {', '.join(skipped)} (NumPy not "
                 "installed; the vectorized backend is unavailable)")
    return wanted


def run_bench_suite(
    *,
    label: str = "local",
    quick: bool = False,
    seed: int = 2012,
    suites: Optional[Sequence[str]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the curated suite and return the versioned bench report.

    ``suites`` restricts the run to named cases (default: all of
    :data:`SUITE_NAMES`); unknown names are rejected up front so a typo
    cannot silently produce an empty gate.
    """
    emit = log or (lambda message: None)
    wanted = _select_cases(suites, emit)
    cases: Dict[str, Any] = {}
    started = time.perf_counter()
    for name in wanted:
        case_fn, quick_sizing, full_sizing = _SUITE[name]
        sizing = quick_sizing if quick else full_sizing
        emit(f"bench: {name} (n={sizing.n}, trials={sizing.trials})...")
        cases[name] = case_fn(sizing, seed)
        emit(f"bench: {name}: "
             f"{cases[name]['steps_per_sec']:.0f} steps/sec")
    return {
        "v": BENCH_SCHEMA_VERSION,
        "label": label,
        "quick": quick,
        "seed": seed,
        "created_unix": time.time(),
        "git_sha": _git_sha(),
        "env": _env_fingerprint(),
        "elapsed_seconds": time.perf_counter() - started,
        "cases": cases,
    }


def bench_filename(label: str) -> str:
    """Canonical on-disk name for a labeled report."""
    return f"BENCH_{label}.json"


def write_bench_json(
    report: Dict[str, Any], path: Union[str, Path]
) -> Path:
    """Write a report canonically (sorted keys, trailing newline).

    If ``path`` is an existing directory — or is spelled with a trailing
    slash, in which case it is created — the file is named
    ``BENCH_<label>.json`` inside it.
    """
    wants_dir = str(path).endswith(("/", os.sep))
    path = Path(path)
    if path.is_dir() or wants_dir:
        path = path / bench_filename(str(report.get("label", "local")))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_bench_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a report, rejecting foreign schema versions."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ConfigurationError(
            f"bench file {str(path)!r} cannot be read: {error}"
        ) from error
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"bench file {str(path)!r} is not valid JSON: {error}"
        ) from error
    if not isinstance(data, dict) or data.get("v") != BENCH_SCHEMA_VERSION:
        version = data.get("v") if isinstance(data, dict) else None
        raise ConfigurationError(
            f"unsupported bench schema version {version!r} in "
            f"{str(path)!r}; this build reads version {BENCH_SCHEMA_VERSION}"
        )
    return data


# ----- comparison ------------------------------------------------------------


@dataclass(frozen=True)
class CaseComparison:
    """One case's old-vs-new verdict."""

    name: str
    old_steps_per_sec: Optional[float]
    new_steps_per_sec: Optional[float]
    #: Fractional change in steps/sec; negative = slower.  ``None`` when
    #: the case is missing on either side.
    change: Optional[float]
    regressed: bool
    note: str = ""

    @property
    def change_pct(self) -> Optional[float]:
        """``change`` as a percentage (``-12.5`` = 12.5% slower)."""
        return self.change * 100.0 if self.change is not None else None


@dataclass
class BenchComparison:
    """The full compare verdict between two reports."""

    threshold: float
    cases: List[CaseComparison] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(case.regressed for case in self.cases)

    @property
    def regressions(self) -> List[CaseComparison]:
        return [case for case in self.cases if case.regressed]

    @property
    def new_cases(self) -> List[CaseComparison]:
        """Cases present only in the candidate report.

        A brand-new case has no baseline number to gate against, so it is
        *informational*: it never fails the comparison (``ok`` stays True
        and the CLI exits 0), but it is surfaced loudly — a ``NEW``
        verdict per case and a footer count — so a baseline refresh is not
        forgotten.
        """
        return [
            case for case in self.cases
            if case.old_steps_per_sec is None and not case.regressed
        ]

    def to_json(self) -> Dict[str, Any]:
        return {
            "threshold": self.threshold,
            "ok": self.ok,
            "cases": [
                {
                    "name": case.name,
                    "old_steps_per_sec": case.old_steps_per_sec,
                    "new_steps_per_sec": case.new_steps_per_sec,
                    "change": case.change,
                    "change_pct": case.change_pct,
                    "regressed": case.regressed,
                    "note": case.note,
                }
                for case in self.cases
            ],
        }

    def render(self) -> str:
        """Human-readable table for terminal output."""
        lines = [
            f"{'case':<24} {'old steps/s':>12} {'new steps/s':>12} "
            f"{'change':>8}  verdict"
        ]
        for case in self.cases:
            old = (f"{case.old_steps_per_sec:.0f}"
                   if case.old_steps_per_sec is not None else "-")
            new = (f"{case.new_steps_per_sec:.0f}"
                   if case.new_steps_per_sec is not None else "-")
            change = (f"{case.change:+.1%}"
                      if case.change is not None else "-")
            if case.regressed:
                verdict = "REGRESSED"
            elif case.old_steps_per_sec is None:
                verdict = "NEW"
            else:
                verdict = "ok"
            note = f" ({case.note})" if case.note else ""
            lines.append(
                f"{case.name:<24} {old:>12} {new:>12} {change:>8}  "
                f"{verdict}{note}"
            )
        lines.append(
            f"threshold: {self.threshold:.0%} steps/sec regression; "
            + ("all cases within bounds" if self.ok
               else f"{len(self.regressions)} case(s) regressed")
        )
        if self.new_cases:
            names = ", ".join(case.name for case in self.new_cases)
            lines.append(
                f"note: {len(self.new_cases)} new case(s) without a "
                f"baseline (not gated): {names} — refresh the baseline to "
                "start gating them"
            )
        return "\n".join(lines)


def compare_bench(
    old: Dict[str, Any],
    new: Dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """Diff two bench reports and flag steps/sec regressions.

    A case regresses when its steps/sec dropped by more than ``threshold``
    (a fraction of the old value).  A case present in ``old`` but missing
    from ``new`` also fails — a silently skipped case must not read as a
    pass.  Cases only in ``new`` are recorded informationally.
    """
    if not 0.0 < threshold < 1.0:
        raise ConfigurationError(
            f"threshold must be a fraction in (0, 1), got {threshold}"
        )
    comparison = BenchComparison(threshold=threshold)
    old_cases = old.get("cases", {})
    new_cases = new.get("cases", {})
    for name in old_cases:
        old_sps = float(old_cases[name]["steps_per_sec"])
        if name not in new_cases:
            comparison.cases.append(CaseComparison(
                name=name, old_steps_per_sec=old_sps,
                new_steps_per_sec=None, change=None, regressed=True,
                note="case missing from new report",
            ))
            continue
        new_sps = float(new_cases[name]["steps_per_sec"])
        if old_sps <= 0:
            comparison.cases.append(CaseComparison(
                name=name, old_steps_per_sec=old_sps,
                new_steps_per_sec=new_sps, change=None, regressed=False,
                note="old steps/sec is zero; not comparable",
            ))
            continue
        change = (new_sps - old_sps) / old_sps
        comparison.cases.append(CaseComparison(
            name=name, old_steps_per_sec=old_sps, new_steps_per_sec=new_sps,
            change=change, regressed=change < -threshold,
        ))
    for name in new_cases:
        if name not in old_cases:
            comparison.cases.append(CaseComparison(
                name=name, old_steps_per_sec=None,
                new_steps_per_sec=float(new_cases[name]["steps_per_sec"]),
                change=None, regressed=False,
                note="new case; no baseline",
            ))
    return comparison


__all__ += ["DEFAULT_THRESHOLD", "VECTORIZED_SUITE_NAMES", "bench_filename"]
