"""Register-model adopt-commit via collects: the O(n) reference object.

Identical logic to :class:`~repro.adoptcommit.snapshot_ac.SnapshotAdoptCommit`
but each "scan" is a *collect* — reading n single-writer registers one at a
time.  Collects are not atomic, yet the two-phase argument survives (the
classical Gafni construction): whichever of two conflicting processes
announces second sees the other's value in phase A, so at most one value is
tagged ``single``; and a committer's phase-B entry, written before its
collect, is seen by every process whose own phase-B write came after the
committer's collect.

Cost: 2 writes + 2n reads.  Included as the no-snapshot baseline for the
adopt-commit cost experiment (E12) and as an oracle implementation for
differential testing of the cheaper objects.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.adoptcommit.base import (
    ADOPT,
    COMMIT,
    AdoptCommitObject,
    AdoptCommitResult,
)
from repro.memory.register import AtomicRegister
from repro.runtime.operations import Operation, Read, Write
from repro.runtime.process import ProcessContext

__all__ = ["CollectAdoptCommit"]

_SINGLE = "single"
_MULTI = "multi"


class CollectAdoptCommit(AdoptCommitObject):
    """Adopt-commit from per-process registers and collects; O(n) steps."""

    def __init__(self, n: int, name: str = "collect-ac"):
        self.name = name
        self.n = n
        self._phase_a: List[AtomicRegister] = [
            AtomicRegister(f"{name}.A[{pid}]") for pid in range(n)
        ]
        self._phase_b: List[AtomicRegister] = [
            AtomicRegister(f"{name}.B[{pid}]") for pid in range(n)
        ]

    def step_bound(self) -> int:
        return 2 + 2 * self.n

    def invoke(
        self, ctx: ProcessContext, value: Any
    ) -> Generator[Operation, Any, AdoptCommitResult]:
        yield Write(self._phase_a[ctx.pid], value)
        seen = set()
        for register in self._phase_a:
            component = yield Read(register)
            if component is not None:
                seen.add(component)
        tag = _SINGLE if seen == {value} else _MULTI

        yield Write(self._phase_b[ctx.pid], (tag, value))
        entries = []
        for register in self._phase_b:
            entry = yield Read(register)
            if entry is not None:
                entries.append(entry)
        singles = {entry_value for entry_tag, entry_value in entries
                   if entry_tag == _SINGLE}

        if singles == {value} and all(entry_tag == _SINGLE
                                      for entry_tag, _ in entries):
            return AdoptCommitResult(COMMIT, value)
        if singles:
            return AdoptCommitResult(ADOPT, next(iter(singles)))
        return AdoptCommitResult(ADOPT, value)
