"""Adopt-commit interface and result type."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List

from repro.runtime.operations import Operation
from repro.runtime.process import ProcessContext

__all__ = ["COMMIT", "ADOPT", "AdoptCommitResult", "AdoptCommitObject",
           "check_coherence", "check_convergence"]

COMMIT = "commit"
ADOPT = "adopt"


@dataclass(frozen=True)
class AdoptCommitResult:
    """The ``(decision, value)`` pair returned by ``AdoptCommit(v)``."""

    decision: str
    value: Any

    def __post_init__(self) -> None:
        if self.decision not in (COMMIT, ADOPT):
            raise ValueError(f"decision must be commit/adopt, got {self.decision!r}")

    @property
    def committed(self) -> bool:
        return self.decision == COMMIT


class AdoptCommitObject:
    """A one-shot adopt-commit object.

    Each process calls :meth:`invoke` at most once, as a sub-program
    (``result = yield from ac.invoke(ctx, v)``).  Implementations own their
    shared memory; a fresh instance is a fresh object.
    """

    name: str
    n: int

    def invoke(
        self, ctx: ProcessContext, value: Any
    ) -> Generator[Operation, Any, AdoptCommitResult]:
        """Run ``AdoptCommit(value)`` on behalf of ``ctx``'s process."""
        raise NotImplementedError

    def step_bound(self) -> int:
        """Worst-case number of charged steps for one invocation."""
        raise NotImplementedError


def check_convergence(inputs: List[Any], results: List[AdoptCommitResult]) -> bool:
    """Spec predicate: identical inputs must all yield (commit, input)."""
    if len(set(inputs)) != 1:
        return True
    expected = inputs[0]
    return all(r.committed and r.value == expected for r in results)


def check_coherence(results: List[AdoptCommitResult]) -> bool:
    """Spec predicate: any commit forces every result to carry that value."""
    committed = {r.value for r in results if r.committed}
    if not committed:
        return True
    if len(committed) > 1:
        return False
    (value,) = committed
    return all(r.value == value for r in results)
