"""Snapshot-model adopt-commit: Gafni-style two-phase construction.

This is the O(1) object the paper invokes in Corollary 1 ("adopt-commit
objects can be implemented using O(1) snapshot operations [16]").  It costs
exactly 4 steps per process and supports arbitrary (hashable) input values,
which is what lets the snapshot-model consensus handle an unbounded input
range.

Construction, over two snapshot objects A and B:

1. ``update A[p] <- v``; ``scan A``.  Tag ``single`` if every non-empty
   component equals ``v``, else ``multi``.
2. ``update B[p] <- (tag, v)``; ``scan B``.
   - all non-empty entries are ``(single, v)``  ->  ``(commit, v)``
   - some entry is ``(single, u)``              ->  ``(adopt, u)``
   - otherwise                                  ->  ``(adopt, own v)``

Safety hinges on two classical facts, both of which the test suite checks
directly on traces: at most one value ever carries the ``single`` tag
(whoever updates A second sees the other's value), and a committer's B-scan
showing only ``(single, v)`` forces every later B-scan to contain that
entry, because B components are never overwritten.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.adoptcommit.base import (
    ADOPT,
    COMMIT,
    AdoptCommitObject,
    AdoptCommitResult,
)
from repro.memory.snapshot import SnapshotObject
from repro.runtime.operations import Operation, Scan, Update
from repro.runtime.process import ProcessContext

__all__ = ["SnapshotAdoptCommit"]

_SINGLE = "single"
_MULTI = "multi"


class SnapshotAdoptCommit(AdoptCommitObject):
    """Adopt-commit in 4 unit-cost snapshot operations."""

    def __init__(self, n: int, name: str = "snapshot-ac"):
        self.name = name
        self.n = n
        self._phase_a = SnapshotObject(n, f"{name}.A")
        self._phase_b = SnapshotObject(n, f"{name}.B")

    def step_bound(self) -> int:
        return 4

    def invoke(
        self, ctx: ProcessContext, value: Any
    ) -> Generator[Operation, Any, AdoptCommitResult]:
        yield Update(self._phase_a, value)
        view_a = yield Scan(self._phase_a)
        seen = {component for component in view_a if component is not None}
        tag = _SINGLE if seen == {value} else _MULTI

        yield Update(self._phase_b, (tag, value))
        view_b = yield Scan(self._phase_b)
        entries = [entry for entry in view_b if entry is not None]
        singles = {entry_value for entry_tag, entry_value in entries
                   if entry_tag == _SINGLE}

        if singles == {value} and all(entry_tag == _SINGLE
                                      for entry_tag, _ in entries):
            return AdoptCommitResult(COMMIT, value)
        if singles:
            # At most one value is ever tagged single; adopt it.
            return AdoptCommitResult(ADOPT, next(iter(singles)))
        return AdoptCommitResult(ADOPT, value)
