"""Value encoders: map a finite value domain to fixed-length digit strings.

The register-model adopt-commit (:mod:`repro.adoptcommit.flag_ac`) announces
a value by raising one flag per digit position.  Its cost is
``O(d * b)`` for ``d`` digits in base ``b``, so the encoding determines the
step complexity: base 2 gives the ``O(log m)`` object used throughout.

Encoders must be *injective* and *agreed in advance* (they are part of the
object's code, not its execution), which is why the register-model
corollaries of the paper require the number of possible input values ``m``
to be known.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["ValueEncoder", "IntEncoder", "DomainEncoder"]


class ValueEncoder:
    """Base class: injective value -> digit-tuple encoding."""

    base: int
    digits: int

    def encode(self, value: Any) -> Tuple[int, ...]:
        """Return ``value``'s digit tuple (length :attr:`digits`)."""
        raise NotImplementedError

    @property
    def domain_size(self) -> int:
        """Number of encodable values ``m``."""
        return self.base ** self.digits


class IntEncoder(ValueEncoder):
    """Encodes integers ``0 .. m-1`` in base ``b`` (default binary).

    ``IntEncoder(m)`` uses ``ceil(log2 m)`` binary digits, giving the
    ``O(log m)`` adopt-commit cost quoted in DESIGN.md.
    """

    def __init__(self, m: int, base: int = 2):
        if m < 1:
            raise ConfigurationError(f"domain size must be >= 1, got {m}")
        if base < 2:
            raise ConfigurationError(f"base must be >= 2, got {base}")
        self.m = m
        self.base = base
        digits = 0
        capacity = 1
        while capacity < m:
            capacity *= base
            digits += 1
        self.digits = digits

    def encode(self, value: Any) -> Tuple[int, ...]:
        if not isinstance(value, int) or not 0 <= value < self.m:
            raise ConfigurationError(
                f"IntEncoder({self.m}) cannot encode {value!r}"
            )
        out: List[int] = []
        remaining = value
        for _ in range(self.digits):
            out.append(remaining % self.base)
            remaining //= self.base
        return tuple(out)


class DomainEncoder(ValueEncoder):
    """Encodes an explicit finite domain of arbitrary hashable values.

    The domain order is fixed at construction; all processes must construct
    the object with the same domain (it is shared code).
    """

    def __init__(self, domain: Sequence[Hashable], base: int = 2):
        values = list(domain)
        if not values:
            raise ConfigurationError("domain must be non-empty")
        if len(set(values)) != len(values):
            raise ConfigurationError("domain contains duplicate values")
        self._index = {value: i for i, value in enumerate(values)}
        self._inner = IntEncoder(len(values), base=base)
        self.base = base
        self.digits = self._inner.digits
        self.domain = values

    def encode(self, value: Any) -> Tuple[int, ...]:
        if value not in self._index:
            raise ConfigurationError(f"value {value!r} not in encoder domain")
        return self._inner.encode(self._index[value])
