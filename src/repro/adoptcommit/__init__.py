"""Adopt-commit objects.

An adopt-commit object (Section 1.2) detects agreement but does not create
it: ``AdoptCommit(v)`` returns ``(commit, v')`` or ``(adopt, v')`` subject to
termination, validity, **convergence** (identical inputs all commit) and
**coherence** (if anyone commits ``v``, everyone returns ``v``).

Implementations:

- :class:`~repro.adoptcommit.snapshot_ac.SnapshotAdoptCommit` — Gafni-style
  two-phase construction on two snapshot objects; 4 steps (O(1)), any
  hashable value domain.  This is the object Corollary 1 alternates with
  Algorithm 1.
- :class:`~repro.adoptcommit.flag_ac.FlagAdoptCommit` — register-model
  construction from digit-indexed flag registers plus a proposal register;
  ``O(log m)`` steps for ``m`` possible values (``O(1)`` for binary values,
  which is what Algorithm 3's combine stage uses).  The paper cites the
  Aspnes–Ellen ``O(log m / log log m)`` object [9]; ours is within a
  ``log log m`` factor, a substitution documented in DESIGN.md.
- :class:`~repro.adoptcommit.collect_ac.CollectAdoptCommit` — the same
  two-phase construction with plain register collects; ``O(n)`` steps,
  included as the no-snapshot reference point.
"""

from repro.adoptcommit.base import (
    ADOPT,
    COMMIT,
    AdoptCommitObject,
    AdoptCommitResult,
)
from repro.adoptcommit.collect_ac import CollectAdoptCommit
from repro.adoptcommit.encoders import DomainEncoder, IntEncoder, ValueEncoder
from repro.adoptcommit.flag_ac import BinaryAdoptCommit, FlagAdoptCommit
from repro.adoptcommit.snapshot_ac import SnapshotAdoptCommit

__all__ = [
    "ADOPT",
    "COMMIT",
    "AdoptCommitObject",
    "AdoptCommitResult",
    "ValueEncoder",
    "IntEncoder",
    "DomainEncoder",
    "FlagAdoptCommit",
    "BinaryAdoptCommit",
    "SnapshotAdoptCommit",
    "CollectAdoptCommit",
]
