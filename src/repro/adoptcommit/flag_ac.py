"""Register-model adopt-commit from digit flags plus a proposal register.

Construction (one flag register per (digit position, digit value), one
proposal register):

1. *Announce*: raise the flag for each digit of my value (``d`` writes).
2. *First conflict pass*: read every flag that a **different** value would
   have raised; a raised one means a conflicting value is around.
3. If clean: write my value to ``proposal``, then run a **second conflict
   pass**.  Clean again -> ``(commit, v)``; dirty -> ``(adopt, v)``.
4. If the first pass was dirty: read ``proposal``; return ``(adopt, u)`` for
   the proposal value ``u`` if present, else ``(adopt, v)``.

Why coherence holds (the subtle property): suppose P returns
``(commit, v)`` — both of P's passes were clean.  Any process Q whose value
``w`` differs from ``v`` differs at some digit ``i``.  Had Q raised
``flag[i][w_i]`` before P's *second* pass read it, P would have seen it; so
Q's announce finishes after P's second pass begins, hence after **all** of
P's announces and after P's ``proposal`` write.  Q's own first pass (which
runs after Q's announce) therefore sees P's ``flag[i][v_i]`` raised and Q
takes the dirty branch — so no process with a value other than ``v`` ever
writes ``proposal``, and Q's subsequent ``proposal`` read (which happens
after P's write) returns ``v``.  Every process therefore leaves with ``v``.

Cost: ``d`` writes + at most ``2 d (b-1)`` flag reads + 2 proposal
operations.  With the default binary encoding this is ``O(log m)`` for ``m``
values and exactly ``<= 5`` steps for the binary object used by
Algorithm 3's combine stage.  (The paper's reference object [9] achieves
``O(log m / log log m)``; see DESIGN.md for the substitution note.)
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.adoptcommit.base import (
    ADOPT,
    COMMIT,
    AdoptCommitObject,
    AdoptCommitResult,
)
from repro.adoptcommit.encoders import DomainEncoder, ValueEncoder
from repro.memory.register import AtomicRegister
from repro.runtime.operations import Operation, Read, Write
from repro.runtime.process import ProcessContext

__all__ = ["FlagAdoptCommit", "BinaryAdoptCommit"]


class FlagAdoptCommit(AdoptCommitObject):
    """Adopt-commit for a finite encoded value domain over registers."""

    def __init__(self, n: int, encoder: ValueEncoder, name: str = "flag-ac"):
        self.name = name
        self.n = n
        self.encoder = encoder
        self._flags: List[List[AtomicRegister]] = [
            [
                AtomicRegister(f"{name}.flag[{position}][{digit}]", initial=False)
                for digit in range(encoder.base)
            ]
            for position in range(encoder.digits)
        ]
        self._proposal = AtomicRegister(f"{name}.proposal")

    def step_bound(self) -> int:
        d, b = self.encoder.digits, self.encoder.base
        return d + 2 * d * (b - 1) + 2

    def invoke(
        self, ctx: ProcessContext, value: Any
    ) -> Generator[Operation, Any, AdoptCommitResult]:
        digits = self.encoder.encode(value)

        # Phase 1: announce my digits.
        for position, digit in enumerate(digits):
            yield Write(self._flags[position][digit], True)

        # Phase 2: first conflict pass.
        conflict = yield from self._conflict_pass(digits)
        if conflict:
            proposed = yield Read(self._proposal)
            if proposed is not None:
                return AdoptCommitResult(ADOPT, proposed)
            return AdoptCommitResult(ADOPT, value)

        # Phase 3: clean so far — propose, then confirm with a second pass.
        yield Write(self._proposal, value)
        conflict = yield from self._conflict_pass(digits)
        if conflict:
            return AdoptCommitResult(ADOPT, value)
        return AdoptCommitResult(COMMIT, value)

    def _conflict_pass(
        self, digits: tuple
    ) -> Generator[Operation, Any, bool]:
        """Read every flag a differing value would raise; True if any set.

        Stops at the first raised flag: the coherence argument only needs
        *clean* passes to have read everything, and a clean pass never stops
        early.
        """
        for position, digit in enumerate(digits):
            for other in range(self.encoder.base):
                if other == digit:
                    continue
                raised = yield Read(self._flags[position][other])
                if raised:
                    return True
        return False


class BinaryAdoptCommit(FlagAdoptCommit):
    """The O(1) binary adopt-commit used by Algorithm 3's combine stage.

    Domain is ``{0, 1}``; worst case 5 steps (1 announce write, 2 conflict
    reads, 1 proposal write, 1 proposal read).
    """

    def __init__(self, n: int, name: str = "binary-ac"):
        super().__init__(n, DomainEncoder([0, 1]), name=name)
