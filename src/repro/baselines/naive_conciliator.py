"""A deliberately weak straw-man conciliator, for contrast in tests/benches.

Every process writes its value to one shared register and then reads it,
returning whatever it sees (2 steps).  Termination and validity hold, but
agreement only happens when the adversary is kind: under a round-robin
schedule everyone returns the last writer's value, while under a
"write-all-then-read-own" explicit schedule every process can keep its own
value.  Its role is to demonstrate, in experiments and property tests, that
probabilistic agreement *for every adversary strategy* — the conciliator
guarantee — is a real property that naive protocols lack.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.conciliator import Conciliator
from repro.core.persona import Persona
from repro.memory.register import AtomicRegister
from repro.runtime.operations import Operation, Read, Write
from repro.runtime.process import ProcessContext

__all__ = ["NaiveConciliator"]


class NaiveConciliator(Conciliator):
    """Write-then-read on one register; agreement at the adversary's mercy."""

    def __init__(self, n: int, name: str = "naive-conciliator"):
        super().__init__(n, name)
        self.register = AtomicRegister(f"{name}.r")

    def step_bound(self) -> int:
        return 2

    def persona_program(
        self, ctx: ProcessContext, input_value: Any
    ) -> Generator[Operation, Any, Persona]:
        mine = Persona(value=input_value, origin=ctx.pid, coin=ctx.rng.randrange(2))
        yield Write(self.register, mine)
        seen = yield Read(self.register)
        return seen if seen is not None else mine
