"""Baseline protocols the paper improves upon.

The introduction positions the new conciliators against the previous state
of the art for an oblivious adversary: ``O(log n)`` expected individual
steps (Aumann's protocol, and the CIL-based conciliator of Aspnes'12 [5]).
:class:`~repro.baselines.doubling_cil.DoublingCILConciliator` reproduces
that ``O(log n)`` behaviour, giving experiment E8 its comparison curve; the
naive one-shot conciliator is the floor that shows why sifting rounds are
needed at all.
"""

from repro.baselines.doubling_cil import DoublingCILConciliator
from repro.baselines.naive_conciliator import NaiveConciliator

__all__ = ["DoublingCILConciliator", "NaiveConciliator"]
