"""The O(log n) probabilistic-write conciliator (prior state of the art).

This is the conciliator extracted from the Chor–Israeli–Li protocol in the
style of Aspnes'12 [5]: each process alternates reads of a single proposal
register with writes whose probability doubles each iteration,
``p_k = min(1, 2^(k-1) / (2n))``.  A process leaves as soon as it reads a
non-empty register (adopting that value) or after it writes.

Properties (all exercised by tests and experiment E8):

- termination in at most ``ceil(log2(2n)) + 1`` iterations — once ``p_k``
  reaches 1 the process writes for sure, so individual step complexity is
  ``Theta(log n)`` worst case;
- validity — only inputs are ever written;
- constant-probability agreement against an oblivious adversary: the first
  write happens at an iteration where the total write probability mass
  spent so far is a constant, so with constant probability no second value
  is written before every remaining process reads.

The point of the paper is that Algorithms 1 and 2 beat this ``log n`` with
``log* n`` and ``log log n`` respectively.
"""

from __future__ import annotations

import math
from typing import Any, Generator

from repro.core.conciliator import Conciliator
from repro.core.persona import Persona
from repro.memory.register import AtomicRegister
from repro.runtime.operations import Operation, Read, Write
from repro.runtime.process import ProcessContext

__all__ = ["DoublingCILConciliator"]


class DoublingCILConciliator(Conciliator):
    """CIL with doubling write probabilities: O(log n) individual steps."""

    def __init__(self, n: int, name: str = "doubling-cil"):
        super().__init__(n, name)
        self.proposal = AtomicRegister(f"{name}.proposal")
        # After this many iterations the write probability has reached 1.
        self.max_iterations = max(1, math.ceil(math.log2(2 * n)) + 1)

    def step_bound(self) -> int:
        """Worst-case individual steps: one read + one maybe-write per
        iteration."""
        return 2 * self.max_iterations

    def persona_program(
        self, ctx: ProcessContext, input_value: Any
    ) -> Generator[Operation, Any, Persona]:
        mine = Persona(value=input_value, origin=ctx.pid, coin=ctx.rng.randrange(2))
        iteration = 1
        while True:
            seen = yield Read(self.proposal)
            if seen is not None:
                return seen
            write_probability = min(1.0, (2.0 ** (iteration - 1)) / (2.0 * self.n))
            if ctx.rng.random() < write_probability:
                yield Write(self.proposal, mine)
                return mine
            iteration += 1
