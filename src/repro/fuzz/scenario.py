"""Fuzz scenarios: random protocol/adversary/fault compositions, and the
oracle harness that runs one and classifies the result.

A :class:`Scenario` pins *everything* about one trial — the protocol stack,
process count, input workload, adversary (an oblivious
:class:`~repro.workloads.schedules.ScheduleSpec`, an adaptive
:class:`~repro.runtime.adaptive.AdaptiveSpec`, or an intermediate ladder
rung :class:`~repro.runtime.adversary.AdversarySpec`), the declared
register model (:class:`~repro.memory.semantics.RegisterModel`; absent
means atomic), fault plan, and the seed feeding algorithm coins — so a
scenario is a pure value: hashable, equality-comparable, and JSON
round-trippable.  Generation is a pure function of
``(master_seed, trial_index, config)``, which is what makes fuzz
campaigns replayable and shrinking meaningful.

Oracle regimes
--------------

Every run rides under the full monitor suite plus post-hoc trace-semantics
checks.  Which failures count as *violations* depends on the fault plan:

- **In-model plans** (crashes/stalls only): every oracle is hard.  The
  paper proves safety against arbitrary schedules and termination for all
  survivors, so any breach is a bug.
- **Out-of-model plans** (register faults): the atomic-register assumption
  itself is broken, so agreement-flavoured oracles (coherence, agreement,
  convergence, register/trace semantics) are *expected* to degrade and are
  recorded as degradations, not violations.  Validity and termination stay
  hard: bounded register misbehaviour must never fabricate values nor hang
  a survivor.
- **Declared weak register models** (``register_model`` of kind
  ``regular``/``safe``): same split as out-of-model plans — the weakening
  is *declared*, so agreement-flavoured damage is the measurement, not a
  bug, while validity/termination/wait-freedom stay hard (Algorithms 1-2
  must keep them even on regular registers).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    BudgetExceededError,
    ConfigurationError,
    ProtocolViolationError,
    ScheduleExhaustedError,
    StepLimitExceededError,
)
from repro.fuzz.stacks import (
    ADOPT_COMMIT,
    CONSENSUS,
    StackSpec,
    get_stack,
    stack_names,
)
from repro.memory.semantics import RegisterModel, SemanticsInjector
from repro.obs.metrics import MetricsHook, MetricsRegistry
from repro.runtime.adaptive import ADAPTIVE_FAMILIES, AdaptiveSpec, run_adaptive_programs
from repro.runtime.adversary import AdversarySpec
from repro.runtime.budget import Deadline, WallClockBudgetHook
from repro.runtime.faults import FaultPlan, CrashFault, RegisterFault, StallFault
from repro.runtime.monitors import (
    AdoptCommitCoherenceMonitor,
    RegisterSemanticsMonitor,
    ValidityMonitor,
    WaitFreedomWatchdog,
)
from repro.runtime.results import RunResult
from repro.runtime.rng import SeedTree
from repro.runtime.simulator import run_programs
from repro.runtime.trace import (
    check_max_register_semantics,
    check_register_semantics,
    check_snapshot_semantics,
)
from repro.workloads.inputs import standard_input_gallery
from repro.workloads.schedules import SCHEDULE_FAMILIES, ScheduleSpec

__all__ = [
    "WORKLOADS",
    "FuzzConfig",
    "Scenario",
    "ScenarioOutcome",
    "ViolationRecord",
    "generate_scenario",
    "make_inputs",
    "run_scenario",
]

#: Input-gallery workloads the fuzzer draws from.
WORKLOADS = ("distinct", "binary", "four-valued", "skewed", "unanimous")

#: Oracles that stay hard even when the fault plan steps outside the
#: atomic-register model: bounded register misbehaviour may wreck
#: agreement, but it must never fabricate a value or hang a survivor.
HARD_ORACLES = frozenset({"validity", "wait-freedom", "termination", "starvation"})

#: Substrings register faults target; chosen to hit the register names the
#: registered stacks actually allocate (proposal/flag/round registers,
#: snapshot components, announce arrays).
_FAULT_NAME_PATTERNS = ("proposal", ".r[", "flag", ".A[", ".B[", "announce")

def make_inputs(workload: str, n: int, seed: int) -> List[Any]:
    """The named input assignment for ``n`` processes."""
    gallery = standard_input_gallery(n, seed=seed % 2**32)
    try:
        return gallery[workload]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {workload!r}; choose from {WORKLOADS}"
        ) from None


@dataclass(frozen=True)
class Scenario:
    """One fully-pinned fuzz trial.

    Exactly one of ``schedule`` (oblivious), ``adaptive`` (fully adaptive),
    and ``adversary`` (an intermediate ladder rung) must be set.  Adaptive
    and ladder scenarios may carry crash faults but not stalls: a stall
    window is keyed on global charged steps, and an adversary that keeps
    naming the stalled process would freeze that clock forever.

    ``register_model`` declares the register semantics the run executes
    under; ``None`` (and a declared atomic model, which normalizes to
    ``None``) is the paper's atomic baseline.  The two new fields are
    omitted from JSON when absent, so every scenario minted before they
    existed serializes to byte-identical canonical JSON.
    """

    stack: str
    n: int
    workload: str
    seed: int
    schedule: Optional[ScheduleSpec] = None
    adaptive: Optional[AdaptiveSpec] = None
    faults: FaultPlan = field(default_factory=FaultPlan)
    adversary: Optional[AdversarySpec] = None
    register_model: Optional[RegisterModel] = None

    _JSON_VERSION = 1

    def __post_init__(self) -> None:
        if self.register_model is not None and self.register_model.is_atomic:
            # Declared-atomic is the default contract; normalizing keeps
            # equality, hashing, and canonical JSON free of a redundant axis.
            object.__setattr__(self, "register_model", None)
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        chosen = sum(
            1 for option in (self.schedule, self.adaptive, self.adversary)
            if option is not None
        )
        if chosen != 1:
            raise ConfigurationError(
                "a scenario needs exactly one of schedule=, adaptive=, or "
                "adversary="
            )
        if self.schedule is not None and self.schedule.n != self.n:
            raise ConfigurationError(
                f"schedule is for n={self.schedule.n} but scenario has "
                f"n={self.n}"
            )
        if self.workload not in WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; choose from {WORKLOADS}"
            )
        if self.schedule is None and self.faults.stalls:
            raise ConfigurationError(
                "adaptive/adversary scenarios cannot carry stall faults "
                "(the stall window is keyed on global charged steps, which "
                "an adversary naming the stalled process would freeze)"
            )
        for fault in (*self.faults.crashes, *self.faults.stalls):
            if fault.pid >= self.n:
                raise ConfigurationError(
                    f"fault targets pid {fault.pid} but the scenario has "
                    f"n={self.n}"
                )

    @property
    def is_adaptive(self) -> bool:
        """True when the run is driven by a step-by-step choosing adversary
        (fully adaptive or a ladder rung) rather than a fixed schedule."""
        return self.schedule is None

    def to_json(self) -> Dict[str, Any]:
        """A plain-JSON description that :meth:`from_json` restores exactly.

        ``adversary`` and ``register_model`` keys appear only when set, so
        pre-ladder scenarios keep their historical canonical bytes.
        """
        data: Dict[str, Any] = {
            "version": self._JSON_VERSION,
            "stack": self.stack,
            "n": self.n,
            "workload": self.workload,
            "seed": self.seed,
            "schedule": None if self.schedule is None else self.schedule.to_json(),
            "adaptive": None if self.adaptive is None else self.adaptive.to_json(),
            "faults": self.faults.to_json(),
        }
        if self.adversary is not None:
            data["adversary"] = self.adversary.to_json()
        if self.register_model is not None:
            data["register_model"] = self.register_model.to_json()
        return data

    def canonical_json(self) -> str:
        """Byte-stable serialization used for hashing and deduplication."""
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Scenario":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"scenario JSON must be an object, got {type(data).__name__}"
            )
        if data.get("version") != cls._JSON_VERSION:
            raise ConfigurationError(
                f"unsupported scenario version {data.get('version')!r}; "
                f"this build reads version {cls._JSON_VERSION}"
            )
        schedule = data.get("schedule")
        adaptive = data.get("adaptive")
        adversary = data.get("adversary")
        register_model = data.get("register_model")
        return cls(
            stack=str(data["stack"]),
            n=int(data["n"]),
            workload=str(data["workload"]),
            seed=int(data["seed"]),
            schedule=None if schedule is None else ScheduleSpec.from_json(schedule),
            adaptive=None if adaptive is None else AdaptiveSpec.from_json(adaptive),
            faults=FaultPlan.from_json(data["faults"]),
            adversary=(
                None if adversary is None else AdversarySpec.from_json(adversary)
            ),
            register_model=(
                None if register_model is None
                else RegisterModel.from_json(register_model)
            ),
        )


@dataclass(frozen=True)
class ViolationRecord:
    """One oracle failure (or, out-of-model, expected degradation)."""

    oracle: str
    pid: Optional[int]
    message: str

    def to_json(self) -> Dict[str, Any]:
        return {"oracle": self.oracle, "pid": self.pid, "message": self.message}

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ViolationRecord":
        return cls(
            oracle=str(data["oracle"]),
            pid=None if data.get("pid") is None else int(data["pid"]),
            message=str(data.get("message", "")),
        )


@dataclass(frozen=True)
class ScenarioOutcome:
    """The classified result of running one scenario.

    ``status`` is one of ``"ok"``, ``"degraded"`` (out-of-model damage
    only), ``"violation"`` (a hard oracle fired), ``"budget-exceeded"``
    (the wall-clock safety valve stopped the run before any verdict), or
    ``"inconclusive"`` (the execution could not exercise the oracles, e.g.
    a stall window that can no longer close).
    """

    scenario: Scenario
    status: str
    violations: Tuple[ViolationRecord, ...] = ()
    degradations: Tuple[ViolationRecord, ...] = ()
    total_steps: int = 0
    note: str = ""
    metrics: Optional[Dict[str, Any]] = None

    @property
    def oracle_names(self) -> Tuple[str, ...]:
        """Sorted names of every oracle that fired (hard or degraded)."""
        names = {record.oracle for record in self.violations}
        names.update(record.oracle for record in self.degradations)
        return tuple(sorted(names))

    def to_json(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario.to_json(),
            "status": self.status,
            "violations": [record.to_json() for record in self.violations],
            "degradations": [record.to_json() for record in self.degradations],
            "total_steps": self.total_steps,
            "note": self.note,
            "metrics": self.metrics,
        }


# ----- generation -----------------------------------------------------------


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for scenario generation.

    ``stacks`` restricts the draw (empty tuple = every honest stack);
    planted, ladder, or custom-registered stacks participate only when
    named explicitly.  ``allow_out_of_model`` gates register-fault
    generation, mirroring :class:`~repro.runtime.faults.FaultPlan`'s own
    gate.

    ``register_model`` / ``adversary`` *force* every generated scenario
    onto that register model / ladder rung (each trial gets a fresh
    private seed).  Forcing an adversary replaces whatever schedule or
    adaptive spec the trial drew and drops its stall faults; the draws
    still happen, so trial streams with the forcing off are unchanged.
    Like the scenario fields, both serialize only when set.
    """

    stacks: Tuple[str, ...] = ()
    min_n: int = 2
    max_n: int = 5
    include_adaptive: bool = True
    allow_out_of_model: bool = False
    register_model: Optional[RegisterModel] = None
    adversary: Optional[AdversarySpec] = None

    _JSON_VERSION = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "stacks", tuple(self.stacks))
        if self.register_model is not None and self.register_model.is_atomic:
            object.__setattr__(self, "register_model", None)
        if self.min_n < 1:
            raise ConfigurationError(f"min_n must be >= 1, got {self.min_n}")
        if self.max_n < self.min_n:
            raise ConfigurationError(
                f"max_n ({self.max_n}) must be >= min_n ({self.min_n})"
            )

    def resolved_stacks(self) -> List[str]:
        """The stack names this config draws from (validated)."""
        names = list(self.stacks) if self.stacks else stack_names()
        for name in names:
            get_stack(name)  # raises ConfigurationError for unknown names
        return names

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "version": self._JSON_VERSION,
            "stacks": list(self.stacks),
            "min_n": self.min_n,
            "max_n": self.max_n,
            "include_adaptive": self.include_adaptive,
            "allow_out_of_model": self.allow_out_of_model,
        }
        if self.register_model is not None:
            data["register_model"] = self.register_model.to_json()
        if self.adversary is not None:
            data["adversary"] = self.adversary.to_json()
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FuzzConfig":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fuzz config JSON must be an object, got {type(data).__name__}"
            )
        if data.get("version") != cls._JSON_VERSION:
            raise ConfigurationError(
                f"unsupported fuzz config version {data.get('version')!r}; "
                f"this build reads version {cls._JSON_VERSION}"
            )
        register_model = data.get("register_model")
        adversary = data.get("adversary")
        return cls(
            stacks=tuple(str(name) for name in data.get("stacks", ())),
            min_n=int(data.get("min_n", 2)),
            max_n=int(data.get("max_n", 5)),
            include_adaptive=bool(data.get("include_adaptive", True)),
            allow_out_of_model=bool(data.get("allow_out_of_model", False)),
            register_model=(
                None if register_model is None
                else RegisterModel.from_json(register_model)
            ),
            adversary=(
                None if adversary is None else AdversarySpec.from_json(adversary)
            ),
        )


def _random_explicit_slots(rng, n: int) -> Tuple[int, ...]:
    """A mutated explicit schedule: fair round-robin base, then chaos.

    Mutations (swap, duplicate, drop) preserve slot validity while
    exploring the interleaving space around fair schedules, which is where
    TOCTTOU-style protocol races live.
    """
    reps = rng.randint(2, 24)
    slots = [pid for _ in range(reps) for pid in range(n)]
    for _ in range(rng.randint(0, max(1, len(slots) // 2))):
        kind = rng.choice(("swap", "dup", "drop"))
        index = rng.randrange(len(slots))
        if kind == "swap":
            other = rng.randrange(len(slots))
            slots[index], slots[other] = slots[other], slots[index]
        elif kind == "dup" and len(slots) < 512:
            slots.insert(index, slots[rng.randrange(len(slots))])
        elif kind == "drop" and len(slots) > n:
            del slots[index]
    return tuple(slots)


def generate_scenario(
    master_seed: int, trial_index: int, config: FuzzConfig
) -> Scenario:
    """Compose trial ``trial_index``'s scenario — a pure function of its
    arguments, so campaigns replay and shard deterministically."""
    rng = (
        SeedTree(master_seed)
        .child("fuzz")
        .child(f"trial-{trial_index}")
        .rng()
    )
    spec = get_stack(rng.choice(sorted(config.resolved_stacks())))
    low = max(config.min_n, spec.min_n)
    high = max(config.max_n, low)
    n = rng.randint(low, high)
    workload = rng.choice(sorted(spec.workloads or WORKLOADS))
    seed = rng.randrange(2**48)

    adaptive: Optional[AdaptiveSpec] = None
    schedule: Optional[ScheduleSpec] = None
    if config.include_adaptive and rng.random() < 0.25:
        adaptive = AdaptiveSpec(
            rng.choice(sorted(ADAPTIVE_FAMILIES)), seed=rng.randrange(2**32)
        )
    else:
        family = rng.choice(sorted(SCHEDULE_FAMILIES + ("explicit",)))
        if family == "explicit":
            schedule = ScheduleSpec(
                "explicit", n, slots=_random_explicit_slots(rng, n)
            )
        else:
            schedule = ScheduleSpec(family, n, seed=rng.randrange(2**32))

    crashes: List[CrashFault] = []
    if n > 1 and rng.random() < 0.5:
        count = rng.randint(1, max(1, n // 2))
        for pid in sorted(rng.sample(range(n), count)):
            crashes.append(CrashFault(pid=pid, after_steps=rng.randint(0, 24)))
    stalls: List[StallFault] = []
    if adaptive is None and rng.random() < 0.4:
        for _ in range(rng.randint(1, 2)):
            stalls.append(StallFault(
                pid=rng.randrange(n),
                start_step=rng.randint(0, 48),
                duration=rng.randint(1, 32),
            ))
    register_faults: List[RegisterFault] = []
    if config.allow_out_of_model and rng.random() < 0.6:
        for _ in range(rng.randint(1, 2)):
            register_faults.append(RegisterFault(
                kind=rng.choice(("lossy-write", "stale-read")),
                obj_name=rng.choice(_FAULT_NAME_PATTERNS),
                op_index=rng.randint(0, 6),
                count=rng.randint(1, 3),
            ))

    # Ladder overrides come last so every draw above still happens in the
    # historical order: a config (or ladder stack) that pins an adversary or
    # register model perturbs only trials where the pin is active, never the
    # RNG stream of configs minted before these options existed.
    adversary = config.adversary if config.adversary is not None else spec.adversary
    if adversary is not None:
        adversary = replace(adversary, seed=rng.randrange(2**32))
        schedule = None
        adaptive = None
        stalls = []
    model = (
        config.register_model if config.register_model is not None
        else spec.register_model
    )
    if model is not None and not model.is_atomic:
        model = replace(model, seed=rng.randrange(2**32))
    else:
        model = None

    return Scenario(
        stack=spec.name,
        n=n,
        workload=workload,
        seed=seed,
        schedule=schedule,
        adaptive=adaptive,
        faults=FaultPlan(
            crashes=tuple(crashes),
            stalls=tuple(stalls),
            register_faults=tuple(register_faults),
            allow_out_of_model=bool(register_faults),
        ),
        adversary=adversary,
        register_model=model,
    )


# ----- execution + oracles --------------------------------------------------


def _trace_records(result: RunResult, n: int) -> List[ViolationRecord]:
    """Post-hoc trace-semantics oracles, one verdict per shared object."""
    records: List[ViolationRecord] = []
    if result.trace is None:
        return records
    by_object: Dict[str, List[Any]] = {}
    for event in result.trace.events:
        by_object.setdefault(event.obj_name, []).append(event)
    for name in sorted(by_object):
        events = by_object[name]
        kinds = {event.kind for event in events}
        try:
            if kinds & {"update", "scan"}:
                check_snapshot_semantics(events, n)
            elif kinds & {"maxwrite", "maxread"}:
                check_max_register_semantics(events)
            elif kinds & {"read", "write"}:
                # The checker assumes initial=None; registers created with a
                # different initial value (e.g. flag registers holding
                # False) would trip it spuriously, so treat the first
                # pre-write read as defining the initial value.
                initial = events[0].result if events[0].kind == "read" else None
                check_register_semantics(events, initial=initial)
        except ProtocolViolationError as error:
            records.append(ViolationRecord("trace-semantics", None, str(error)))
    return records


def _output_records(
    spec: StackSpec, result: RunResult, inputs: Sequence[Any]
) -> List[ViolationRecord]:
    """Output-shape oracles that depend on the stack kind."""
    records: List[ViolationRecord] = []
    if spec.kind == CONSENSUS and len(result.decided_values) > 1:
        records.append(ViolationRecord(
            "agreement", None,
            f"consensus decided {sorted(map(repr, result.decided_values))}",
        ))
    if spec.kind == ADOPT_COMMIT and len(set(inputs)) == 1:
        expected = inputs[0]
        for pid in sorted(result.outputs):
            output = result.outputs[pid]
            if not (getattr(output, "committed", False)
                    and output.value == expected):
                records.append(ViolationRecord(
                    "convergence", pid,
                    f"identical inputs {expected!r} but pid {pid} got "
                    f"{output!r}",
                ))
    return records


def run_scenario(
    scenario: Scenario,
    *,
    wall_clock_seconds: Optional[float] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace: Optional[Any] = None,
) -> ScenarioOutcome:
    """Execute one scenario under the full oracle suite.

    ``wall_clock_seconds`` is a host safety valve, not part of the model: a
    pathological scenario is cut off and reported as ``budget-exceeded``
    instead of hanging the campaign.  Within the budget, the outcome is a
    deterministic function of the scenario.

    ``metrics`` optionally names a registry the run populates — simulator
    step/operation counters plus monitor observations — and whose snapshot
    is carried on :attr:`ScenarioOutcome.metrics` for campaign aggregation.

    ``trace`` optionally names a :class:`~repro.obs.tracing.TraceRecorder`
    attached as a step hook; after the run it is annotated with the built
    stack's conciliator round bookkeeping (when the stack has one), so
    trace analytics (:mod:`repro.obs.analyze`) can reconstruct persona
    lineages from it.
    """
    spec = get_stack(scenario.stack)
    if spec.workloads is not None and scenario.workload not in spec.workloads:
        raise ConfigurationError(
            f"stack {spec.name!r} only accepts workloads {spec.workloads}, "
            f"got {scenario.workload!r}"
        )
    inputs = make_inputs(scenario.workload, scenario.n, scenario.seed)
    built = spec.build(scenario.n, inputs)

    validity = ValidityMonitor(inputs, strict=False, metrics=metrics)
    coherence = AdoptCommitCoherenceMonitor(strict=False, metrics=metrics)
    watchdog = WaitFreedomWatchdog(
        built.step_budget, strict=False, metrics=metrics
    )
    register_semantics = RegisterSemanticsMonitor(
        strict=False, metrics=metrics, model=scenario.register_model
    )
    monitors = [validity, coherence, watchdog, register_semantics]

    hooks: List[Any] = []
    if scenario.register_model is not None:
        # First, so weakened read resolution is bound before faults or
        # monitors ever observe the objects.
        hooks.append(SemanticsInjector(scenario.register_model))
    if not scenario.faults.is_empty:
        hooks.append(scenario.faults.injector())
    hooks.extend(monitors)
    if metrics is not None:
        hooks.append(MetricsHook(metrics))
    if trace is not None:
        hooks.append(trace)
    if wall_clock_seconds is not None:
        hooks.append(WallClockBudgetHook(Deadline(wall_clock_seconds)))

    step_limit = built.step_budget * scenario.n + 1024
    seeds = SeedTree(scenario.seed)
    records: List[ViolationRecord] = []
    note = ""
    result: Optional[RunResult] = None
    total_steps = 0
    status: Optional[str] = None

    def finish(status: str, **kwargs: Any) -> ScenarioOutcome:
        snapshot: Optional[Dict[str, Any]] = None
        if metrics is not None:
            metrics.counter("fuzz.scenario.status", status=status).inc()
            snapshot = metrics.to_json()
        return ScenarioOutcome(scenario, status, metrics=snapshot, **kwargs)

    adversary_impl: Optional[Any] = None
    if scenario.adaptive is not None:
        adversary_impl = scenario.adaptive.build()
    elif scenario.adversary is not None:
        adversary_impl = scenario.adversary.build()

    try:
        if adversary_impl is not None:
            result = run_adaptive_programs(
                built.programs,
                adversary_impl,
                seeds,
                inputs=inputs,
                record_trace=True,
                step_limit=step_limit,
                hooks=hooks,
            )
        else:
            assert scenario.schedule is not None
            result = run_programs(
                built.programs,
                scenario.schedule.build(),
                seeds,
                inputs=inputs,
                record_trace=True,
                step_limit=step_limit,
                hooks=hooks,
                allow_partial=scenario.schedule.is_finite,
            )
    except BudgetExceededError as error:
        return finish("budget-exceeded", note=str(error))
    except StepLimitExceededError as error:
        records.append(ViolationRecord(
            "termination", None,
            f"run exhausted its step limit ({step_limit}) with processes "
            f"{sorted(error.unfinished_pids)} undecided",
        ))
        total_steps = sum(error.steps_by_pid.values())
    except ScheduleExhaustedError as error:
        if scenario.faults.stalls:
            # A stall window keyed on a frozen global step count can never
            # close once every other process is done; the run cannot
            # exercise the oracles, so it is inconclusive, not a violation.
            return finish(
                "inconclusive",
                note=f"stall window could not close: {error}",
            )
        records.append(ViolationRecord(
            "starvation", None,
            f"a fair schedule starved processes "
            f"{sorted(error.unfinished_pids)}: {error}",
        ))
        total_steps = sum(error.steps_by_pid.values())
    except Exception as error:  # noqa: BLE001 - a crashing protocol is a finding
        records.append(ViolationRecord(
            "runtime-error", None, f"{type(error).__name__}: {error}",
        ))

    if trace is not None and built.conciliator is not None:
        try:
            trace.annotate_conciliator(built.conciliator)
        except ConfigurationError:
            # No round bookkeeping (e.g. the run died before any round
            # completed): the step-level trace is still worth keeping.
            pass

    if metrics is not None and scenario.adversary is not None:
        # Ladder telemetry: how often the wrapper actually deviated from
        # its inner strategy this run.
        clamped = getattr(adversary_impl, "clamped", None)
        if clamped:
            metrics.counter(
                "adversary.clamped", kind=scenario.adversary.kind
            ).inc(clamped)
        perturbed = getattr(adversary_impl, "perturbed", None)
        if perturbed:
            metrics.counter(
                "adversary.perturbed", kind=scenario.adversary.kind
            ).inc(perturbed)

    if result is not None:
        total_steps = result.total_steps
        records.extend(_trace_records(result, scenario.n))
        records.extend(_output_records(spec, result, inputs))
    for monitor in monitors:
        for violation in monitor.violations:
            records.append(ViolationRecord(
                violation.monitor, violation.pid, violation.message,
            ))

    if scenario.faults.is_in_model and scenario.register_model is None:
        violations = tuple(records)
        degradations: Tuple[ViolationRecord, ...] = ()
    else:
        # Out-of-model faults break the atomicity assumption behind the
        # protocol's back; a declared weak register model breaks it openly.
        # Either way only the HARD_ORACLES stay load-bearing.
        violations = tuple(r for r in records if r.oracle in HARD_ORACLES)
        degradations = tuple(r for r in records if r.oracle not in HARD_ORACLES)

    if status is None:
        if violations:
            status = "violation"
        elif degradations:
            status = "degraded"
        else:
            status = "ok"
    return finish(
        status,
        violations=violations,
        degradations=degradations,
        total_steps=total_steps,
        note=note,
    )
