"""Chaos fuzzing for the consensus substrate.

``repro.fuzz`` randomly composes scenarios — protocol stack, schedule
family or adaptive adversary, fault plan, process count, seeds — runs each
under the full invariant-monitor suite plus trace-semantics oracles,
enforces wall-clock/step budgets, shrinks any violation to a minimal
reproducer, and maintains a versioned JSON regression corpus replayed by
the tier-1 test suite.

Importing this package registers every honest protocol stack *and* the
planted calibration bugs (:mod:`repro.fuzz.planted`); the planted stacks
are flagged so honest campaigns never draw them.
"""

from repro.fuzz import planted as _planted  # noqa: F401 - registers planted stacks
from repro.fuzz.campaign import CampaignReport, Finding, run_fuzz_campaign
from repro.fuzz.corpus import (
    CorpusCase,
    ReplayReport,
    case_filename,
    load_case,
    load_corpus,
    replay_case,
    save_case,
)
from repro.fuzz.explain import (
    STACK_ALGORITHMS,
    CaseExplanation,
    explain_case,
    explain_scenario,
)
from repro.fuzz.scenario import (
    WORKLOADS,
    FuzzConfig,
    Scenario,
    ScenarioOutcome,
    ViolationRecord,
    generate_scenario,
    make_inputs,
    run_scenario,
)
from repro.fuzz.shrink import ShrinkResult, shrink_scenario
from repro.fuzz.stacks import (
    BuiltStack,
    StackSpec,
    get_stack,
    register_stack,
    stack_names,
)

__all__ = [
    "CampaignReport",
    "Finding",
    "run_fuzz_campaign",
    "CorpusCase",
    "ReplayReport",
    "case_filename",
    "load_case",
    "load_corpus",
    "replay_case",
    "save_case",
    "STACK_ALGORITHMS",
    "CaseExplanation",
    "explain_case",
    "explain_scenario",
    "WORKLOADS",
    "FuzzConfig",
    "Scenario",
    "ScenarioOutcome",
    "ViolationRecord",
    "generate_scenario",
    "make_inputs",
    "run_scenario",
    "ShrinkResult",
    "shrink_scenario",
    "BuiltStack",
    "StackSpec",
    "get_stack",
    "register_stack",
    "stack_names",
]
