"""Delta-debugging shrinker: minimize a violating scenario.

Given a scenario whose run fired some oracle, the shrinker searches for the
*smallest* scenario that still fires the same oracle: it drops faults,
zeroes fault parameters, lowers ``n`` by dropping the highest pid,
materializes randomized schedule families into explicit slot lists, and
then ddmin-deletes slot chunks.  Every candidate is validated by actually
re-running it — a simplification is kept only if the same oracle name still
fires — so the final reproducer is self-certifying.

Because scenario runs are deterministic, shrinking is too: the same input
scenario always minimizes to the same reproducer, which is what keeps
corpus files byte-stable across machines and campaign re-runs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Callable, FrozenSet, Iterator, Optional, Tuple

from repro.errors import ConfigurationError
from repro.fuzz.scenario import Scenario, ScenarioOutcome, run_scenario
from repro.runtime.budget import Deadline
from repro.runtime.faults import CrashFault, FaultPlan, StallFault
from repro.workloads.schedules import ScheduleSpec

__all__ = ["ShrinkResult", "shrink_scenario"]


@dataclass
class ShrinkResult:
    """The minimized scenario plus shrink statistics."""

    scenario: Scenario
    outcome: ScenarioOutcome
    oracles: FrozenSet[str]
    attempts: int
    improvements: int
    stopped_early: bool


def _with_faults(scenario: Scenario, faults: FaultPlan) -> Scenario:
    return replace(scenario, faults=faults)


def _fault_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Drop whole faults, then shrink the surviving faults' parameters."""
    plan = scenario.faults
    for index in range(len(plan.register_faults)):
        remaining = plan.register_faults[:index] + plan.register_faults[index + 1:]
        yield _with_faults(scenario, replace(
            plan,
            register_faults=remaining,
            allow_out_of_model=bool(remaining),
        ))
    for index in range(len(plan.stalls)):
        yield _with_faults(scenario, replace(
            plan, stalls=plan.stalls[:index] + plan.stalls[index + 1:],
        ))
    for index in range(len(plan.crashes)):
        yield _with_faults(scenario, replace(
            plan, crashes=plan.crashes[:index] + plan.crashes[index + 1:],
        ))
    for index, crash in enumerate(plan.crashes):
        if crash.after_steps > 0:
            shrunk = CrashFault(pid=crash.pid, after_steps=0)
            yield _with_faults(scenario, replace(
                plan,
                crashes=plan.crashes[:index] + (shrunk,) + plan.crashes[index + 1:],
            ))
    for index, stall in enumerate(plan.stalls):
        for shrunk in (
            StallFault(pid=stall.pid, start_step=0, duration=stall.duration),
            StallFault(pid=stall.pid, start_step=stall.start_step,
                       duration=max(1, stall.duration // 2)),
        ):
            if shrunk != stall:
                yield _with_faults(scenario, replace(
                    plan,
                    stalls=plan.stalls[:index] + (shrunk,) + plan.stalls[index + 1:],
                ))
    for index, fault in enumerate(plan.register_faults):
        shrunk = replace(fault, op_index=0, count=1)
        if shrunk != fault:
            yield _with_faults(scenario, replace(
                plan,
                register_faults=(plan.register_faults[:index] + (shrunk,)
                                 + plan.register_faults[index + 1:]),
            ))


def _drop_pid_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Lower ``n`` by removing the highest pid and remapping everything."""
    if scenario.n < 2:
        return
    dropped = scenario.n - 1
    n = scenario.n - 1
    plan = scenario.faults
    faults = replace(
        plan,
        crashes=tuple(c for c in plan.crashes if c.pid != dropped),
        stalls=tuple(s for s in plan.stalls if s.pid != dropped),
        allow_out_of_model=plan.allow_out_of_model,
    )
    schedule: Optional[ScheduleSpec] = scenario.schedule
    if schedule is not None:
        if schedule.family == "explicit":
            slots = tuple(s for s in schedule.slots if s != dropped)
            if not slots:
                return
            schedule = ScheduleSpec("explicit", n, slots=slots)
        else:
            schedule = ScheduleSpec(schedule.family, n, seed=schedule.seed)
    yield replace(scenario, n=n, schedule=schedule, faults=faults)


def _slot_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """ddmin over explicit slots: delete chunks, largest first."""
    schedule = scenario.schedule
    if schedule is None or schedule.family != "explicit":
        return
    slots = list(schedule.slots)
    chunk = max(1, len(slots) // 2)
    while chunk >= 1:
        for start in range(0, len(slots), chunk):
            remaining = tuple(slots[:start] + slots[start + chunk:])
            if not remaining:
                continue
            yield replace(
                scenario,
                schedule=ScheduleSpec("explicit", scenario.n, slots=remaining),
            )
        if chunk == 1:
            break
        chunk //= 2


def _materialize_candidates(
    scenario: Scenario, outcome: ScenarioOutcome
) -> Iterator[Scenario]:
    """Turn a randomized schedule family into an explicit prefix.

    Explicit schedules unlock slot-level ddmin.  The prefix length is taken
    from the failing run's own step count (plus slack for skipped slots);
    if truncation changes the outcome, the candidate simply fails to
    reproduce and is discarded.
    """
    schedule = scenario.schedule
    if schedule is None or schedule.family == "explicit":
        return
    length = max(4 * outcome.total_steps + 16 * scenario.n, 8 * scenario.n)
    length = min(length, 4096)
    slots = tuple(itertools.islice(iter(schedule.build()), length))
    if not slots:
        return
    try:
        yield replace(
            scenario,
            schedule=ScheduleSpec("explicit", scenario.n, slots=slots),
        )
    except ConfigurationError:  # pragma: no cover - defensive
        return


def _size(scenario: Scenario) -> Tuple[int, int, int]:
    """Lexicographic cost: prefer fewer processes, fewer faults, fewer slots."""
    plan = scenario.faults
    fault_count = len(plan.crashes) + len(plan.stalls) + len(plan.register_faults)
    slots = 0
    if scenario.schedule is not None and scenario.schedule.slots is not None:
        slots = len(scenario.schedule.slots)
    return (scenario.n, fault_count, slots)


def shrink_scenario(
    scenario: Scenario,
    oracles: FrozenSet[str],
    *,
    max_reproductions: int = 300,
    deadline_seconds: Optional[float] = None,
    wall_clock_seconds: Optional[float] = None,
    run: Callable[..., ScenarioOutcome] = run_scenario,
) -> ShrinkResult:
    """Minimize ``scenario`` while any oracle in ``oracles`` still fires.

    ``max_reproductions`` and ``deadline_seconds`` bound the work (the same
    budget machinery as the campaign itself); hitting either returns the
    best reproducer found so far with ``stopped_early=True``.  ``run`` is
    injectable for tests.
    """
    if not oracles:
        raise ConfigurationError("shrinking needs at least one target oracle")
    deadline = Deadline(deadline_seconds)
    attempts = 0
    improvements = 0
    stopped_early = False

    def reproduces(candidate: Scenario) -> Optional[ScenarioOutcome]:
        nonlocal attempts
        attempts += 1
        outcome = run(candidate, wall_clock_seconds=wall_clock_seconds)
        if set(outcome.oracle_names) & oracles:
            return outcome
        return None

    current = scenario
    current_outcome = run(scenario, wall_clock_seconds=wall_clock_seconds)
    if not set(current_outcome.oracle_names) & oracles:
        raise ConfigurationError(
            f"scenario does not reproduce any of {sorted(oracles)}; it "
            f"fired {list(current_outcome.oracle_names)}"
        )

    passes = (
        _fault_candidates,
        _drop_pid_candidates,
        lambda s: _materialize_candidates(s, current_outcome),
        _slot_candidates,
    )
    # Greedy descent with restart: accept the first reproducing candidate
    # that shrinks the (n, faults, slots) cost — or the one-shot schedule
    # materialization, which grows the slot count but unlocks slot-level
    # ddmin — then start the passes over from the top.  Restarting keeps
    # every candidate derived from the *current* scenario, so improvements
    # can never be silently undone by stale candidates.
    while True:
        if attempts >= max_reproductions or deadline.expired():
            stopped_early = True
            break
        improved: Optional[Tuple[Scenario, ScenarioOutcome]] = None
        for pass_index, candidates_of in enumerate(passes):
            for candidate in candidates_of(current):
                if attempts >= max_reproductions or deadline.expired():
                    stopped_early = True
                    break
                try:
                    outcome = reproduces(candidate)
                except ConfigurationError:
                    continue
                if outcome is None:
                    continue
                materialized = pass_index == 2
                if materialized or _size(candidate) < _size(current):
                    improved = (candidate, outcome)
                    break
            if improved is not None or stopped_early:
                break
        if improved is None:
            break
        current, current_outcome = improved
        improvements += 1
    return ShrinkResult(
        scenario=current,
        outcome=current_outcome,
        oracles=frozenset(oracles),
        attempts=attempts,
        improvements=improvements,
        stopped_early=stopped_early,
    )
