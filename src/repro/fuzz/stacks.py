"""Protocol stack registry for the chaos fuzzer.

A *stack* is one runnable composition from the paper's toolbox: a bare
conciliator (Algorithms 1-3 and their variants), an adopt-commit object, or
a full consensus protocol (conciliator + adopt-commit phases).  The fuzzer
draws stacks from this registry, so adding an entry here automatically
exposes the new protocol to every fuzz campaign.

Each :class:`StackSpec` knows how to build programs for a given ``n`` and
input assignment, and supplies the per-process step budget the
wait-freedom oracle enforces.  Budgets come in two flavours:

- *exact* — a proven worst-case individual bound (``step_bound()``), so a
  single extra step is a genuine wait-freedom violation;
- *generous* — for protocols whose worst case is probabilistic (the
  geometric phase count of consensus), a bound chosen so an honest run
  exceeds it with probability at most ``2**-GEOMETRIC_PHASES`` per
  scenario.  Exceeding a generous budget is still reported as a
  violation: at that likelihood the alternative explanation is a bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.adoptcommit.base import AdoptCommitObject
from repro.adoptcommit.collect_ac import CollectAdoptCommit
from repro.adoptcommit.encoders import DomainEncoder
from repro.adoptcommit.flag_ac import BinaryAdoptCommit, FlagAdoptCommit
from repro.adoptcommit.snapshot_ac import SnapshotAdoptCommit
from repro.baselines import DoublingCILConciliator, NaiveConciliator
from repro.core.cil_embedded import CILEmbeddedConciliator
from repro.core.compose import ChainedConciliator
from repro.core.conciliator import Conciliator
from repro.core.consensus import (
    ConsensusProtocol,
    register_consensus,
    snapshot_consensus,
)
from repro.core.emulated_conciliator import EmulatedSnapshotConciliator
from repro.core.indirect_conciliator import IndirectSnapshotConciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.errors import ConfigurationError
from repro.memory.semantics import RegisterModel
from repro.runtime.adversary import AdversarySpec
from repro.runtime.process import Program

__all__ = [
    "GEOMETRIC_PHASES",
    "SERVICE_CHAOS_STACKS",
    "BuiltStack",
    "StackSpec",
    "conciliator_budget",
    "get_service_chaos",
    "get_stack",
    "ladder_stack_names",
    "register_service_chaos",
    "register_stack",
    "service_chaos_names",
    "stack_names",
]

#: Phase allowance for protocols whose round count is geometric with
#: success probability >= 1/2 per phase: an honest run needs more phases
#: with probability <= 2**-GEOMETRIC_PHASES.
GEOMETRIC_PHASES = 64

#: Stack kinds, which determine the oracles applied to outputs.
CONCILIATOR = "conciliator"
ADOPT_COMMIT = "adopt-commit"
CONSENSUS = "consensus"
_KINDS = (CONCILIATOR, ADOPT_COMMIT, CONSENSUS)


@dataclass
class BuiltStack:
    """One stack instantiated for a concrete run."""

    programs: List[Program]
    #: Per-process step budget enforced by the wait-freedom watchdog.
    step_budget: int
    #: True when ``step_budget`` is a proven worst-case bound.
    exact_budget: bool
    #: The conciliator instance the programs run, when the stack has one
    #: at its top level — its round bookkeeping feeds post-run trace
    #: annotation (``TraceRecorder.annotate_conciliator``).
    conciliator: Optional[Conciliator] = None


@dataclass(frozen=True)
class StackSpec:
    """A named, buildable protocol composition.

    Attributes:
        name: registry key, also recorded in scenarios and corpus cases.
        kind: ``"conciliator"``, ``"adopt-commit"``, or ``"consensus"`` —
            selects which output oracles apply.
        builder: ``(n, inputs) -> BuiltStack``.
        min_n: smallest process count the stack supports.
        workloads: input-gallery names this stack accepts (``None`` = all).
        planted: True for deliberately buggy calibration stacks, which are
            excluded from honest campaigns.
        register_model: when set, scenarios drawn for this stack run under
            the weakened register semantics it declares (the per-trial
            resolution seed is drawn at generation time).
        adversary: when set, scenarios drawn for this stack run under this
            intermediate-strength adversary instead of an oblivious
            schedule or fully adaptive strategy.
        ladder: True for model-ladder stacks (honest protocols pinned to a
            weakened register model and/or intermediate adversary).  Like
            planted stacks they are excluded from the default draw — the
            default campaign's seeded stack choice, and with it the
            committed regression corpus, must not shift when the ladder
            grows — and participate only when named explicitly (e.g. by
            the nightly weakened-model soak leg).
    """

    name: str
    kind: str
    builder: Callable[[int, Sequence[Any]], BuiltStack] = field(compare=False)
    min_n: int = 1
    workloads: Optional[Tuple[str, ...]] = None
    planted: bool = False
    register_model: Optional[RegisterModel] = None
    adversary: Optional[AdversarySpec] = None
    ladder: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown stack kind {self.kind!r}; choose from {_KINDS}"
            )

    def build(self, n: int, inputs: Sequence[Any]) -> BuiltStack:
        """Instantiate fresh shared state and programs for one run."""
        if n < self.min_n:
            raise ConfigurationError(
                f"stack {self.name!r} needs n >= {self.min_n}, got {n}"
            )
        return self.builder(n, inputs)


def _domain(inputs: Sequence[Any]) -> List[Any]:
    """Input values deduplicated in first-appearance order (encoder domain)."""
    seen: List[Any] = []
    for value in inputs:
        if value not in seen:
            seen.append(value)
    return seen


def conciliator_budget(conciliator: Conciliator) -> Tuple[int, bool]:
    """Per-process step budget for a conciliator, and whether it is exact.

    Algorithm 3 (:class:`CILEmbeddedConciliator`) has no ``step_bound``
    method, but its individual step count *is* bounded: each main-loop
    iteration either returns or advances the inner conciliator by one
    operation, so the loop costs at most ``2 * inner + 3`` charged steps
    (one proposal read per iteration, one inner step, plus a final write),
    and the combine stage adds one write, one adopt-commit invocation, and
    one read.
    """
    if isinstance(conciliator, CILEmbeddedConciliator):
        inner = conciliator.inner.step_bound()
        combine = conciliator.combine_ac.step_bound() + 2
        return 2 * inner + 3 + combine, True
    return conciliator.step_bound(), True


def _conciliator_stack(
    make: Callable[[int], Conciliator]
) -> Callable[[int, Sequence[Any]], BuiltStack]:
    def build(n: int, inputs: Sequence[Any]) -> BuiltStack:
        conciliator = make(n)
        budget, exact = conciliator_budget(conciliator)
        return BuiltStack(
            [conciliator.program] * n, budget, exact,
            conciliator=conciliator,
        )

    return build


def _adopt_commit_stack(
    make: Callable[[int, Sequence[Any]], AdoptCommitObject]
) -> Callable[[int, Sequence[Any]], BuiltStack]:
    def build(n: int, inputs: Sequence[Any]) -> BuiltStack:
        ac = make(n, inputs)

        def program(ctx):
            result = yield from ac.invoke(ctx, ctx.input_value)
            return result

        return BuiltStack([program] * n, ac.step_bound(), True)

    return build


def _consensus_stack(
    make: Callable[[int, Sequence[Any]], ConsensusProtocol]
) -> Callable[[int, Sequence[Any]], BuiltStack]:
    def build(n: int, inputs: Sequence[Any]) -> BuiltStack:
        protocol = make(n, inputs)
        conciliator, adopt_commit = protocol.phase(0)
        per_phase = conciliator_budget(conciliator)[0] + adopt_commit.step_bound()
        return BuiltStack(
            [protocol.program] * n, GEOMETRIC_PHASES * per_phase, False
        )

    return build


STACKS: Dict[str, StackSpec] = {}


def register_stack(spec: StackSpec, *, overwrite: bool = False) -> StackSpec:
    """Add a stack to the registry (tests use this to plant custom bugs)."""
    if spec.name in STACKS and not overwrite:
        raise ConfigurationError(f"stack {spec.name!r} already registered")
    STACKS[spec.name] = spec
    return spec


def get_stack(name: str) -> StackSpec:
    """Look up a stack by name."""
    try:
        return STACKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown stack {name!r}; choose from {sorted(STACKS)}"
        ) from None


def stack_names(
    *, include_planted: bool = False, include_ladder: bool = False
) -> List[str]:
    """Registered stack names, honest-only by default, in a stable order.

    Ladder stacks (weakened register models / intermediate adversaries)
    are excluded by default for the same reason planted stacks are: the
    fuzzer's seeded stack draw samples this list, so growing it would
    shift every existing campaign and invalidate the committed corpus.
    """
    return [
        name
        for name, spec in STACKS.items()
        if (include_planted or not spec.planted)
        and (include_ladder or not spec.ladder)
    ]


def ladder_stack_names() -> List[str]:
    """Names of every registered model-ladder stack, in a stable order."""
    return [name for name, spec in STACKS.items() if spec.ladder]


# ----- the honest registry --------------------------------------------------

register_stack(StackSpec(
    "snapshot", CONCILIATOR,
    _conciliator_stack(lambda n: SnapshotConciliator(n)),
))
register_stack(StackSpec(
    "snapshot-maxreg", CONCILIATOR,
    _conciliator_stack(lambda n: SnapshotConciliator(n, use_max_registers=True)),
))
register_stack(StackSpec(
    "indirect-snapshot", CONCILIATOR,
    _conciliator_stack(lambda n: IndirectSnapshotConciliator(n)),
))
register_stack(StackSpec(
    "emulated-snapshot", CONCILIATOR,
    _conciliator_stack(lambda n: EmulatedSnapshotConciliator(n)),
))
register_stack(StackSpec(
    "sifting", CONCILIATOR,
    _conciliator_stack(lambda n: SiftingConciliator(n)),
))
register_stack(StackSpec(
    "sifting-anonymous", CONCILIATOR,
    _conciliator_stack(lambda n: SiftingConciliator(n, anonymous=True)),
))
register_stack(StackSpec(
    "cil-embedded", CONCILIATOR,
    _conciliator_stack(lambda n: CILEmbeddedConciliator(n)),
))
register_stack(StackSpec(
    "doubling-cil", CONCILIATOR,
    _conciliator_stack(lambda n: DoublingCILConciliator(n)),
))
register_stack(StackSpec(
    "naive", CONCILIATOR,
    _conciliator_stack(lambda n: NaiveConciliator(n)),
))
register_stack(StackSpec(
    "chained-sift-snap", CONCILIATOR,
    _conciliator_stack(lambda n: ChainedConciliator(
        [
            SiftingConciliator(n, name="chained.sift"),
            SnapshotConciliator(n, name="chained.snap"),
        ],
        name="chained-sift-snap",
    )),
))

register_stack(StackSpec(
    "snapshot-ac", ADOPT_COMMIT,
    _adopt_commit_stack(lambda n, inputs: SnapshotAdoptCommit(n)),
))
register_stack(StackSpec(
    "collect-ac", ADOPT_COMMIT,
    _adopt_commit_stack(lambda n, inputs: CollectAdoptCommit(n)),
))
register_stack(StackSpec(
    "flag-ac", ADOPT_COMMIT,
    _adopt_commit_stack(
        lambda n, inputs: FlagAdoptCommit(n, DomainEncoder(_domain(inputs)))
    ),
))
register_stack(StackSpec(
    "binary-ac", ADOPT_COMMIT,
    _adopt_commit_stack(lambda n, inputs: BinaryAdoptCommit(n)),
    workloads=("binary", "unanimous"),
))

register_stack(StackSpec(
    "snapshot-consensus", CONSENSUS,
    _consensus_stack(lambda n, inputs: snapshot_consensus(n)),
))
register_stack(StackSpec(
    "register-consensus", CONSENSUS,
    _consensus_stack(lambda n, inputs: register_consensus(n, _domain(inputs))),
))
register_stack(StackSpec(
    "cil-register-consensus", CONSENSUS,
    _consensus_stack(
        lambda n, inputs: register_consensus(
            n, _domain(inputs), linear_total_work=True
        )
    ),
))


# ----- the model ladder -------------------------------------------------------
#
# Every conciliator crossed with {regular, safe} register semantics and
# {late-δ, noisy-σ} adversaries: the robustness envelope the probe report
# and the nightly weakened-model soak sweep.  Ladder stacks reuse the base
# stack's builder/budget verbatim — only the model the scenario runs under
# changes — and are excluded from the default draw (see ``ladder=True``).

#: Conciliator stacks the ladder crosses (the honest conciliators above).
_LADDER_CONCILIATORS = (
    "snapshot",
    "snapshot-maxreg",
    "indirect-snapshot",
    "emulated-snapshot",
    "sifting",
    "sifting-anonymous",
    "cil-embedded",
    "doubling-cil",
    "naive",
    "chained-sift-snap",
)

#: The ladder's register-model axis (atomic is the baseline, not a rung).
_LADDER_MODELS = (
    RegisterModel("regular"),
    RegisterModel("safe"),
)

#: The ladder's adversary axis.  ``pending-reads`` is the inner strategy
#: throughout: it is the documented Algorithm 2 killer, so the late/noisy
#: wrappers measure how much *delayed* or *noise-diluted* access to that
#: power still costs (δ and σ here match the probe report's defaults).
_LADDER_ADVERSARIES = (
    AdversarySpec("late", inner="pending-reads", delay=1),
    AdversarySpec("noisy", inner="pending-reads", noise=0.8),
)

for _base in _LADDER_CONCILIATORS:
    _spec = STACKS[_base]
    for _model in _LADDER_MODELS:
        for _adversary in _LADDER_ADVERSARIES:
            register_stack(StackSpec(
                f"{_base}+{_model.kind}+{_adversary.kind}",
                _spec.kind,
                _spec.builder,
                min_n=_spec.min_n,
                workloads=_spec.workloads,
                register_model=_model,
                adversary=_adversary,
                ladder=True,
            ))


# ----- service chaos stacks --------------------------------------------------
#
# The service layer (repro.service) is chaos-tested the same declarative
# way the simulator is fuzzed: a named, committed plan of faults drawn
# from the service vocabulary in repro.runtime.faults.  These live in
# their OWN registry — not STACKS — because the fuzzer's seeded stack
# draw indexes into stack_names(), and inserting service entries there
# would silently shift every committed corpus scenario onto a different
# protocol.  ``repro loadtest --chaos NAME`` resolves names here.

#: Service chaos registry (name -> ServiceFaultPlan).
SERVICE_CHAOS_STACKS: Dict[str, "ServiceFaultPlan"] = {}


def register_service_chaos(
    name: str, plan: "ServiceFaultPlan", *, overwrite: bool = False
) -> "ServiceFaultPlan":
    """Register a named service chaos plan for the loadgen.

    Mirrors :func:`register_stack`: duplicate names are refused unless
    ``overwrite=True``, so experiment configs can rely on a name meaning
    one plan.
    """
    if not overwrite and name in SERVICE_CHAOS_STACKS:
        raise ConfigurationError(
            f"service chaos stack {name!r} is already registered; pass "
            f"overwrite=True to replace it"
        )
    SERVICE_CHAOS_STACKS[name] = plan
    return plan


def get_service_chaos(name: str) -> "ServiceFaultPlan":
    """Look up a registered service chaos plan by name."""
    try:
        return SERVICE_CHAOS_STACKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown service chaos stack {name!r}; choose from "
            f"{tuple(sorted(SERVICE_CHAOS_STACKS))}"
        ) from None


def service_chaos_names() -> Tuple[str, ...]:
    """Registered service chaos stack names, sorted."""
    return tuple(sorted(SERVICE_CHAOS_STACKS))


from repro.runtime.faults import (  # noqa: E402  (registry block order)
    ResponseDelayFault,
    ServiceFaultPlan,
    ShardBlackoutFault,
    WorkerKillFault,
)

# The stock plan behind the committed SLO baseline, timed against the
# ``burst`` arrival profile (first burst occupies [0, 1.5)):
# - a shard-0 blackout late in the burst (after sustained overload has
#   already engaged degraded mode) trips its breaker within milliseconds
#   (four instant failures), sheds with breaker-open until the cooldown,
#   then recovers through half-open probes — the full
#   open/half-open/close cycle the acceptance gate checks;
# - three worker kills on shard 1 exercise the retry/backoff path
#   without tripping that breaker (threshold 4);
# - a response-delay window on shard 1 stretches tail latency while the
#   service is already degraded, so slow-but-successful attempts appear
#   in p99.
register_service_chaos("baseline", ServiceFaultPlan(
    worker_kills=(WorkerKillFault(shard=1, at=2.0, count=3),),
    response_delays=(
        ResponseDelayFault(shard=1, start=1.8, duration=0.4, delay=0.3),
    ),
    blackouts=(ShardBlackoutFault(shard=0, start=1.2, duration=0.5),),
))

# A gentler plan for the steady profile: one kill burst and one short
# brownout, no breaker trips expected — useful as a chaos smoke test
# that must NOT change completion counts.
register_service_chaos("brownout", ServiceFaultPlan(
    worker_kills=(WorkerKillFault(shard=0, at=1.0, count=2),),
    response_delays=(
        ResponseDelayFault(shard=1, start=2.0, duration=0.5, delay=0.1),
    ),
))
