"""Deliberately buggy stacks that calibrate the fuzzer's oracles.

A fuzzer that has never caught anything proves nothing.  Each class here
sabotages one protocol with one classic bug — fabricating an output value,
spinning forever, skipping the adopt-commit's confirming conflict pass —
chosen so that exactly one oracle family (validity, wait-freedom/termination,
coherence) is responsible for catching it.  The integration suite runs a
campaign restricted to these stacks and asserts each bug is found *and*
shrinks to a minimal corpus reproducer.

Planted stacks are registered with ``planted=True`` so honest campaigns
never draw them; they must be opted into by name.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.adoptcommit.base import ADOPT, COMMIT, AdoptCommitResult
from repro.adoptcommit.encoders import DomainEncoder
from repro.adoptcommit.flag_ac import FlagAdoptCommit
from repro.core.persona import Persona
from repro.core.sifting_conciliator import SiftingConciliator
from repro.fuzz.stacks import (
    ADOPT_COMMIT,
    CONCILIATOR,
    CONSENSUS,
    BuiltStack,
    StackSpec,
    _adopt_commit_stack,
    _domain,
    register_stack,
)
from repro.memory.register import AtomicRegister
from repro.runtime.operations import Operation, Read, Write
from repro.runtime.process import ProcessContext

__all__ = [
    "CorruptingConciliator",
    "LoopingConciliator",
    "EagerCommitAdoptCommit",
    "PLANTED_STACKS",
]

#: The fabricated value the validity bug emits; never a legal input.
CORRUPT_VALUE = "planted-corrupt"


class CorruptingConciliator(SiftingConciliator):
    """Validity bug: sometimes returns a value nobody proposed.

    Each process flips a private coin after the honest protocol finishes
    and, on heads, replaces the surviving persona's value with a fabricated
    constant.  The validity oracle must flag it; nothing else should.
    """

    def persona_program(
        self, ctx: ProcessContext, input_value: Any
    ) -> Generator[Operation, Any, Persona]:
        persona = yield from super().persona_program(ctx, input_value)
        if ctx.rng.random() < 0.5:
            return Persona(
                value=CORRUPT_VALUE, origin=persona.origin, coin=persona.coin
            )
        return persona


class LoopingConciliator(SiftingConciliator):
    """Wait-freedom bug: process 0 re-reads one register forever.

    The honest path costs ``rounds`` steps, but pid 0 never leaves its spin
    loop, so the wait-freedom watchdog fires as soon as its step budget is
    exhausted and the run eventually hits the step limit (a termination
    violation) under infinite schedules.
    """

    def __init__(self, n: int, name: str = "looping-conciliator"):
        super().__init__(n, name=name)
        self._trap = AtomicRegister(f"{name}.trap")

    def persona_program(
        self, ctx: ProcessContext, input_value: Any
    ) -> Generator[Operation, Any, Persona]:
        if ctx.pid == 0:
            while True:
                yield Read(self._trap)
        persona = yield from super().persona_program(ctx, input_value)
        return persona


class EagerCommitAdoptCommit(FlagAdoptCommit):
    """Coherence bug: commits without the confirming second conflict pass.

    The classic TOCTTOU race: two processes can both observe a clean first
    pass, both write the proposal register, and both commit different
    values.  Only some interleavings expose it, which is exactly what a
    fuzzer sweeping random schedules is for.
    """

    def invoke(
        self, ctx: ProcessContext, value: Any
    ) -> Generator[Operation, Any, AdoptCommitResult]:
        digits = self.encoder.encode(value)
        for position, digit in enumerate(digits):
            yield Write(self._flags[position][digit], True)
        conflict = yield from self._conflict_pass(digits)
        if conflict:
            proposed = yield Read(self._proposal)
            if proposed is not None:
                return AdoptCommitResult(ADOPT, proposed)
            return AdoptCommitResult(ADOPT, value)
        yield Write(self._proposal, value)
        # BUG: the confirming second pass is missing — commit immediately.
        return AdoptCommitResult(COMMIT, value)


def _looping_stack(n: int, inputs: Any) -> BuiltStack:
    conciliator = LoopingConciliator(n)
    # A deliberately tight budget: the honest path finishes well inside it,
    # so any overrun is the planted spin loop.
    return BuiltStack(
        [conciliator.program] * n, conciliator.step_bound() + 4, True,
        conciliator=conciliator,
    )


def _corrupting_stack(n: int, inputs: Any) -> BuiltStack:
    conciliator = CorruptingConciliator(n)
    return BuiltStack(
        [conciliator.program] * n, conciliator.step_bound(), True,
        conciliator=conciliator,
    )


def _agreement_stack(n: int, inputs: Any) -> BuiltStack:
    # Agreement bug: a "consensus" that decides the bare conciliator output,
    # skipping the adopt-commit confirmation entirely.  A conciliator only
    # promises *probabilistic* agreement, so schedules where two personae
    # survive every sifting round decide two values — exactly what the
    # agreement oracle (applied to CONSENSUS stacks) must flag.
    conciliator = SiftingConciliator(n, name="planted-agreement")
    return BuiltStack(
        [conciliator.program] * n, conciliator.step_bound(), True,
        conciliator=conciliator,
    )


PLANTED_STACKS = (
    register_stack(StackSpec(
        "planted-validity", CONCILIATOR, _corrupting_stack, planted=True,
    )),
    register_stack(StackSpec(
        "planted-termination", CONCILIATOR, _looping_stack, planted=True,
    )),
    register_stack(StackSpec(
        "planted-coherence", ADOPT_COMMIT,
        _adopt_commit_stack(
            lambda n, inputs: EagerCommitAdoptCommit(
                n, DomainEncoder(_domain(inputs))
            )
        ),
        planted=True,
    )),
    register_stack(StackSpec(
        "planted-agreement", CONSENSUS, _agreement_stack, planted=True,
    )),
)
