"""Run explainability: re-execute a scenario under a full trace and
distill the analytics that answer "why did this happen?".

This module is the glue between the fuzz layer and the PR 5 trace
analytics (:mod:`repro.obs.analyze`): it replays a scenario or corpus
case with an unsampled :class:`~repro.obs.tracing.TraceRecorder`
attached, annotates the conciliator's round bookkeeping into the trace,
and packages the resulting :class:`~repro.obs.analyze.DisagreementReport`
and :class:`~repro.obs.analyze.AttributionReport` (when the stack maps to
a theory prediction) into one versioned :class:`CaseExplanation`.

It lives here — above both ``repro.obs`` and ``repro.analysis`` — because
``repro.analysis`` imports ``repro.obs.metrics`` (the experiments layer
collects metrics), so ``repro.obs.analyze`` must not import
``repro.analysis.theory`` back.  Predictions flow in as plain dicts; this
module is the one place the two layers meet.

Explanations are deterministic: the replay is a pure function of the
scenario, the analyses are pure functions of the trace, and the JSON is
canonical — so explanation files are byte-identical regardless of how
many workers the producing campaign used.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.analysis.theory import predicted_attribution
from repro.core.cil_embedded import INNER_EPSILON
from repro.errors import ConfigurationError
from repro.fuzz.corpus import CorpusCase
from repro.fuzz.scenario import Scenario, run_scenario
from repro.obs.analyze import (
    ANALYSIS_SCHEMA_VERSION,
    AttributionReport,
    DisagreementReport,
    attribute_steps,
    explain_disagreement,
)
from repro.obs.events import (
    TraceEventRecord,
    event_from_json,
    event_to_json,
)
from repro.obs.tracing import TraceRecorder

__all__ = [
    "EXPLAIN_SCHEMA_VERSION",
    "STACK_ALGORITHMS",
    "CaseExplanation",
    "explain_case",
    "explain_scenario",
]

#: Version stamped on every explanation file; bump on incompatible change.
EXPLAIN_SCHEMA_VERSION = 1

_EXPLANATION_KIND = "repro-case-explanation"

#: Stack names with a closed-form theory prediction, mapped to the
#: ``(algorithm, epsilon)`` arguments of
#: :func:`repro.analysis.theory.predicted_attribution`.  Stacks whose step
#: structure has no closed form (chained compositions, baselines, full
#: consensus loops) get lineage/timeline analysis but no attribution.
STACK_ALGORITHMS: Dict[str, Tuple[str, float]] = {
    "snapshot": ("snapshot", 0.5),
    "snapshot-maxreg": ("snapshot", 0.5),
    "sifting": ("sifting", 0.5),
    "sifting-anonymous": ("sifting", 0.5),
    "cil-embedded": ("cil-embedded", INNER_EPSILON),
    "planted-agreement": ("sifting", 0.5),
}


@dataclass(frozen=True)
class CaseExplanation:
    """Everything the analytics learned from one traced replay."""

    scenario: Scenario
    status: str
    oracles: Tuple[str, ...]
    events: Tuple[TraceEventRecord, ...]
    disagreement: Optional[DisagreementReport]
    attribution: Optional[AttributionReport]
    note: str = ""
    #: The recorder's retention counters (``TraceRecorder.metadata()``):
    #: recorded_total / retained / steps_observed / ring_dropped /
    #: pid_events_dropped.  ``None`` only for explanations written before
    #: the counters existed; fresh replays always carry them, and an
    #: unsampled, uncapped replay has both drop counters at zero — the
    #: "this trace is complete" receipt.
    trace_counters: Optional[Dict[str, int]] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "v": EXPLAIN_SCHEMA_VERSION,
            "kind": _EXPLANATION_KIND,
            "analysis_version": ANALYSIS_SCHEMA_VERSION,
            "scenario": self.scenario.to_json(),
            "status": self.status,
            "oracles": list(self.oracles),
            "event_count": len(self.events),
            "events": [event_to_json(event) for event in self.events],
            "disagreement": (
                None if self.disagreement is None
                else self.disagreement.to_json()
            ),
            "attribution": (
                None if self.attribution is None
                else self.attribution.to_json()
            ),
            "note": self.note,
            "trace_counters": (
                None if self.trace_counters is None
                else dict(self.trace_counters)
            ),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "CaseExplanation":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"explanation must be a JSON object, got {type(data).__name__}"
            )
        if data.get("v") != EXPLAIN_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported explanation version {data.get('v')!r}; this "
                f"build reads version {EXPLAIN_SCHEMA_VERSION}"
            )
        if data.get("kind") != _EXPLANATION_KIND:
            raise ConfigurationError(
                f"not a case explanation: kind={data.get('kind')!r}"
            )
        disagreement = data.get("disagreement")
        attribution = data.get("attribution")
        return cls(
            scenario=Scenario.from_json(data["scenario"]),
            status=str(data["status"]),
            oracles=tuple(str(name) for name in data.get("oracles", ())),
            events=tuple(
                event_from_json(event) for event in data.get("events", ())
            ),
            disagreement=(
                None if disagreement is None
                else DisagreementReport.from_json(disagreement)
            ),
            attribution=(
                None if attribution is None
                else AttributionReport.from_json(attribution)
            ),
            note=str(data.get("note", "")),
            trace_counters=(
                None if data.get("trace_counters") is None
                else {
                    str(key): int(value)
                    for key, value in data["trace_counters"].items()
                }
            ),
        )

    def canonical_bytes(self) -> bytes:
        """Byte-stable rendering (sorted keys, 2-space indent, trailing
        newline), matching the corpus-case convention."""
        return (
            json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n"
        ).encode("utf-8")

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.canonical_bytes())
        return path

    def render(self) -> str:
        """Human-readable triage summary for terminal output."""
        scenario = self.scenario
        lines = [
            f"explanation: stack={scenario.stack} n={scenario.n} "
            f"workload={scenario.workload} seed={scenario.seed}",
            f"  status: {self.status}"
            + (f"; oracles fired: {', '.join(self.oracles)}"
               if self.oracles else ""),
            f"  trace: {len(self.events)} event(s)"
            + (
                f" (ring_dropped={self.trace_counters['ring_dropped']}, "
                f"pid_events_dropped="
                f"{self.trace_counters['pid_events_dropped']})"
                if self.trace_counters is not None else ""
            ),
        ]
        if self.disagreement is not None:
            lines.append("")
            lines.append(self.disagreement.render())
        if self.attribution is not None:
            lines.append("")
            lines.append(self.attribution.render())
        if self.disagreement is None and self.attribution is None:
            lines.append(
                "  (no persona bookkeeping and no theory prediction for "
                "this stack: timeline-only explanation)"
            )
        if self.note:
            lines.append(f"  note: {self.note}")
        return "\n".join(lines)


def explain_scenario(
    scenario: Scenario,
    *,
    wall_clock_seconds: Optional[float] = None,
    note: str = "",
) -> CaseExplanation:
    """Replay ``scenario`` under a full (unsampled) trace and analyze it.

    The replay re-runs the scenario exactly as the fuzzer did — same
    oracles, same classification — with a :class:`TraceRecorder` attached,
    then derives a disagreement report (when the stack's conciliator
    recorded round bookkeeping) and an attribution report (when the stack
    maps to a theory prediction via :data:`STACK_ALGORITHMS`).
    """
    recorder = TraceRecorder(capacity=None, sample_every=1,
                             include_values=True)
    outcome = run_scenario(
        scenario, wall_clock_seconds=wall_clock_seconds, trace=recorder,
    )
    events = tuple(recorder.events)

    disagreement: Optional[DisagreementReport] = None
    if any(event.kind == "persona-adoption" for event in events):
        disagreement = explain_disagreement(
            events, note=f"stack={scenario.stack}",
        )

    attribution: Optional[AttributionReport] = None
    mapping = STACK_ALGORITHMS.get(scenario.stack)
    if mapping is not None:
        algorithm, epsilon = mapping
        predicted = predicted_attribution(algorithm, scenario.n, epsilon)
        attribution = attribute_steps(events, predicted)

    return CaseExplanation(
        scenario=scenario,
        status=outcome.status,
        oracles=outcome.oracle_names,
        events=events,
        disagreement=disagreement,
        attribution=attribution,
        note=note,
        trace_counters=recorder.metadata(),
    )


def explain_case(
    case: CorpusCase,
    *,
    wall_clock_seconds: Optional[float] = None,
) -> CaseExplanation:
    """Explain one corpus reproducer, noting its expected oracles."""
    expected = ", ".join(case.oracles)
    parts: List[str] = [f"expected oracles: {expected}"]
    if case.note:
        parts.append(case.note)
    return explain_scenario(
        case.scenario,
        wall_clock_seconds=wall_clock_seconds,
        note="; ".join(parts),
    )
