"""The regression corpus: versioned, self-contained JSON reproducers.

Every oracle violation a campaign finds is minimized and serialized into a
corpus directory (``tests/corpus/`` in this repository).  A corpus case
carries the complete scenario plus the oracle names it is expected to fire,
so replaying needs nothing but this package: ``replay_case`` rebuilds the
scenario, runs it, and checks the same oracles still trip.  Case files are
named by the content hash of their canonical bytes, which makes corpus
writes idempotent and lets campaigns deduplicate reproducers across trials
and machines.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.fuzz.scenario import Scenario, ScenarioOutcome, run_scenario

__all__ = [
    "CORPUS_VERSION",
    "CorpusCase",
    "ReplayReport",
    "case_filename",
    "load_case",
    "load_corpus",
    "replay_case",
    "save_case",
]

CORPUS_VERSION = 1
_CASE_KIND = "repro-fuzz-corpus-case"


@dataclass(frozen=True)
class CorpusCase:
    """One minimized reproducer.

    ``oracles`` is the sorted tuple of oracle names the scenario fired when
    it was captured (hard violations and, for out-of-model cases,
    degradations).  ``note`` is free-form provenance for humans triaging
    the corpus — which campaign seed and trial produced it.
    """

    scenario: Scenario
    oracles: Tuple[str, ...]
    note: str = ""

    def __post_init__(self) -> None:
        if not self.oracles:
            raise ConfigurationError(
                "a corpus case must name at least one expected oracle"
            )
        object.__setattr__(self, "oracles", tuple(sorted(self.oracles)))

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": CORPUS_VERSION,
            "kind": _CASE_KIND,
            "scenario": self.scenario.to_json(),
            "oracles": list(self.oracles),
            "note": self.note,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "CorpusCase":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"corpus case JSON must be an object, got {type(data).__name__}"
            )
        if data.get("version") != CORPUS_VERSION:
            raise ConfigurationError(
                f"unsupported corpus case version {data.get('version')!r}; "
                f"this build reads version {CORPUS_VERSION}"
            )
        if data.get("kind") != _CASE_KIND:
            raise ConfigurationError(
                f"not a corpus case: kind={data.get('kind')!r}"
            )
        return cls(
            scenario=Scenario.from_json(data["scenario"]),
            oracles=tuple(str(name) for name in data.get("oracles", ())),
            note=str(data.get("note", "")),
        )

    def canonical_bytes(self) -> bytes:
        """Byte-stable rendering: sorted keys, 2-space indent, one trailing
        newline — stable across Python versions and diff-friendly in git."""
        return (
            json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n"
        ).encode("utf-8")

    def identity_bytes(self) -> bytes:
        """What makes two cases "the same bug": scenario + oracles.

        The free-form ``note`` (campaign provenance) is excluded so that
        the same minimized reproducer found by different campaigns
        deduplicates to one corpus file.
        """
        identity = {
            "scenario": self.scenario.to_json(),
            "oracles": list(self.oracles),
        }
        return json.dumps(identity, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")


def case_filename(case: CorpusCase) -> str:
    """Content-addressed filename: cases for the same bug collide on purpose."""
    digest = hashlib.sha256(case.identity_bytes()).hexdigest()[:16]
    return f"case-{digest}.json"


def save_case(case: CorpusCase, corpus_dir: Path) -> Path:
    """Write ``case`` into ``corpus_dir`` (idempotent); returns the path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / case_filename(case)
    if not path.exists():
        path.write_bytes(case.canonical_bytes())
    return path


def load_case(path: Path) -> CorpusCase:
    """Parse one corpus file (unknown versions are rejected)."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"corpus file {path} is not JSON: {error}")
    return CorpusCase.from_json(data)


def load_corpus(corpus_dir: Path) -> List[Tuple[Path, CorpusCase]]:
    """All cases in a corpus directory, sorted by filename for determinism."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    return [
        (path, load_case(path))
        for path in sorted(corpus_dir.glob("case-*.json"))
        # --explain writes case-<hash>.explain.json next to each case;
        # those are analyses of cases, not cases.
        if not path.name.endswith(".explain.json")
    ]


@dataclass(frozen=True)
class ReplayReport:
    """The verdict of replaying one corpus case."""

    case: CorpusCase
    outcome: ScenarioOutcome
    reproduced: bool
    #: Expected oracles that did fire on replay.
    matched: Tuple[str, ...]
    #: Expected oracles that did not fire on replay.
    missing: Tuple[str, ...]


def replay_case(
    case: CorpusCase, *, wall_clock_seconds: Optional[float] = None
) -> ReplayReport:
    """Re-run a corpus case and check its expected oracles still fire.

    A case reproduces if at least one expected oracle fires again (hard or
    degraded): shrinking targets "same oracle", not "same message", so the
    oracle name is the stable contract.
    """
    outcome = run_scenario(case.scenario, wall_clock_seconds=wall_clock_seconds)
    fired = set(outcome.oracle_names)
    matched = tuple(sorted(set(case.oracles) & fired))
    missing = tuple(sorted(set(case.oracles) - fired))
    return ReplayReport(
        case=case,
        outcome=outcome,
        reproduced=bool(matched),
        matched=matched,
        missing=missing,
    )
