"""Fuzz campaigns: many scenarios, budgets, shrinking, and the corpus.

A campaign is a deterministic sweep: trial ``i`` runs the scenario
``generate_scenario(master_seed, i, config)``, so the scenario sequence is
a pure function of ``(master_seed, config)`` regardless of worker count,
chunking, or how far a time budget lets the sweep get.  Trials fan out
through the parallel engine (:func:`~repro.runtime.parallel.run_indexed_trials`),
inherit its crash-safe checkpoint/resume journal for fixed-size sweeps,
and return plain-JSON outcomes so results cross process boundaries.

Violations are post-processed **serially, in trial order** by the
coordinator: each is shrunk (deterministically) to a minimal reproducer and
saved into the corpus under a content-addressed filename — which is why the
same seed and budget always produce byte-identical corpus files.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.errors import CheckpointError, ConfigurationError
from repro.fuzz.corpus import CorpusCase, save_case
from repro.fuzz.scenario import (
    FuzzConfig,
    Scenario,
    ScenarioOutcome,
    ViolationRecord,
    generate_scenario,
    run_scenario,
)
from repro.fuzz.shrink import shrink_scenario
from repro.obs.metrics import MetricsRegistry, get_default_registry
from repro.runtime.budget import Deadline
from repro.runtime.parallel import resolve_workers, run_indexed_trials

__all__ = ["CampaignReport", "Finding", "run_fuzz_campaign"]

#: Per-trial wall-clock safety valve (seconds) if the caller sets none.
DEFAULT_TRIAL_WALL_CLOCK = 30.0


@dataclass(frozen=True)
class Finding:
    """One violating (or degraded) trial, after shrinking."""

    trial: int
    status: str
    oracles: tuple
    scenario: Scenario
    shrunk: Scenario
    corpus_file: Optional[str]
    #: Path of the ``.explain.json`` written for this finding, when the
    #: campaign ran with ``explain_dir=``.
    explanation_file: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "trial": self.trial,
            "status": self.status,
            "oracles": list(self.oracles),
            "scenario": self.scenario.to_json(),
            "shrunk": self.shrunk.to_json(),
            "corpus_file": self.corpus_file,
            "explanation_file": self.explanation_file,
        }


@dataclass
class CampaignReport:
    """Everything a campaign did, JSON-serializable for the CLI."""

    master_seed: int
    config: FuzzConfig
    trials: int
    statuses: Dict[str, int] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)
    corpus_files: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    stopped_by: str = "trials"
    metrics: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """True when no hard oracle violation was found."""
        return not any(f.status == "violation" for f in self.findings)

    def to_json(self) -> Dict[str, Any]:
        return {
            "master_seed": self.master_seed,
            "config": self.config.to_json(),
            "trials": self.trials,
            "statuses": dict(sorted(self.statuses.items())),
            "findings": [finding.to_json() for finding in self.findings],
            "corpus_files": list(self.corpus_files),
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "stopped_by": self.stopped_by,
            "ok": self.ok,
            "metrics": self.metrics,
        }


def campaign_run_key(
    master_seed: int,
    trials: int,
    config: FuzzConfig,
    *,
    collect_metrics: bool = False,
) -> str:
    """Checkpoint journal key: the campaign's full deterministic identity.

    Metrics collection changes what each journaled outcome carries, so a
    metrics-enabled campaign gets a distinct key rather than silently
    resuming a journal whose outcomes have no snapshots (and vice versa).
    The flag is only written when set, so pre-existing journals keep
    matching their original key.
    """
    identity: Dict[str, Any] = {
        "kind": "repro-fuzz-campaign",
        "master_seed": master_seed,
        "trials": trials,
        "config": config.to_json(),
    }
    if collect_metrics:
        identity["metrics"] = True
    return json.dumps(identity, sort_keys=True, separators=(",", ":"))


def _run_trial(
    master_seed: int,
    index: int,
    config: FuzzConfig,
    wall_clock: Optional[float],
    collect_metrics: bool = False,
) -> Dict[str, Any]:
    """Worker body: generate, run, classify one trial; returns plain JSON."""
    scenario = generate_scenario(master_seed, index, config)
    outcome = run_scenario(
        scenario,
        wall_clock_seconds=wall_clock,
        metrics=MetricsRegistry() if collect_metrics else None,
    )
    return outcome.to_json()


def run_fuzz_campaign(
    master_seed: int,
    config: Optional[FuzzConfig] = None,
    *,
    trials: Optional[int] = None,
    time_budget: Optional[float] = None,
    corpus_dir: Optional[Path] = None,
    shrink: bool = True,
    include_degraded_in_corpus: bool = False,
    corpus_per_bug: int = 3,
    trial_wall_clock: Optional[float] = DEFAULT_TRIAL_WALL_CLOCK,
    shrink_max_reproductions: int = 250,
    shrink_deadline: Optional[float] = 60.0,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    collect_metrics: Optional[bool] = None,
    explain_dir: Optional[Path] = None,
    log: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Run one fuzz campaign.

    Exactly one sizing mode applies: ``trials`` fixes the sweep length
    (checkpoint/resume supported), or ``time_budget`` keeps launching
    trial waves until the wall-clock budget runs out (checkpointing is
    rejected there — a journal keyed on an elastic trial count could not
    resume safely).  In both modes trial ``i`` always runs the same
    scenario, so a time-budgeted campaign explores a prefix of the fixed
    sequence.

    ``collect_metrics`` attaches a fresh metrics registry to every trial
    and folds the per-trial snapshots — in trial order, so the aggregate
    is bit-identical across worker counts — into ``report.metrics``; when
    left ``None`` it follows the session default installed by
    :func:`repro.obs.metrics.collecting` (which also receives a copy of
    the aggregate).

    ``explain_dir`` writes a ``<case-stem>.explain.json`` explanation (see
    :mod:`repro.fuzz.explain`) next to each corpus case the campaign
    saves; it requires ``corpus_dir``.  Explanations are produced by the
    serial coordinator pass over deterministic findings, so — like the
    corpus itself — they are byte-identical across worker counts.
    """
    config = config or FuzzConfig()
    config.resolved_stacks()  # fail fast on unknown stack names
    if explain_dir is not None and corpus_dir is None:
        raise ConfigurationError(
            "explain_dir= requires corpus_dir=: explanations are keyed to "
            "saved corpus cases"
        )
    if (trials is None) == (time_budget is None):
        raise ConfigurationError(
            "pass exactly one of trials= or time_budget="
        )
    if trials is not None and trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if checkpoint_path is not None and trials is None:
        raise ConfigurationError(
            "checkpointing needs a fixed trials= count; a time-budget "
            "campaign has no stable trial range to resume"
        )
    # Same ambiguity guard as the analysis sweeps: an existing journal is
    # only consumed when the caller explicitly asked to resume.
    if resume and checkpoint_path is None:
        raise ConfigurationError(
            "resume=True requires checkpoint_path to name the journal"
        )
    if (checkpoint_path is not None and os.path.exists(checkpoint_path)
            and not resume):
        raise CheckpointError(
            f"checkpoint journal {checkpoint_path!r} already exists; pass "
            "resume=True (--resume) to continue it, or remove the file to "
            "start over"
        )
    emit = log or (lambda message: None)
    started = time.monotonic()
    if collect_metrics is None:
        collect_metrics = get_default_registry() is not None

    def task(index: int) -> Dict[str, Any]:
        return _run_trial(
            master_seed, index, config, trial_wall_clock, collect_metrics
        )

    outcomes: List[Dict[str, Any]] = []
    stopped_by = "trials"
    if trials is not None:
        outcomes = run_indexed_trials(
            task,
            trials,
            workers=workers,
            chunk_size=chunk_size,
            checkpoint_path=checkpoint_path,
            run_key=campaign_run_key(
                master_seed, trials, config, collect_metrics=collect_metrics
            ),
        )
    else:
        deadline = Deadline(time_budget)
        wave = max(8, 4 * resolve_workers(workers))
        base = 0
        while not deadline.expired():
            wave_outcomes = run_indexed_trials(
                lambda i: task(base + i),
                wave,
                workers=workers,
                chunk_size=chunk_size,
            )
            outcomes.extend(wave_outcomes)
            base += wave
            emit(f"time budget: {len(outcomes)} trials, "
                 f"{deadline.remaining():.1f}s remaining")
        stopped_by = "time-budget"

    report = CampaignReport(
        master_seed=master_seed,
        config=config,
        trials=len(outcomes),
        stopped_by=stopped_by,
    )
    if collect_metrics:
        # Fold per-trial snapshots in trial order (never completion order),
        # so the campaign aggregate is bit-identical across worker counts.
        aggregate = MetricsRegistry()
        for outcome_json in outcomes:
            snapshot = outcome_json.get("metrics")
            if snapshot is not None:
                aggregate.merge_snapshot(snapshot)
        report.metrics = aggregate.to_json()
        session_registry = get_default_registry()
        if session_registry is not None:
            session_registry.merge_snapshot(report.metrics)
    seen_corpus: set = set()
    # Cap corpus files per distinct bug — keyed on (stack, oracle set) — so
    # one hot bug found in many trials does not flood the corpus with
    # near-identical reproducers.  Every finding is still reported.
    saved_per_bug: Dict[Any, int] = {}
    for index, outcome_json in enumerate(outcomes):
        status = outcome_json["status"]
        report.statuses[status] = report.statuses.get(status, 0) + 1
        wants_corpus = status == "violation" or (
            status == "degraded" and include_degraded_in_corpus
        )
        if not wants_corpus:
            continue
        records = [
            ViolationRecord.from_json(record)
            for record in outcome_json["violations"] + outcome_json["degradations"]
        ]
        oracles = tuple(sorted({record.oracle for record in records}))
        scenario = Scenario.from_json(outcome_json["scenario"])
        shrunk = scenario
        case_oracles = oracles
        if shrink:
            emit(f"trial {index}: {status} ({', '.join(oracles)}); shrinking...")
            shrink_result = shrink_scenario(
                scenario,
                frozenset(oracles),
                max_reproductions=shrink_max_reproductions,
                deadline_seconds=shrink_deadline,
                wall_clock_seconds=trial_wall_clock,
            )
            shrunk = shrink_result.scenario
            # The corpus records what the *minimized* reproducer fires —
            # shrinking only guarantees some target oracle survives, so the
            # original's full oracle set may be an overstatement.
            case_oracles = shrink_result.outcome.oracle_names
        corpus_file: Optional[str] = None
        explanation_file: Optional[str] = None
        bug_key = (scenario.stack, oracles)
        if corpus_dir is not None and saved_per_bug.get(bug_key, 0) < corpus_per_bug:
            saved_per_bug[bug_key] = saved_per_bug.get(bug_key, 0) + 1
            case = CorpusCase(
                scenario=shrunk,
                oracles=case_oracles,
                note=(
                    f"found by fuzz campaign master_seed={master_seed} "
                    f"trial={index} stack={scenario.stack}"
                ),
            )
            path = save_case(case, Path(corpus_dir))
            corpus_file = str(path)
            if corpus_file not in seen_corpus:
                seen_corpus.add(corpus_file)
                report.corpus_files.append(corpus_file)
            if explain_dir is not None:
                # Imported lazily: explain pulls in the analysis layer,
                # which campaigns without explanations never need.
                from repro.fuzz.explain import explain_case

                explanation = explain_case(
                    case, wall_clock_seconds=trial_wall_clock
                )
                explain_path = Path(explain_dir) / (
                    path.stem + ".explain.json"
                )
                explanation.write(explain_path)
                explanation_file = str(explain_path)
                emit(f"trial {index}: explanation -> {explain_path}")
        report.findings.append(Finding(
            trial=index,
            status=status,
            oracles=oracles,
            scenario=scenario,
            shrunk=shrunk,
            corpus_file=corpus_file,
            explanation_file=explanation_file,
        ))
    report.elapsed_seconds = time.monotonic() - started
    return report
