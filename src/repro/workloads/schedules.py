"""Schedule construction for experiment sweeps.

Experiments hold the adversary *family* fixed while sweeping n or drawing
fresh trials; :func:`make_schedule` builds the named family member for a
given n and trial seed, keeping every randomized schedule on its own seed
branch (so schedules stay independent of algorithm coins).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import (
    BlockSchedule,
    CrashSchedule,
    FrontRunnerSchedule,
    RandomSchedule,
    ReversedRoundRobinSchedule,
    RoundRobinSchedule,
    Schedule,
)

__all__ = ["SCHEDULE_FAMILIES", "make_schedule", "schedule_gallery"]

SCHEDULE_FAMILIES = (
    "round-robin",
    "reversed",
    "random",
    "blocks",
    "front-runner",
    "crash-half",
)


def make_schedule(family: str, n: int, seeds: SeedTree) -> Schedule:
    """Build the named adversary for ``n`` processes.

    ``seeds`` should be a trial-specific branch of the run's ``"schedule"``
    subtree so that repeated trials see fresh (but reproducible) adversary
    randomness.
    """
    if family == "round-robin":
        return RoundRobinSchedule(n)
    if family == "reversed":
        return ReversedRoundRobinSchedule(n)
    if family == "random":
        return RandomSchedule(n, seeds.child("random").seed)
    if family == "blocks":
        return BlockSchedule(n, max(2, n // 4), seeds.child("blocks").seed)
    if family == "front-runner":
        return FrontRunnerSchedule(n)
    if family == "crash-half":
        crashes = {pid: 1 for pid in range(n // 2)}
        return CrashSchedule(
            RandomSchedule(n, seeds.child("crash").seed), crashes
        )
    raise ConfigurationError(
        f"unknown schedule family {family!r}; choose from {SCHEDULE_FAMILIES}"
    )


def schedule_gallery(n: int, seeds: SeedTree) -> Dict[str, Schedule]:
    """All families instantiated for ``n`` (crash-half only when n > 1)."""
    families: List[str] = [name for name in SCHEDULE_FAMILIES
                           if name != "crash-half" or n > 1]
    return {name: make_schedule(name, n, seeds.child(name)) for name in families}
