"""Schedule construction for experiment sweeps.

Experiments hold the adversary *family* fixed while sweeping n or drawing
fresh trials; :func:`make_schedule` builds the named family member for a
given n and trial seed, keeping every randomized schedule on its own seed
branch (so schedules stay independent of algorithm coins).

Seeding contract: every randomized family draws its private seed from a
*named child* of the ``seeds`` tree passed in (``seeds.child("permuted")``,
``seeds.child("random")``, ...), and :class:`ScheduleSpec` pins the integer
seed directly.  Two specs with equal ``(family, n, seed)`` therefore
rebuild bit-identical schedules on any host, and a family's seed never
feeds any other family's randomness.  The ``streaming-*`` families consume
their seed through stateless hashing (no ``random.Random`` instance at
all), so the same integer seed can be shared across millions of slots
without per-pass state.

Scale contract: families whose construction or iteration materializes
:math:`O(n)` state (:data:`MATERIALIZED_FAMILIES`) are refused above
:data:`MAX_MATERIALIZED_N` processes with a pointer at the equivalent
``streaming-*`` family, instead of silently allocating gigabytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import (
    BlockSchedule,
    CrashSchedule,
    ExplicitSchedule,
    FrontRunnerSchedule,
    InterleavedLockstepSchedule,
    PermutedRoundRobinSchedule,
    RandomSchedule,
    ReversedRoundRobinSchedule,
    RoundRobinSchedule,
    Schedule,
)
from repro.runtime.streaming import (
    StreamingInterleavedSchedule,
    StreamingPermutedSchedule,
    StreamingRandomSchedule,
    StreamingReversedSchedule,
    StreamingRoundRobinSchedule,
)

__all__ = [
    "SCHEDULE_FAMILIES",
    "LOCKSTEP_FAMILIES",
    "STREAMING_FAMILIES",
    "MATERIALIZED_FAMILIES",
    "MAX_MATERIALIZED_N",
    "ALL_SCHEDULE_FAMILIES",
    "ScheduleSpec",
    "make_schedule",
    "schedule_gallery",
]

SCHEDULE_FAMILIES = (
    "round-robin",
    "reversed",
    "random",
    "blocks",
    "front-runner",
    "crash-half",
)

#: Families whose executions advance all processes in lockstep windows —
#: the schedule class the vectorized backend can batch across trials.
#: Deliberately a *separate* tuple: the fuzzer's scenario generator samples
#: uniformly from ``SCHEDULE_FAMILIES``, so appending there would shift
#: every seeded campaign and invalidate the committed regression corpus.
LOCKSTEP_FAMILIES = ("round-robin", "reversed", "permuted", "interleaved")

#: O(1)-memory pure-function samplers (:mod:`repro.runtime.streaming`).
#: ``streaming-round-robin`` / ``streaming-reversed`` are bit-identical to
#: their materialized namesakes; the seeded three are the same distribution
#: families re-sampled through a Feistel permutation / hash, registered as
#: new names so existing seeded runs keep their exact streams.
STREAMING_FAMILIES = (
    "streaming-round-robin",
    "streaming-reversed",
    "streaming-permuted",
    "streaming-interleaved",
    "streaming-random",
)

#: Families that materialize O(n) state per construction or pass —
#: ``permuted`` reshuffles a pid list, ``interleaved`` a 2n-slot window,
#: ``crash-half`` a crash budget per crashed pid.  Above
#: :data:`MAX_MATERIALIZED_N` they are refused with a streaming hint.
MATERIALIZED_FAMILIES = ("permuted", "interleaved", "crash-half")

#: Hard ceiling (2**20 processes) for :data:`MATERIALIZED_FAMILIES`.
MAX_MATERIALIZED_N = 1 << 20

#: The streaming stand-in suggested when a materialized family is refused.
_STREAMING_HINT = {
    "permuted": "streaming-permuted",
    "interleaved": "streaming-interleaved",
    "crash-half": "streaming-random",
}

#: Everything :func:`make_schedule` understands (the classic gallery plus
#: the lockstep-only families used by the vectorized backend and the
#: streaming samplers for the million-process regime).
ALL_SCHEDULE_FAMILIES = (
    SCHEDULE_FAMILIES + ("permuted", "interleaved") + STREAMING_FAMILIES
)


def _check_materialized_scale(family: str, n: int) -> None:
    if family in MATERIALIZED_FAMILIES and n > MAX_MATERIALIZED_N:
        raise ConfigurationError(
            f"family {family!r} materializes O(n) state and is refused at "
            f"n={n} > {MAX_MATERIALIZED_N} (2**20): use the O(1)-memory "
            f"{_STREAMING_HINT[family]!r} streaming family instead"
        )


def make_schedule(family: str, n: int, seeds: SeedTree) -> Schedule:
    """Build the named adversary for ``n`` processes.

    ``seeds`` should be a trial-specific branch of the run's ``"schedule"``
    subtree so that repeated trials see fresh (but reproducible) adversary
    randomness.
    """
    _check_materialized_scale(family, n)
    if family == "round-robin":
        return RoundRobinSchedule(n)
    if family == "reversed":
        return ReversedRoundRobinSchedule(n)
    if family == "permuted":
        return PermutedRoundRobinSchedule(n, seeds.child("permuted").seed)
    if family == "interleaved":
        return InterleavedLockstepSchedule(n, seeds.child("interleaved").seed)
    if family == "streaming-round-robin":
        return StreamingRoundRobinSchedule(n)
    if family == "streaming-reversed":
        return StreamingReversedSchedule(n)
    if family == "streaming-permuted":
        return StreamingPermutedSchedule(
            n, seeds.child("streaming-permuted").seed
        )
    if family == "streaming-interleaved":
        return StreamingInterleavedSchedule(
            n, seeds.child("streaming-interleaved").seed
        )
    if family == "streaming-random":
        return StreamingRandomSchedule(
            n, seeds.child("streaming-random").seed
        )
    if family == "random":
        return RandomSchedule(n, seeds.child("random").seed)
    if family == "blocks":
        return BlockSchedule(n, max(2, n // 4), seeds.child("blocks").seed)
    if family == "front-runner":
        return FrontRunnerSchedule(n)
    if family == "crash-half":
        crashes = {pid: 1 for pid in range(n // 2)}
        return CrashSchedule(
            RandomSchedule(n, seeds.child("crash").seed), crashes
        )
    raise ConfigurationError(
        f"unknown schedule family {family!r}; choose from "
        f"{ALL_SCHEDULE_FAMILIES}"
    )


@dataclass(frozen=True)
class ScheduleSpec:
    """A serializable, hashable description of one adversary schedule.

    A spec pins everything needed to rebuild the schedule bit-for-bit: the
    family name (one of :data:`ALL_SCHEDULE_FAMILIES`, or ``"explicit"``), the
    process count, the adversary's private seed, and — for explicit
    schedules — the literal slot sequence.  Specs are frozen dataclasses,
    so equality and hashing come for free; that plus the versioned JSON
    round trip is what lets the fuzzer deduplicate scenarios and replay a
    corpus case byte-for-byte.
    """

    family: str
    n: int
    seed: int = 0
    slots: Optional[Tuple[int, ...]] = None

    _JSON_VERSION = 1

    def __post_init__(self) -> None:
        if self.family == "explicit":
            if self.slots is None:
                raise ConfigurationError(
                    "an explicit ScheduleSpec needs a slots tuple"
                )
            object.__setattr__(self, "slots", tuple(self.slots))
            # Validate the slot sequence eagerly (range checks live there).
            ExplicitSchedule(list(self.slots), n=self.n)
        elif self.family in ALL_SCHEDULE_FAMILIES:
            if self.slots is not None:
                raise ConfigurationError(
                    f"family {self.family!r} does not take explicit slots"
                )
        else:
            raise ConfigurationError(
                f"unknown schedule family {self.family!r}; choose from "
                f"{ALL_SCHEDULE_FAMILIES + ('explicit',)}"
            )
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        # Refuse gigabyte-scale materialization at spec-construction time,
        # before any sweep machinery holds a doomed spec.
        _check_materialized_scale(self.family, self.n)

    @property
    def is_finite(self) -> bool:
        """True when the schedule can end before every process finishes.

        Explicit schedules are finite lists, and ``crash-half`` starves the
        crashed half forever; runs under either need ``allow_partial`` and
        cannot support a whole-run termination oracle (per-process step
        budgets still apply).
        """
        return self.family in ("explicit", "crash-half")

    def build(self) -> Schedule:
        """Construct the described schedule."""
        if self.family == "explicit":
            assert self.slots is not None
            return ExplicitSchedule(list(self.slots), n=self.n)
        return make_schedule(self.family, self.n, SeedTree(self.seed))

    def to_json(self) -> Dict[str, Any]:
        """A plain-JSON description that :meth:`from_json` restores exactly."""
        data: Dict[str, Any] = {
            "version": self._JSON_VERSION,
            "family": self.family,
            "n": self.n,
            "seed": self.seed,
        }
        if self.slots is not None:
            data["slots"] = list(self.slots)
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ScheduleSpec":
        """Rebuild a spec from :meth:`to_json` output (versions are pinned)."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"schedule spec JSON must be an object, got {type(data).__name__}"
            )
        if data.get("version") != cls._JSON_VERSION:
            raise ConfigurationError(
                f"unsupported schedule spec version {data.get('version')!r}; "
                f"this build reads version {cls._JSON_VERSION}"
            )
        slots = data.get("slots")
        return cls(
            family=str(data["family"]),
            n=int(data["n"]),
            seed=int(data.get("seed", 0)),
            slots=None if slots is None else tuple(int(s) for s in slots),
        )


def schedule_gallery(n: int, seeds: SeedTree) -> Dict[str, Schedule]:
    """All families instantiated for ``n`` (crash-half only when n > 1)."""
    families: List[str] = [name for name in SCHEDULE_FAMILIES
                           if name != "crash-half" or n > 1]
    return {name: make_schedule(name, n, seeds.child(name)) for name in families}
