"""Schedule construction for experiment sweeps.

Experiments hold the adversary *family* fixed while sweeping n or drawing
fresh trials; :func:`make_schedule` builds the named family member for a
given n and trial seed, keeping every randomized schedule on its own seed
branch (so schedules stay independent of algorithm coins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import (
    BlockSchedule,
    CrashSchedule,
    ExplicitSchedule,
    FrontRunnerSchedule,
    InterleavedLockstepSchedule,
    PermutedRoundRobinSchedule,
    RandomSchedule,
    ReversedRoundRobinSchedule,
    RoundRobinSchedule,
    Schedule,
)

__all__ = [
    "SCHEDULE_FAMILIES",
    "LOCKSTEP_FAMILIES",
    "ALL_SCHEDULE_FAMILIES",
    "ScheduleSpec",
    "make_schedule",
    "schedule_gallery",
]

SCHEDULE_FAMILIES = (
    "round-robin",
    "reversed",
    "random",
    "blocks",
    "front-runner",
    "crash-half",
)

#: Families whose executions advance all processes in lockstep windows —
#: the schedule class the vectorized backend can batch across trials.
#: Deliberately a *separate* tuple: the fuzzer's scenario generator samples
#: uniformly from ``SCHEDULE_FAMILIES``, so appending there would shift
#: every seeded campaign and invalidate the committed regression corpus.
LOCKSTEP_FAMILIES = ("round-robin", "reversed", "permuted", "interleaved")

#: Everything :func:`make_schedule` understands (the classic gallery plus
#: the lockstep-only families used by the vectorized backend).
ALL_SCHEDULE_FAMILIES = SCHEDULE_FAMILIES + ("permuted", "interleaved")


def make_schedule(family: str, n: int, seeds: SeedTree) -> Schedule:
    """Build the named adversary for ``n`` processes.

    ``seeds`` should be a trial-specific branch of the run's ``"schedule"``
    subtree so that repeated trials see fresh (but reproducible) adversary
    randomness.
    """
    if family == "round-robin":
        return RoundRobinSchedule(n)
    if family == "reversed":
        return ReversedRoundRobinSchedule(n)
    if family == "permuted":
        return PermutedRoundRobinSchedule(n, seeds.child("permuted").seed)
    if family == "interleaved":
        return InterleavedLockstepSchedule(n, seeds.child("interleaved").seed)
    if family == "random":
        return RandomSchedule(n, seeds.child("random").seed)
    if family == "blocks":
        return BlockSchedule(n, max(2, n // 4), seeds.child("blocks").seed)
    if family == "front-runner":
        return FrontRunnerSchedule(n)
    if family == "crash-half":
        crashes = {pid: 1 for pid in range(n // 2)}
        return CrashSchedule(
            RandomSchedule(n, seeds.child("crash").seed), crashes
        )
    raise ConfigurationError(
        f"unknown schedule family {family!r}; choose from "
        f"{ALL_SCHEDULE_FAMILIES}"
    )


@dataclass(frozen=True)
class ScheduleSpec:
    """A serializable, hashable description of one adversary schedule.

    A spec pins everything needed to rebuild the schedule bit-for-bit: the
    family name (one of :data:`ALL_SCHEDULE_FAMILIES`, or ``"explicit"``), the
    process count, the adversary's private seed, and — for explicit
    schedules — the literal slot sequence.  Specs are frozen dataclasses,
    so equality and hashing come for free; that plus the versioned JSON
    round trip is what lets the fuzzer deduplicate scenarios and replay a
    corpus case byte-for-byte.
    """

    family: str
    n: int
    seed: int = 0
    slots: Optional[Tuple[int, ...]] = None

    _JSON_VERSION = 1

    def __post_init__(self) -> None:
        if self.family == "explicit":
            if self.slots is None:
                raise ConfigurationError(
                    "an explicit ScheduleSpec needs a slots tuple"
                )
            object.__setattr__(self, "slots", tuple(self.slots))
            # Validate the slot sequence eagerly (range checks live there).
            ExplicitSchedule(list(self.slots), n=self.n)
        elif self.family in ALL_SCHEDULE_FAMILIES:
            if self.slots is not None:
                raise ConfigurationError(
                    f"family {self.family!r} does not take explicit slots"
                )
        else:
            raise ConfigurationError(
                f"unknown schedule family {self.family!r}; choose from "
                f"{ALL_SCHEDULE_FAMILIES + ('explicit',)}"
            )
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")

    @property
    def is_finite(self) -> bool:
        """True when the schedule can end before every process finishes.

        Explicit schedules are finite lists, and ``crash-half`` starves the
        crashed half forever; runs under either need ``allow_partial`` and
        cannot support a whole-run termination oracle (per-process step
        budgets still apply).
        """
        return self.family in ("explicit", "crash-half")

    def build(self) -> Schedule:
        """Construct the described schedule."""
        if self.family == "explicit":
            assert self.slots is not None
            return ExplicitSchedule(list(self.slots), n=self.n)
        return make_schedule(self.family, self.n, SeedTree(self.seed))

    def to_json(self) -> Dict[str, Any]:
        """A plain-JSON description that :meth:`from_json` restores exactly."""
        data: Dict[str, Any] = {
            "version": self._JSON_VERSION,
            "family": self.family,
            "n": self.n,
            "seed": self.seed,
        }
        if self.slots is not None:
            data["slots"] = list(self.slots)
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ScheduleSpec":
        """Rebuild a spec from :meth:`to_json` output (versions are pinned)."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"schedule spec JSON must be an object, got {type(data).__name__}"
            )
        if data.get("version") != cls._JSON_VERSION:
            raise ConfigurationError(
                f"unsupported schedule spec version {data.get('version')!r}; "
                f"this build reads version {cls._JSON_VERSION}"
            )
        slots = data.get("slots")
        return cls(
            family=str(data["family"]),
            n=int(data["n"]),
            seed=int(data.get("seed", 0)),
            slots=None if slots is None else tuple(int(s) for s in slots),
        )


def schedule_gallery(n: int, seeds: SeedTree) -> Dict[str, Schedule]:
    """All families instantiated for ``n`` (crash-half only when n > 1)."""
    families: List[str] = [name for name in SCHEDULE_FAMILIES
                           if name != "crash-half" or n > 1]
    return {name: make_schedule(name, n, seeds.child(name)) for name in families}
