"""Oblivious worst-schedule search.

The conciliator guarantee quantifies over *all* oblivious adversary
strategies, not just the friendly families in
:mod:`repro.workloads.schedules`.  This module hunts for bad ones, with two
interchangeable strategies:

- ``hill-climb`` (the default): a simple mutation hill-climb over explicit
  schedules, evaluating each candidate's agreement rate against fresh
  algorithm coins and keeping the candidate that agrees *least*;
- ``bandit``: a UCB1 bandit whose arms are the randomized schedule
  families of :mod:`repro.workloads.schedules` plus one explicit-mutation
  arm (the hill-climb move).  Family arms materialize a fresh seeded
  schedule per pull, so the bandit allocates its evaluation budget toward
  whichever *kind* of oblivious schedule currently looks most damaging
  instead of spending everything in one mutation neighbourhood.

Either way the search respects obliviousness: a candidate schedule is fixed
before each batch of evaluation runs, and the coins in every run are fresh,
so the adversary "learns" only across runs (which the model permits — the
adversary knows the protocol and may optimize offline) and never within
one.  Experiment E19 shows that even searched-for schedules cannot push the
agreement rate below the paper's floor — which is exactly what a
for-all-strategies theorem predicts.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.conciliator import Conciliator
from repro.errors import ConfigurationError
from repro.runtime.budget import Deadline
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import ExplicitSchedule
from repro.runtime.simulator import run_programs
from repro.workloads.schedules import SCHEDULE_FAMILIES, ScheduleSpec

__all__ = [
    "SEARCH_STRATEGIES",
    "SearchResult",
    "search_worst_schedule",
    "evaluate_schedule",
]

#: Candidate-proposal strategies ``search_worst_schedule`` accepts.
SEARCH_STRATEGIES = ("hill-climb", "bandit")

#: The bandit arm that mutates the incumbent explicit schedule (the
#: hill-climb move); the other arms are the schedule families.
_MUTATION_ARM = "explicit-mutation"


@dataclass
class SearchResult:
    """Outcome of a worst-schedule search."""

    schedule: ExplicitSchedule
    agreement_rate: float
    evaluations: int
    history: List[float]  # best-so-far rate per generation
    #: True when a wall-clock deadline or evaluation cap cut the search
    #: short; the result is still the best candidate found so far.
    stopped_early: bool = False
    elapsed_seconds: float = 0.0
    #: Which strategy proposed candidates ("hill-climb" or "bandit").
    strategy: str = "hill-climb"
    #: Pulls per bandit arm (every hill-climb pull counts as the
    #: explicit-mutation arm, so the field is comparable across modes).
    family_pulls: Dict[str, int] = field(default_factory=dict)


def evaluate_schedule(
    factory: Callable[[], Conciliator],
    inputs: Sequence,
    schedule: ExplicitSchedule,
    *,
    trials: int,
    master_seed: int,
) -> float:
    """Agreement rate of a conciliator under one fixed oblivious schedule."""
    agreed = 0
    for trial in range(trials):
        seeds = SeedTree(master_seed * 100_003 + trial)
        conciliator = factory()
        result = run_programs(
            [conciliator.program] * len(inputs),
            schedule,
            seeds,
            inputs=list(inputs),
        )
        agreed += result.agreement
    return agreed / trials


def search_worst_schedule(
    factory: Callable[[], Conciliator],
    inputs: Sequence,
    steps_per_process: int,
    *,
    generations: int = 30,
    mutations_per_generation: int = 4,
    trials_per_eval: int = 8,
    master_seed: int = 0,
    deadline_seconds: Optional[float] = None,
    max_evaluations: Optional[int] = None,
    strategy: str = "hill-climb",
    metrics: Optional[Any] = None,
) -> SearchResult:
    """Search for the oblivious schedule minimizing agreement.

    ``strategy="hill-climb"`` (the default): candidates are permutations
    of the multiset giving each process exactly ``steps_per_process``
    slots (so no candidate can starve anyone); mutation swaps random slot
    pairs.  ``strategy="bandit"``: a UCB1 bandit over the randomized
    schedule families plus the explicit-mutation arm; family candidates
    are a materialized seeded prefix padded with a fair round-robin tail,
    so they cannot starve anyone either.  Both return the worst schedule
    found and its (re-evaluated) agreement rate.

    The search runs under the same budget machinery as the chaos fuzzer:
    ``deadline_seconds`` bounds wall-clock time and ``max_evaluations``
    bounds candidate evaluations.  Hitting either budget stops the search
    *gracefully* — the best-so-far schedule is re-evaluated and returned
    with ``stopped_early=True`` — so an E19-style search can never run
    unbounded.  Budgets never change which candidates a given
    ``master_seed`` proposes, only how far down the list the search gets.

    ``metrics`` optionally names a
    :class:`~repro.obs.metrics.MetricsRegistry`; the search then reports
    ``search.evaluations`` (counter), ``search.best_disagreement``
    (histogram, observed at every improvement), and
    ``search.family_pulls{family=...}`` (counter per proposal arm — every
    hill-climb pull counts under ``explicit-mutation``).
    """
    n = len(inputs)
    if n < 1:
        raise ConfigurationError("search needs at least one process")
    if steps_per_process < 1:
        raise ConfigurationError("steps_per_process must be >= 1")
    if max_evaluations is not None and max_evaluations < 1:
        raise ConfigurationError(
            f"max_evaluations must be >= 1, got {max_evaluations}"
        )
    if strategy not in SEARCH_STRATEGIES:
        raise ConfigurationError(
            f"unknown search strategy {strategy!r}; choose from "
            f"{SEARCH_STRATEGIES}"
        )
    deadline = Deadline(deadline_seconds)
    rng = random.Random(master_seed)
    family_pulls: Dict[str, int] = {}

    def mutate(slots: List[int]) -> List[int]:
        mutant = list(slots)
        for _ in range(rng.randrange(1, 4)):
            a = rng.randrange(len(mutant))
            b = rng.randrange(len(mutant))
            mutant[a], mutant[b] = mutant[b], mutant[a]
        return mutant

    def propose(arm: str, incumbent: List[int]) -> List[int]:
        """One candidate slot list from the named arm."""
        if arm == _MUTATION_ARM:
            return mutate(incumbent)
        spec = ScheduleSpec(arm, n, seed=rng.randrange(2**32))
        prefix = list(itertools.islice(iter(spec.build()), steps_per_process * n))
        # The fair tail guarantees every process at least steps_per_process
        # slots, so a family prefix can never starve a run into an error.
        tail = [pid for _ in range(steps_per_process) for pid in range(n)]
        return prefix + tail

    def record_pull(arm: str) -> None:
        family_pulls[arm] = family_pulls.get(arm, 0) + 1
        if metrics is not None:
            metrics.counter("search.evaluations").inc()
            metrics.counter("search.family_pulls", family=arm).inc()

    def record_best(rate: float) -> None:
        if metrics is not None:
            metrics.histogram("search.best_disagreement").observe(1.0 - rate)

    current = [pid for _ in range(steps_per_process) for pid in range(n)]
    current_rate = evaluate_schedule(
        factory, inputs, ExplicitSchedule(current, n=n),
        trials=trials_per_eval, master_seed=master_seed,
    )
    evaluations = 1
    if metrics is not None:
        metrics.counter("search.evaluations").inc()
    record_best(current_rate)
    history = [current_rate]
    stopped_early = False

    def budget_exhausted() -> bool:
        if deadline.expired():
            return True
        return max_evaluations is not None and evaluations >= max_evaluations

    if strategy == "bandit":
        # UCB1 over proposal arms, reward = disagreement in [0, 1].  The
        # arm statistics steer *where* candidates come from; the incumbent
        # (best-so-far) schedule is still tracked globally.
        arms = list(SCHEDULE_FAMILIES) + [_MUTATION_ARM]
        pulls = {arm: 0 for arm in arms}
        reward_sums = {arm: 0.0 for arm in arms}
        total_budget = generations * mutations_per_generation
        for pull_index in range(total_budget):
            if budget_exhausted():
                stopped_early = True
                break
            unpulled = [arm for arm in arms if pulls[arm] == 0]
            if unpulled:
                arm = unpulled[0]
            else:
                total = sum(pulls.values())
                arm = max(arms, key=lambda a: (
                    reward_sums[a] / pulls[a]
                    + math.sqrt(2.0 * math.log(total) / pulls[a])
                ))
            candidate = propose(arm, current)
            rate = evaluate_schedule(
                factory, inputs, ExplicitSchedule(candidate, n=n),
                trials=trials_per_eval,
                master_seed=master_seed + evaluations,
            )
            evaluations += 1
            record_pull(arm)
            pulls[arm] += 1
            reward_sums[arm] += 1.0 - rate
            if rate < current_rate:
                current, current_rate = candidate, rate
                record_best(current_rate)
            if (pull_index + 1) % mutations_per_generation == 0:
                history.append(current_rate)
    else:
        for generation in range(generations):
            if budget_exhausted():
                stopped_early = True
                break
            for _ in range(mutations_per_generation):
                if budget_exhausted():
                    stopped_early = True
                    break
                candidate = mutate(current)
                rate = evaluate_schedule(
                    factory, inputs, ExplicitSchedule(candidate, n=n),
                    trials=trials_per_eval,
                    master_seed=master_seed + evaluations,
                )
                evaluations += 1
                record_pull(_MUTATION_ARM)
                if rate < current_rate:
                    current, current_rate = candidate, rate
                    record_best(current_rate)
            history.append(current_rate)

    # Re-evaluate the winner on fresh seeds for an unbiased estimate (the
    # search minimum is biased low by selection).
    final_rate = evaluate_schedule(
        factory, inputs, ExplicitSchedule(current, n=n),
        trials=trials_per_eval * 4,
        master_seed=master_seed + 10_000_019,
    )
    return SearchResult(
        schedule=ExplicitSchedule(current, n=n),
        agreement_rate=final_rate,
        evaluations=evaluations,
        history=history,
        stopped_early=stopped_early,
        elapsed_seconds=deadline.elapsed(),
        strategy=strategy,
        family_pulls=dict(sorted(family_pulls.items())),
    )
