"""Oblivious worst-schedule search.

The conciliator guarantee quantifies over *all* oblivious adversary
strategies, not just the friendly families in
:mod:`repro.workloads.schedules`.  This module hunts for bad ones: a simple
mutation hill-climb over explicit schedules, evaluating each candidate's
agreement rate against fresh algorithm coins and keeping the candidate that
agrees *least*.

The search itself respects obliviousness: a candidate schedule is fixed
before each batch of evaluation runs, and the coins in every run are fresh,
so the adversary "learns" only across runs (which the model permits — the
adversary knows the protocol and may optimize offline) and never within
one.  Experiment E19 shows that even searched-for schedules cannot push the
agreement rate below the paper's floor — which is exactly what a
for-all-strategies theorem predicts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.conciliator import Conciliator
from repro.errors import ConfigurationError
from repro.runtime.budget import Deadline
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import ExplicitSchedule
from repro.runtime.simulator import run_programs

__all__ = ["SearchResult", "search_worst_schedule", "evaluate_schedule"]


@dataclass
class SearchResult:
    """Outcome of a worst-schedule search."""

    schedule: ExplicitSchedule
    agreement_rate: float
    evaluations: int
    history: List[float]  # best-so-far rate per generation
    #: True when a wall-clock deadline or evaluation cap cut the search
    #: short; the result is still the best candidate found so far.
    stopped_early: bool = False
    elapsed_seconds: float = 0.0


def evaluate_schedule(
    factory: Callable[[], Conciliator],
    inputs: Sequence,
    schedule: ExplicitSchedule,
    *,
    trials: int,
    master_seed: int,
) -> float:
    """Agreement rate of a conciliator under one fixed oblivious schedule."""
    agreed = 0
    for trial in range(trials):
        seeds = SeedTree(master_seed * 100_003 + trial)
        conciliator = factory()
        result = run_programs(
            [conciliator.program] * len(inputs),
            schedule,
            seeds,
            inputs=list(inputs),
        )
        agreed += result.agreement
    return agreed / trials


def search_worst_schedule(
    factory: Callable[[], Conciliator],
    inputs: Sequence,
    steps_per_process: int,
    *,
    generations: int = 30,
    mutations_per_generation: int = 4,
    trials_per_eval: int = 8,
    master_seed: int = 0,
    deadline_seconds: Optional[float] = None,
    max_evaluations: Optional[int] = None,
) -> SearchResult:
    """Hill-climb toward the oblivious schedule minimizing agreement.

    Candidates are permutations of the multiset giving each process exactly
    ``steps_per_process`` slots (so no candidate can starve anyone);
    mutation swaps random slot pairs.  Returns the worst schedule found and
    its (re-evaluated) agreement rate.

    The search runs under the same budget machinery as the chaos fuzzer:
    ``deadline_seconds`` bounds wall-clock time and ``max_evaluations``
    bounds candidate evaluations.  Hitting either budget stops the search
    *gracefully* — the best-so-far schedule is re-evaluated and returned
    with ``stopped_early=True`` — so an E19-style search can never run
    unbounded.  Budgets never change which candidates a given
    ``master_seed`` proposes, only how far down the list the search gets.
    """
    n = len(inputs)
    if n < 1:
        raise ConfigurationError("search needs at least one process")
    if steps_per_process < 1:
        raise ConfigurationError("steps_per_process must be >= 1")
    if max_evaluations is not None and max_evaluations < 1:
        raise ConfigurationError(
            f"max_evaluations must be >= 1, got {max_evaluations}"
        )
    deadline = Deadline(deadline_seconds)
    rng = random.Random(master_seed)

    def mutate(slots: List[int]) -> List[int]:
        mutant = list(slots)
        for _ in range(rng.randrange(1, 4)):
            a = rng.randrange(len(mutant))
            b = rng.randrange(len(mutant))
            mutant[a], mutant[b] = mutant[b], mutant[a]
        return mutant

    current = [pid for _ in range(steps_per_process) for pid in range(n)]
    current_rate = evaluate_schedule(
        factory, inputs, ExplicitSchedule(current, n=n),
        trials=trials_per_eval, master_seed=master_seed,
    )
    evaluations = 1
    history = [current_rate]
    stopped_early = False

    def budget_exhausted() -> bool:
        if deadline.expired():
            return True
        return max_evaluations is not None and evaluations >= max_evaluations

    for generation in range(generations):
        if budget_exhausted():
            stopped_early = True
            break
        for _ in range(mutations_per_generation):
            if budget_exhausted():
                stopped_early = True
                break
            candidate = mutate(current)
            rate = evaluate_schedule(
                factory, inputs, ExplicitSchedule(candidate, n=n),
                trials=trials_per_eval,
                master_seed=master_seed + evaluations,
            )
            evaluations += 1
            if rate < current_rate:
                current, current_rate = candidate, rate
        history.append(current_rate)

    # Re-evaluate the winner on fresh seeds for an unbiased estimate (the
    # search minimum is biased low by selection).
    final_rate = evaluate_schedule(
        factory, inputs, ExplicitSchedule(current, n=n),
        trials=trials_per_eval * 4,
        master_seed=master_seed + 10_000_019,
    )
    return SearchResult(
        schedule=ExplicitSchedule(current, n=n),
        agreement_rate=final_rate,
        evaluations=evaluations,
        history=history,
        stopped_early=stopped_early,
        elapsed_seconds=deadline.elapsed(),
    )
