"""Input assignments for consensus/conciliator workloads.

The paper's hardest case is *id-consensus*: every process proposes a
distinct value, so ``X_0 = n - 1`` excess personae enter round one.  The
other assignments cover the spectrum the corollaries discuss (binary
consensus, m-valued consensus, skewed mixes) plus the unanimous case used
to test convergence and validity boundaries.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.errors import ConfigurationError

__all__ = [
    "all_distinct_inputs",
    "binary_inputs",
    "k_valued_inputs",
    "skewed_inputs",
    "unanimous_inputs",
    "standard_input_gallery",
]


def _check_n(n: int) -> None:
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")


def all_distinct_inputs(n: int) -> List[int]:
    """Id-consensus: process ``i`` proposes ``i`` (worst case, m = n)."""
    _check_n(n)
    return list(range(n))


def binary_inputs(n: int, split: float = 0.5, seed: int = 0) -> List[int]:
    """Binary consensus: each process proposes 1 with probability ``split``."""
    _check_n(n)
    if not 0.0 <= split <= 1.0:
        raise ConfigurationError(f"split must be in [0, 1], got {split}")
    rng = random.Random(seed)
    return [1 if rng.random() < split else 0 for _ in range(n)]


def k_valued_inputs(n: int, k: int, seed: int = 0) -> List[int]:
    """m-valued consensus: uniform proposals from ``range(k)``."""
    _check_n(n)
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    rng = random.Random(seed)
    return [rng.randrange(k) for _ in range(n)]


def skewed_inputs(n: int, majority_value: Any = 0, minority_count: int = 1) -> List[Any]:
    """All processes propose ``majority_value`` except a few dissenters."""
    _check_n(n)
    if not 0 <= minority_count <= n:
        raise ConfigurationError(
            f"minority_count must be in [0, {n}], got {minority_count}"
        )
    inputs: List[Any] = [majority_value] * n
    for index in range(minority_count):
        inputs[index] = f"dissent-{index}"
    return inputs


def unanimous_inputs(n: int, value: Any = 0) -> List[Any]:
    """Everyone proposes the same value (convergence boundary case)."""
    _check_n(n)
    return [value] * n


def standard_input_gallery(n: int, seed: int = 0) -> Dict[str, List[Any]]:
    """The named input assignments used across tests and benchmarks."""
    return {
        "distinct": all_distinct_inputs(n),
        "binary": binary_inputs(n, seed=seed),
        "four-valued": k_valued_inputs(n, min(4, n), seed=seed),
        "skewed": skewed_inputs(n, minority_count=min(2, n)),
        "unanimous": unanimous_inputs(n),
    }
