"""Workload generators: input assignments and adversary schedule families."""

from repro.workloads.inputs import (
    all_distinct_inputs,
    binary_inputs,
    k_valued_inputs,
    skewed_inputs,
    standard_input_gallery,
    unanimous_inputs,
)
from repro.workloads.schedules import schedule_gallery, make_schedule
from repro.workloads.search import (
    SearchResult,
    evaluate_schedule,
    search_worst_schedule,
)

__all__ = [
    "SearchResult",
    "evaluate_schedule",
    "search_worst_schedule",
    "all_distinct_inputs",
    "binary_inputs",
    "k_valued_inputs",
    "skewed_inputs",
    "unanimous_inputs",
    "standard_input_gallery",
    "schedule_gallery",
    "make_schedule",
]
