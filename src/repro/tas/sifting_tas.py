"""Sifting test-and-set (Alistarh-Aspnes [1] structure).

One-shot test-and-set: every process calls ``program`` once and receives
0 (the unique winner) or 1 (a loser).  Two stages:

1. **Sifting filter.**  One register per round.  Each process pre-flips a
   coin per round with the tuned probabilities of Section 3: heads, it
   *writes* its presence and survives the round; tails, it *reads* — an
   empty register lets it survive, a non-empty one makes it **lose on the
   spot** (somebody who wrote is still in the game, so it is safe to leave).
   This is the original sift of [1]; Algorithm 2 of the paper is the same
   skeleton with "lose" replaced by "adopt the persona you saw".  Each round
   at least one process survives (writers survive; if nobody wrote, every
   reader saw empty), and the survivor count contracts like sqrt, leaving
   O(1) expected survivors after ceil(log log n) + O(1) rounds.

2. **Backup.**  Survivors decide a unique winner by running id-consensus
   (this library's register-model consensus on their own pids).  Validity
   confines the decision to survivors, and agreement crowns exactly one.
   [1] uses the RatRace adaptive TAS here; consensus is the substitution —
   asymptotically more expensive in the worst case (it carries an O(log n)
   adopt-commit), but only the expected-O(1) survivors ever pay for it.

Guarantees tested: exactly one winner in every execution, a solo runner
always wins, and everyone terminates in O(log log n) + backup steps.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence

from repro.core.consensus import ConsensusProtocol, register_consensus
from repro.core.probabilities import sift_p_schedule
from repro.core.rounds import sifting_rounds
from repro.errors import ConfigurationError
from repro.memory.register_array import RegisterArray
from repro.runtime.operations import Operation, Read, Write
from repro.runtime.process import ProcessContext

__all__ = ["SiftingTestAndSet", "WINNER", "LOSER"]

WINNER = 0
LOSER = 1


class SiftingTestAndSet:
    """One-shot test-and-set with an O(log log n) sifting filter."""

    def __init__(
        self,
        n: int,
        *,
        rounds: Optional[int] = None,
        p_schedule: Optional[Sequence[float]] = None,
        name: str = "sifting-tas",
    ):
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        self.n = n
        self.name = name
        self.rounds = rounds if rounds is not None else sifting_rounds(n, 0.5)
        if p_schedule is None:
            self.p_schedule: List[float] = sift_p_schedule(n, self.rounds)
        else:
            if len(p_schedule) != self.rounds:
                raise ConfigurationError(
                    f"p_schedule has {len(p_schedule)} entries for "
                    f"{self.rounds} rounds"
                )
            self.p_schedule = list(p_schedule)
        self.registers = RegisterArray(f"{name}.r")
        self.backup: ConsensusProtocol = register_consensus(
            n, value_domain=range(n), name=f"{name}.backup"
        )
        # Instrumentation (E14).
        self.filter_survivors = 0
        self.filter_losers = 0

    def filter_step_bound(self) -> int:
        """Steps a loser pays at most: one per round."""
        return self.rounds

    def program(self, ctx: ProcessContext) -> Generator[Operation, Any, int]:
        """Run test-and-set; returns WINNER (0) exactly once, else LOSER."""
        survived = yield from self._filter(ctx)
        if not survived:
            self.filter_losers += 1
            return LOSER
        self.filter_survivors += 1
        decided_pid = yield from self.backup.decide_program(ctx, ctx.pid)
        return WINNER if decided_pid == ctx.pid else LOSER

    def _filter(self, ctx: ProcessContext) -> Generator[Operation, Any, bool]:
        # Coins are pre-flipped; with no adopted values there is no persona
        # to carry them, but drawing them up front keeps the adversary
        # oblivious to them just the same.
        writes = [ctx.rng.random() < p for p in self.p_schedule]
        for round_index in range(self.rounds):
            register = self.registers[round_index]
            if writes[round_index]:
                yield Write(register, True)
            else:
                occupied = yield Read(register)
                if occupied is not None:
                    return False
        return True
