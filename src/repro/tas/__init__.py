"""Test-and-set: the paper's sibling problem (Section 5 discussion).

The conclusions compare the new conciliators with oblivious-adversary
test-and-set: Algorithm 2 "follows both the structure and the
O(log log n) complexity" of the Alistarh-Aspnes test-and-set [1], whose
*sift* protocol drops losers instead of adopting personae.  This package
implements that protocol so the structural kinship can be measured
(experiment E14):

- :class:`~repro.tas.sifting_tas.SiftingTestAndSet` — the [1]-style sifter
  (read a non-empty round register -> lose immediately) followed by a
  backup among the expected-O(1) survivors.  The backup here is this
  library's own register-model consensus on process ids ([1] uses the
  RatRace object; DESIGN.md records the substitution).
"""

from repro.tas.sifting_tas import SiftingTestAndSet

__all__ = ["SiftingTestAndSet"]
