"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError`, so callers can
catch one type at an API boundary.  Simulation errors are deliberately loud:
a distributed algorithm that silently misbehaves is worse than one that
crashes, because the whole point of a reproduction is to observe faithful
behaviour.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

__all__ = [
    "ReproError",
    "SimulationError",
    "ScheduleExhaustedError",
    "StepLimitExceededError",
    "ProtocolViolationError",
    "InvalidOperationError",
    "ConfigurationError",
    "CheckpointError",
    "BudgetExceededError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """An error occurred while executing a simulated run."""


class _DiagnosableRunError(SimulationError):
    """A run failure that carries enough state to diagnose from logs alone.

    Fault sweeps run unattended for hours; when one dies, the exception text
    (and these structured attributes) must say *which* processes were stuck
    and how far each one got, without re-running anything.
    """

    def __init__(
        self,
        message: str,
        *,
        unfinished_pids: Optional[Sequence[int]] = None,
        steps_by_pid: Optional[Dict[int, int]] = None,
    ):
        self.unfinished_pids = (
            tuple(sorted(unfinished_pids)) if unfinished_pids else ()
        )
        self.steps_by_pid = dict(steps_by_pid) if steps_by_pid else {}
        if self.unfinished_pids:
            message += f" [unfinished pids: {list(self.unfinished_pids)}]"
        if self.steps_by_pid:
            executed = {pid: self.steps_by_pid[pid] for pid in sorted(self.steps_by_pid)}
            message += f" [steps executed: {executed}]"
        super().__init__(message)


class ScheduleExhaustedError(_DiagnosableRunError):
    """The adversary's schedule ended before every process finished.

    A finite schedule is a legitimate adversary choice (the model allows
    starvation), but most callers expect runs to complete, so exhaustion is
    reported explicitly rather than returning partial results silently.
    Callers that want partial runs pass ``allow_partial=True`` to
    :meth:`repro.runtime.simulator.Simulator.run`.
    """


class StepLimitExceededError(_DiagnosableRunError):
    """A safety valve tripped: the run exceeded its configured step budget."""


class ProtocolViolationError(ReproError):
    """An algorithm violated one of its specified invariants.

    Raised, for example, when a conciliator would return a value that is not
    any process's input (validity) or when an adopt-commit object would
    break coherence.  These checks guard the reproduction itself.
    """


class InvalidOperationError(SimulationError):
    """A process issued an operation that its target object does not support."""


class ConfigurationError(ReproError):
    """Invalid parameters were supplied to a protocol or experiment."""


class BudgetExceededError(ReproError):
    """A wall-clock or evaluation budget ran out before the work finished.

    Raised by the chaos fuzzer's per-trial deadline hook and by budgeted
    searches.  Unlike :class:`StepLimitExceededError` this is not evidence
    of a protocol bug: it marks work that was *cut short* so a campaign can
    record the fact and move on instead of hanging.
    """


class CheckpointError(ReproError):
    """A sweep checkpoint journal is corrupt or inconsistent with the run.

    Raised when a journal's integrity hash chain does not verify, or when a
    resume attempt supplies a configuration (run key, trial count, chunk
    size) that differs from the one the journal was written under.  Silently
    mixing incompatible sweeps would be worse than failing: the whole point
    of the journal is bit-identical resumption.
    """
