"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError`, so callers can
catch one type at an API boundary.  Simulation errors are deliberately loud:
a distributed algorithm that silently misbehaves is worse than one that
crashes, because the whole point of a reproduction is to observe faithful
behaviour.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "ScheduleExhaustedError",
    "StepLimitExceededError",
    "ProtocolViolationError",
    "InvalidOperationError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """An error occurred while executing a simulated run."""


class ScheduleExhaustedError(SimulationError):
    """The adversary's schedule ended before every process finished.

    A finite schedule is a legitimate adversary choice (the model allows
    starvation), but most callers expect runs to complete, so exhaustion is
    reported explicitly rather than returning partial results silently.
    Callers that want partial runs pass ``allow_partial=True`` to
    :meth:`repro.runtime.simulator.Simulator.run`.
    """


class StepLimitExceededError(SimulationError):
    """A safety valve tripped: the run exceeded its configured step budget."""


class ProtocolViolationError(ReproError):
    """An algorithm violated one of its specified invariants.

    Raised, for example, when a conciliator would return a value that is not
    any process's input (validity) or when an adopt-commit object would
    break coherence.  These checks guard the reproduction itself.
    """


class InvalidOperationError(SimulationError):
    """A process issued an operation that its target object does not support."""


class ConfigurationError(ReproError):
    """Invalid parameters were supplied to a protocol or experiment."""
