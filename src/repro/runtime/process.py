"""Process abstraction: a generator-based protocol participant.

A *program* is a callable ``program(ctx) -> Generator[Operation, Any, T]``
where ``ctx`` is the process's :class:`ProcessContext`.  The generator yields
:class:`~repro.runtime.operations.Operation` requests and eventually returns
its output value (via ``return``, captured from ``StopIteration``).

Local computation between yields is free, matching the paper's step measure,
which charges only shared-memory operations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.runtime.operations import Operation

__all__ = ["ProcessContext", "Process", "Program"]

Program = Callable[["ProcessContext"], Generator[Operation, Any, Any]]


@dataclass
class ProcessContext:
    """Everything a protocol program may legitimately observe locally.

    Attributes:
        pid: this process's id in ``range(n)``.
        n: the total number of processes.
        rng: this process's private random stream.  It is derived from the
            ``"algorithm"`` branch of the run's seed tree, so it is
            independent of the adversary's schedule by construction.
        input_value: the process's input (``None`` for input-free protocols).
        annotations: scratch dict for experiment instrumentation; protocols
            must not read it to make decisions (it is not part of the model).
    """

    pid: int
    n: int
    rng: random.Random
    input_value: Any = None
    annotations: dict = field(default_factory=dict)


class Process:
    """Wraps a protocol program generator and tracks its lifecycle.

    The simulator drives a :class:`Process` through three phases:

    1. :meth:`start` primes the generator, running the program's local prefix
       up to its first operation request (local code is free);
    2. repeated :meth:`complete_step` calls deliver operation results and run
       the program to its next request;
    3. when the generator returns, the process is *finished* and its return
       value becomes :attr:`output`.

    A process that raises is a bug in the protocol, not an adversary move, so
    exceptions propagate wrapped in :class:`SimulationError`.
    """

    def __init__(self, context: ProcessContext, program: Program):
        self.context = context
        self._program = program
        self._generator: Optional[Generator[Operation, Any, Any]] = None
        self._pending: Optional[Operation] = None
        self._finished = False
        self._output: Any = None

    @property
    def pid(self) -> int:
        return self.context.pid

    @property
    def finished(self) -> bool:
        """True once the program has returned."""
        return self._finished

    @property
    def output(self) -> Any:
        """The program's return value; only meaningful once finished."""
        return self._output

    @property
    def pending_operation(self) -> Optional[Operation]:
        """The operation this process will execute at its next step."""
        return self._pending

    @property
    def started(self) -> bool:
        return self._generator is not None or self._finished

    def start(self) -> None:
        """Prime the program up to its first operation request."""
        if self.started:
            raise SimulationError(f"process {self.pid} started twice")
        generator = self._program(self.context)
        try:
            first = next(generator)
        except StopIteration as stop:
            # A program may finish without touching shared memory at all
            # (zero steps); this is legal, if unusual.
            self._finish(stop.value)
            return
        self._generator = generator
        self._set_pending(first)

    def complete_step(self, result: Any) -> None:
        """Deliver ``result`` for the pending operation and advance.

        Called by the simulator immediately after it executed the pending
        operation atomically.  Runs the program's local code up to its next
        operation request (or its return).
        """
        if self._finished or self._generator is None:
            raise SimulationError(
                f"process {self.pid} received a step result while not running"
            )
        try:
            nxt = self._generator.send(result)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._set_pending(nxt)

    def _set_pending(self, operation: Operation) -> None:
        if not isinstance(operation, Operation):
            raise SimulationError(
                f"process {self.pid} yielded {operation!r}, which is not an "
                "Operation; protocol programs must yield operation requests"
            )
        self._pending = operation

    def _finish(self, output: Any) -> None:
        self._finished = True
        self._output = output
        self._pending = None
        self._generator = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self._finished else ("running" if self.started else "new")
        return f"Process(pid={self.pid}, state={state})"
