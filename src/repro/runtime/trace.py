"""Execution traces and atomicity checking.

A trace is a linear record of every executed operation.  Because the
simulator executes operations one at a time, the trace *is* a linearization;
the checkers here verify that the shared-object implementations actually
honour their sequential specifications along that linearization (reads return
the last write, snapshot views nest, max registers are monotone).  This turns
"our registers are atomic" from an assumption into a tested property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolViolationError

__all__ = ["TraceEvent", "TraceRecorder", "check_register_semantics",
           "check_snapshot_semantics", "check_max_register_semantics"]


@dataclass(frozen=True)
class TraceEvent:
    """One executed atomic operation.

    Attributes:
        step: global step index (0-based, counted operations only).
        pid: the executing process.
        kind: operation kind (``"read"``, ``"write"``, ``"scan"``, ...).
        obj_name: name of the shared object.
        value: the written value, if any.
        result: the operation's return value.
    """

    step: int
    pid: int
    kind: str
    obj_name: str
    value: Any
    result: Any


class TraceRecorder:
    """Collects :class:`TraceEvent` records during a run.

    Recording full traces is optional (it costs memory proportional to the
    number of steps), so the simulator only records when asked.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def for_object(self, obj_name: str) -> List[TraceEvent]:
        """All events touching the named object, in execution order."""
        return [event for event in self.events if event.obj_name == obj_name]

    def for_pid(self, pid: int) -> List[TraceEvent]:
        """All events executed by ``pid``, in execution order."""
        return [event for event in self.events if event.pid == pid]

    def __len__(self) -> int:
        return len(self.events)


def check_register_semantics(events: List[TraceEvent], initial: Any = None) -> None:
    """Verify read/write register semantics along a trace.

    Every ``read`` must return the value of the most recent ``write`` (or the
    initial value if there is none).  Raises
    :class:`ProtocolViolationError` on the first violation.
    """
    current = initial
    for event in events:
        if event.kind == "write":
            current = event.value
        elif event.kind == "read":
            if event.result != current:
                raise ProtocolViolationError(
                    f"register {event.obj_name}: read at step {event.step} "
                    f"returned {event.result!r}, expected {current!r}"
                )


def check_snapshot_semantics(events: List[TraceEvent], n: int) -> None:
    """Verify snapshot semantics along a trace.

    Every ``scan`` must return exactly the vector of latest updates, and the
    set of non-empty components must therefore be non-decreasing between
    scans (views nest — the property Lemma 1's proof relies on).
    """
    components: List[Any] = [None] * n
    written = [False] * n
    previous_filled: Optional[Tuple[int, ...]] = None
    for event in events:
        if event.kind == "update":
            components[event.pid] = event.value
            written[event.pid] = True
        elif event.kind == "scan":
            expected = tuple(components)
            if tuple(event.result) != expected:
                raise ProtocolViolationError(
                    f"snapshot {event.obj_name}: scan at step {event.step} "
                    f"returned {event.result!r}, expected {expected!r}"
                )
            filled = tuple(i for i in range(n) if written[i])
            if previous_filled is not None and not set(previous_filled) <= set(filled):
                raise ProtocolViolationError(
                    f"snapshot {event.obj_name}: views do not nest at step "
                    f"{event.step}"
                )
            previous_filled = filled


def check_max_register_semantics(events: List[TraceEvent]) -> None:
    """Verify max-register semantics: reads return the running maximum."""
    current: Any = None
    for event in events:
        if event.kind == "maxwrite":
            if current is None or event.value > current:
                current = event.value
        elif event.kind == "maxread":
            if event.result != current:
                raise ProtocolViolationError(
                    f"max register {event.obj_name}: read at step {event.step} "
                    f"returned {event.result!r}, expected {current!r}"
                )


def steps_by_object(events: List[TraceEvent]) -> Dict[str, int]:
    """Count executed operations per object name (for cost accounting)."""
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.obj_name] = counts.get(event.obj_name, 0) + 1
    return counts


__all__.append("steps_by_object")
