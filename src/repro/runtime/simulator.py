"""The discrete-event simulator: executes a schedule against processes.

This is the heart of the substrate.  Given shared objects, processes and an
oblivious schedule, :class:`Simulator` repeatedly takes the next pid from the
schedule and lets that process execute exactly one atomic operation.  The
loop ends when every process has finished; slots for finished processes are
skipped for free, exactly as the model specifies ("once a process has
finished its protocol, any steps allocated to it become no-ops; these no-ops
are not included when computing the complexity").

Determinism: a run is a pure function of (programs, inputs, schedule, seed
tree), so every experiment in the repository can be reproduced from a single
master seed.  Fault injection preserves this: a
:class:`~repro.runtime.faults.FaultPlan` triggers on charged step counts
only, so a faulted run is a pure function of the same tuple plus the plan.

Step hooks (:class:`~repro.runtime.faults.StepHook`) are consulted at every
slot: an injector may crash a process, withhold its slot, or intercept an
operation, while invariant monitors (:mod:`repro.runtime.monitors`) observe
every charged step and completion to check validity, coherence, and
wait-freedom inline.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.errors import (
    ScheduleExhaustedError,
    SimulationError,
    StepLimitExceededError,
)
from repro.runtime.faults import CRASH, SKIP, StepHook
from repro.runtime.process import Process, ProcessContext, Program
from repro.runtime.results import RunResult
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import Schedule
from repro.runtime.trace import TraceEvent, TraceRecorder

__all__ = ["Simulator", "run_programs"]

_DEFAULT_STEP_LIMIT = 50_000_000


def _note_hook_failure(
    error: BaseException,
    hook: StepHook,
    stage: str,
    *,
    pid: Optional[int] = None,
    global_step: Optional[int] = None,
) -> None:
    """Attach who/where context to an exception escaping a step hook.

    Fuzz campaigns surface hook failures (including strict monitor
    violations) far from the run that produced them; the note pins the hook
    class, lifecycle stage, pid, and global step so the failure is
    diagnosable from the traceback alone.
    """
    where = [f"in {type(hook).__name__}.{stage}"]
    if pid is not None:
        where.append(f"pid={pid}")
    if global_step is not None:
        where.append(f"global step={global_step}")
    error.add_note("raised " + ", ".join(where))


class Simulator:
    """Executes one run of a protocol under an oblivious schedule.

    Args:
        processes: the participating processes (pids must be 0..n-1, unique).
        schedule: the adversary's schedule.  Must be independent of the
            processes' randomness; using :class:`~repro.runtime.rng.SeedTree`
            branches for both makes this structural.
        record_trace: if True, record every executed operation in a
            :class:`~repro.runtime.trace.TraceRecorder` (costs memory).
        step_limit: safety valve; a run exceeding this many charged steps
            raises :class:`StepLimitExceededError` instead of spinning
            forever.  Randomized wait-free protocols terminate with
            probability 1, so hitting this limit indicates a bug or an
            astronomically unlucky seed.
        hooks: :class:`~repro.runtime.faults.StepHook` instances consulted
            at every slot — fault injectors first, then monitors, so
            monitors observe the post-fault execution.  With no hooks at
            all the step loop takes a guarded fast path that executes no
            hook machinery whatsoever, so observability costs nothing
            when it is not attached.
        skip_guard: consecutive free-slot threshold before the run is
            declared starved (default ``max(100_000, 1_000 * n)``).  Fault
            sweeps that starve processes on purpose lower it so stuck runs
            fail fast.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`; when
            given, a :class:`~repro.obs.metrics.MetricsHook` is appended to
            the hook list and the registry is surfaced on
            ``RunResult.metrics``.
    """

    def __init__(
        self,
        processes: Sequence[Process],
        schedule: Schedule,
        *,
        record_trace: bool = False,
        step_limit: int = _DEFAULT_STEP_LIMIT,
        hooks: Sequence[StepHook] = (),
        skip_guard: Optional[int] = None,
        metrics: Optional[Any] = None,
    ):
        pids = sorted(process.pid for process in processes)
        if pids != list(range(len(processes))):
            raise SimulationError(f"process pids must be 0..n-1, got {pids}")
        if schedule.n < len(processes):
            raise SimulationError(
                f"schedule covers {schedule.n} processes but {len(processes)} "
                "were supplied"
            )
        if skip_guard is not None and skip_guard < 1:
            raise SimulationError(f"skip_guard must be >= 1, got {skip_guard}")
        self.processes: Dict[int, Process] = {p.pid: p for p in processes}
        self.n = len(processes)
        self.schedule = schedule
        self.step_limit = step_limit
        self.hooks: List[StepHook] = list(hooks)
        self.metrics = metrics
        if metrics is not None:
            # Imported lazily: repro.obs builds on the runtime layer, so
            # the runtime only touches it when metrics are requested.
            from repro.obs.metrics import MetricsHook

            self.hooks.append(MetricsHook(metrics))
        self.skip_guard = skip_guard
        self.trace: Optional[TraceRecorder] = TraceRecorder() if record_trace else None
        self._steps_by_pid: Dict[int, int] = {pid: 0 for pid in self.processes}
        self._unfinished = set(self.processes)
        self._crashed: set = set()

    @property
    def crashed_pids(self) -> frozenset:
        """Pids fail-stopped by fault injection during this run."""
        return frozenset(self._crashed)

    def run(self, *, allow_partial: bool = False) -> RunResult:
        """Execute the schedule until every surviving process finishes.

        Returns a :class:`RunResult`.  If the schedule ends first, raises
        :class:`ScheduleExhaustedError` unless ``allow_partial`` is True, in
        which case a partial result (``completed=False``) is returned —
        useful for deliberately starving processes in tests.  Processes
        crashed by a fault hook do not count as unfinished: wait-freedom
        demands only that the survivors terminate.
        """
        self._emit("on_run_start", self)
        for process in self.processes.values():
            if not process.started:
                process.start()
            if process.finished:
                self._unfinished.discard(process.pid)
                self._emit("on_finish", process.pid, process.output,
                           pid=process.pid)

        step_index = 0
        # Starvation guard: an infinite schedule that never again names an
        # unfinished process (e.g. after crashes) would spin forever on free
        # no-ops; after this many consecutive skips we declare starvation.
        skip_guard = (
            self.skip_guard
            if self.skip_guard is not None
            else max(100_000, 1_000 * self.n)
        )
        consecutive_skips = 0
        # Guarded fast path: with no hooks attached, the hot loop below
        # performs zero hook machinery (no consult, no emit, no intercept
        # scan) — observability is strictly pay-for-what-you-attach.
        has_hooks = bool(self.hooks)
        if self._unfinished:
            for pid in self.schedule:
                if pid not in self.processes:
                    continue
                process = self.processes[pid]
                if process.finished or pid in self._crashed:
                    # Free no-op: the model does not charge finished (or
                    # crashed) processes for slots they no longer use.
                    consecutive_skips += 1
                    if consecutive_skips >= skip_guard:
                        if allow_partial:
                            break
                        raise ScheduleExhaustedError(
                            f"processes {sorted(self._unfinished)} appear "
                            f"starved: {skip_guard} consecutive slots went to "
                            "finished or crashed processes",
                            unfinished_pids=self._unfinished,
                            steps_by_pid=self._steps_by_pid,
                        )
                    continue
                action = (
                    self._consult_hooks(pid, step_index, process)
                    if has_hooks else None
                )
                if action == CRASH:
                    self._crash(pid)
                    if not self._unfinished:
                        break
                    continue
                if action == SKIP:
                    self._emit("on_skip", pid, step_index,
                               pid=pid, step=step_index)
                    consecutive_skips += 1
                    if consecutive_skips >= skip_guard:
                        if allow_partial:
                            break
                        raise ScheduleExhaustedError(
                            f"processes {sorted(self._unfinished)} appear "
                            f"starved: {skip_guard} consecutive slots were "
                            "withheld by fault injection",
                            unfinished_pids=self._unfinished,
                            steps_by_pid=self._steps_by_pid,
                        )
                    continue
                consecutive_skips = 0
                self._execute_one(process, step_index)
                step_index += 1
                if step_index > self.step_limit:
                    raise StepLimitExceededError(
                        f"run exceeded step limit {self.step_limit}",
                        unfinished_pids=self._unfinished,
                        steps_by_pid=self._steps_by_pid,
                    )
                if process.finished:
                    self._unfinished.discard(pid)
                    if has_hooks:
                        self._emit("on_finish", pid, process.output,
                                   pid=pid, step=step_index)
                    if not self._unfinished:
                        break
            else:
                if not allow_partial and self._unfinished:
                    raise ScheduleExhaustedError(
                        f"schedule ended with processes {sorted(self._unfinished)} "
                        "unfinished",
                        unfinished_pids=self._unfinished,
                        steps_by_pid=self._steps_by_pid,
                    )

        outputs = {
            pid: process.output
            for pid, process in self.processes.items()
            if process.finished
        }
        result = RunResult(
            n=self.n,
            outputs=outputs,
            steps_by_pid=dict(self._steps_by_pid),
            completed=not self._unfinished and not self._crashed,
            trace=self.trace,
            crashed=frozenset(self._crashed),
            metrics=self.metrics,
        )
        self._emit("on_run_end", result)
        return result

    def _emit(
        self,
        stage: str,
        *args: Any,
        pid: Optional[int] = None,
        step: Optional[int] = None,
    ) -> None:
        """Call a void notification method on every hook, noting failures."""
        for hook in self.hooks:
            try:
                getattr(hook, stage)(*args)
            except BaseException as error:
                _note_hook_failure(error, hook, stage, pid=pid, global_step=step)
                raise

    def _consult_hooks(
        self, pid: int, step_index: int, process: Process
    ) -> Optional[str]:
        """Ask every hook about this slot; crash wins over skip over execute."""
        action: Optional[str] = None
        for hook in self.hooks:
            try:
                decision = hook.before_step(
                    pid,
                    self._steps_by_pid[pid],
                    step_index,
                    process.pending_operation,
                )
            except BaseException as error:
                _note_hook_failure(error, hook, "before_step",
                                   pid=pid, global_step=step_index)
                raise
            if decision == CRASH:
                return CRASH
            if decision == SKIP:
                action = SKIP
        return action

    def _crash(self, pid: int) -> None:
        """Fail-stop ``pid``: it keeps its state but never steps again."""
        self._crashed.add(pid)
        self._unfinished.discard(pid)
        self._emit("on_crash", pid, self._steps_by_pid[pid], pid=pid)

    def _execute_one(self, process: Process, step_index: int) -> None:
        operation = process.pending_operation
        if operation is None:
            raise SimulationError(
                f"process {process.pid} scheduled with no pending operation"
            )
        intercepted = None
        if self.hooks:
            for hook in self.hooks:
                try:
                    intercepted = hook.intercept(process.pid, operation)
                except BaseException as error:
                    _note_hook_failure(error, hook, "intercept",
                                       pid=process.pid, global_step=step_index)
                    raise
                if intercepted is not None:
                    break
        if intercepted is not None:
            result = intercepted.value
        else:
            result = operation.obj.apply(operation, process.pid)
        self._steps_by_pid[process.pid] += 1
        if self.trace is not None:
            self.trace.record(
                TraceEvent(
                    step=step_index,
                    pid=process.pid,
                    kind=operation.kind,
                    obj_name=operation.obj.name,
                    value=getattr(operation, "value", None),
                    result=result,
                )
            )
        if self.hooks:
            self._emit("after_step", process.pid, step_index, operation,
                       result, pid=process.pid, step=step_index)
        process.complete_step(result)


def run_programs(
    programs: Sequence[Program],
    schedule: Schedule,
    seeds: SeedTree,
    *,
    inputs: Optional[Sequence[Any]] = None,
    record_trace: bool = False,
    step_limit: int = _DEFAULT_STEP_LIMIT,
    allow_partial: bool = False,
    hooks: Sequence[StepHook] = (),
    skip_guard: Optional[int] = None,
    metrics: Optional[Any] = None,
) -> RunResult:
    """Convenience wrapper: build processes from programs and run them.

    Each process receives a private RNG from the ``"algorithm"`` branch of
    ``seeds``; the schedule was (by convention) built from the ``"schedule"``
    branch, so the two are independent as the oblivious model requires.

    Args:
        programs: one program per process.
        schedule: the adversary schedule.
        seeds: seed tree for this run.
        inputs: optional input values, one per process.
        hooks: fault injectors and invariant monitors for this run.
        skip_guard: starvation threshold override (see :class:`Simulator`).
        metrics: optional metrics registry populated during the run and
            surfaced on ``RunResult.metrics`` (see :class:`Simulator`).
    """
    n = len(programs)
    if inputs is not None and len(inputs) != n:
        raise SimulationError(
            f"got {len(inputs)} inputs for {n} programs; they must match"
        )
    algorithm_seeds = seeds.child("algorithm")
    processes = []
    for pid, program in enumerate(programs):
        context = ProcessContext(
            pid=pid,
            n=n,
            rng=algorithm_seeds.child(f"process-{pid}").rng(),
            input_value=None if inputs is None else inputs[pid],
        )
        processes.append(Process(context, program))
    simulator = Simulator(
        processes,
        schedule,
        record_trace=record_trace,
        step_limit=step_limit,
        hooks=hooks,
        skip_guard=skip_guard,
        metrics=metrics,
    )
    return simulator.run(allow_partial=allow_partial)
