"""The discrete-event simulator: executes a schedule against processes.

This is the heart of the substrate.  Given shared objects, processes and an
oblivious schedule, :class:`Simulator` repeatedly takes the next pid from the
schedule and lets that process execute exactly one atomic operation.  The
loop ends when every process has finished; slots for finished processes are
skipped for free, exactly as the model specifies ("once a process has
finished its protocol, any steps allocated to it become no-ops; these no-ops
are not included when computing the complexity").

Determinism: a run is a pure function of (programs, inputs, schedule, seed
tree), so every experiment in the repository can be reproduced from a single
master seed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import (
    ScheduleExhaustedError,
    SimulationError,
    StepLimitExceededError,
)
from repro.runtime.process import Process, ProcessContext, Program
from repro.runtime.results import RunResult
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import Schedule
from repro.runtime.trace import TraceEvent, TraceRecorder

__all__ = ["Simulator", "run_programs"]

_DEFAULT_STEP_LIMIT = 50_000_000


class Simulator:
    """Executes one run of a protocol under an oblivious schedule.

    Args:
        processes: the participating processes (pids must be 0..n-1, unique).
        schedule: the adversary's schedule.  Must be independent of the
            processes' randomness; using :class:`~repro.runtime.rng.SeedTree`
            branches for both makes this structural.
        record_trace: if True, record every executed operation in a
            :class:`~repro.runtime.trace.TraceRecorder` (costs memory).
        step_limit: safety valve; a run exceeding this many charged steps
            raises :class:`StepLimitExceededError` instead of spinning
            forever.  Randomized wait-free protocols terminate with
            probability 1, so hitting this limit indicates a bug or an
            astronomically unlucky seed.
    """

    def __init__(
        self,
        processes: Sequence[Process],
        schedule: Schedule,
        *,
        record_trace: bool = False,
        step_limit: int = _DEFAULT_STEP_LIMIT,
    ):
        pids = sorted(process.pid for process in processes)
        if pids != list(range(len(processes))):
            raise SimulationError(f"process pids must be 0..n-1, got {pids}")
        if schedule.n < len(processes):
            raise SimulationError(
                f"schedule covers {schedule.n} processes but {len(processes)} "
                "were supplied"
            )
        self.processes: Dict[int, Process] = {p.pid: p for p in processes}
        self.n = len(processes)
        self.schedule = schedule
        self.step_limit = step_limit
        self.trace: Optional[TraceRecorder] = TraceRecorder() if record_trace else None
        self._steps_by_pid: Dict[int, int] = {pid: 0 for pid in self.processes}
        self._unfinished = set(self.processes)

    def run(self, *, allow_partial: bool = False) -> RunResult:
        """Execute the schedule until every process finishes.

        Returns a :class:`RunResult`.  If the schedule ends first, raises
        :class:`ScheduleExhaustedError` unless ``allow_partial`` is True, in
        which case a partial result (``completed=False``) is returned —
        useful for deliberately starving processes in tests.
        """
        for process in self.processes.values():
            if not process.started:
                process.start()
            if process.finished:
                self._unfinished.discard(process.pid)

        step_index = 0
        # Starvation guard: an infinite schedule that never again names an
        # unfinished process (e.g. after crashes) would spin forever on free
        # no-ops; after this many consecutive skips we declare starvation.
        skip_guard = max(100_000, 1_000 * self.n)
        consecutive_skips = 0
        if self._unfinished:
            for pid in self.schedule:
                if pid not in self.processes:
                    continue
                process = self.processes[pid]
                if process.finished:
                    # Free no-op: the model does not charge finished
                    # processes for slots they no longer use.
                    consecutive_skips += 1
                    if consecutive_skips >= skip_guard:
                        if allow_partial:
                            break
                        raise ScheduleExhaustedError(
                            f"processes {sorted(self._unfinished)} appear "
                            f"starved: {skip_guard} consecutive slots went to "
                            "finished processes"
                        )
                    continue
                consecutive_skips = 0
                self._execute_one(process, step_index)
                step_index += 1
                if step_index > self.step_limit:
                    raise StepLimitExceededError(
                        f"run exceeded step limit {self.step_limit}"
                    )
                if process.finished:
                    self._unfinished.discard(pid)
                    if not self._unfinished:
                        break
            else:
                if not allow_partial and self._unfinished:
                    raise ScheduleExhaustedError(
                        f"schedule ended with processes {sorted(self._unfinished)} "
                        "unfinished"
                    )

        outputs = {
            pid: process.output
            for pid, process in self.processes.items()
            if process.finished
        }
        return RunResult(
            n=self.n,
            outputs=outputs,
            steps_by_pid=dict(self._steps_by_pid),
            completed=not self._unfinished,
            trace=self.trace,
        )

    def _execute_one(self, process: Process, step_index: int) -> None:
        operation = process.pending_operation
        if operation is None:
            raise SimulationError(
                f"process {process.pid} scheduled with no pending operation"
            )
        result = operation.obj.apply(operation, process.pid)
        self._steps_by_pid[process.pid] += 1
        if self.trace is not None:
            self.trace.record(
                TraceEvent(
                    step=step_index,
                    pid=process.pid,
                    kind=operation.kind,
                    obj_name=operation.obj.name,
                    value=getattr(operation, "value", None),
                    result=result,
                )
            )
        process.complete_step(result)


def run_programs(
    programs: Sequence[Program],
    schedule: Schedule,
    seeds: SeedTree,
    *,
    inputs: Optional[Sequence[Any]] = None,
    record_trace: bool = False,
    step_limit: int = _DEFAULT_STEP_LIMIT,
    allow_partial: bool = False,
) -> RunResult:
    """Convenience wrapper: build processes from programs and run them.

    Each process receives a private RNG from the ``"algorithm"`` branch of
    ``seeds``; the schedule was (by convention) built from the ``"schedule"``
    branch, so the two are independent as the oblivious model requires.

    Args:
        programs: one program per process.
        schedule: the adversary schedule.
        seeds: seed tree for this run.
        inputs: optional input values, one per process.
    """
    n = len(programs)
    if inputs is not None and len(inputs) != n:
        raise SimulationError(
            f"got {len(inputs)} inputs for {n} programs; they must match"
        )
    algorithm_seeds = seeds.child("algorithm")
    processes = []
    for pid, program in enumerate(programs):
        context = ProcessContext(
            pid=pid,
            n=n,
            rng=algorithm_seeds.child(f"process-{pid}").rng(),
            input_value=None if inputs is None else inputs[pid],
        )
        processes.append(Process(context, program))
    simulator = Simulator(
        processes,
        schedule,
        record_trace=record_trace,
        step_limit=step_limit,
    )
    return simulator.run(allow_partial=allow_partial)
