"""Adaptive adversaries: the negative control for obliviousness.

Section 5 of the paper ("Strength of the adversary") stresses that the new
algorithms depend on the adversary *not* seeing coin flips: the sifting
conciliator needs at least a **content-oblivious** adversary, because a
scheduler that can see whether a process is about to read or write the
round register can defeat the sift entirely.

This module implements that stronger adversary so the dependence can be
*measured* (experiment E18).  An :class:`AdaptiveAdversary` is consulted at
every step and may inspect an :class:`AdversaryView` — which process is
unfinished, what operation each would execute next (kind, target object,
written value), and current step counts.  This is strictly more power than
the oblivious model grants, and exactly the power the paper's analysis
forbids.

Provided strategies:

- :class:`PendingKindAdversary` — prefers processes whose next operation
  matches a kind (e.g. schedule all pending *reads* first).  Against
  Algorithm 2 this is the "sift killer": readers drain the rounds while
  registers are still empty, keep their own personae, and agreement
  collapses to near zero.
- :class:`LongestFirstAdversary` / :class:`ShortestFirstAdversary` — favour
  processes by accumulated step count (fairness attacks).
- :class:`RandomAdaptiveAdversary` — random choice; behaviourally identical
  to an oblivious random schedule, included as the experiment's control.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.errors import (
    ConfigurationError,
    ScheduleExhaustedError,
    SimulationError,
    StepLimitExceededError,
)
from repro.runtime.faults import CRASH, SKIP, StepHook
from repro.runtime.operations import Operation
from repro.runtime.process import Process, ProcessContext, Program
from repro.runtime.results import RunResult
from repro.runtime.rng import SeedTree
from repro.runtime.trace import TraceEvent, TraceRecorder

__all__ = [
    "ADAPTIVE_FAMILIES",
    "AdversaryView",
    "AdaptiveAdversary",
    "AdaptiveSpec",
    "PendingKindAdversary",
    "LongestFirstAdversary",
    "ShortestFirstAdversary",
    "RandomAdaptiveAdversary",
    "SiftKillerAdversary",
    "make_adaptive",
    "run_adaptive_programs",
]


class AdversaryView:
    """Read-only view of execution state offered to an adaptive adversary."""

    def __init__(
        self,
        processes: Dict[int, Process],
        steps: Dict[int, int],
        crashed: Optional[Set[int]] = None,
    ):
        self._processes = processes
        self._steps = steps
        self._crashed = crashed if crashed is not None else set()

    def unfinished(self) -> List[int]:
        """Pids that still have an operation to execute, sorted.

        Processes fail-stopped by a fault hook are excluded: a crashed
        process has no next operation for even an omniscient adversary to
        schedule.
        """
        return sorted(
            pid for pid, process in self._processes.items()
            if not process.finished and pid not in self._crashed
        )

    def pending_operation(self, pid: int) -> Optional[Operation]:
        """The operation ``pid`` would execute if scheduled now."""
        return self._processes[pid].pending_operation

    def pending_kind(self, pid: int) -> Optional[str]:
        """Kind of the pending operation (``"read"``, ``"write"``, ...)."""
        operation = self.pending_operation(pid)
        return None if operation is None else operation.kind

    def steps_taken(self, pid: int) -> int:
        return self._steps[pid]


class AdaptiveAdversary:
    """Chooses the next process to run, seeing the full execution state."""

    def choose(self, view: AdversaryView) -> int:
        raise NotImplementedError


class PendingKindAdversary(AdaptiveAdversary):
    """Schedule processes whose pending op kind is earliest in ``priority``.

    ``priority`` is a sequence of kinds; a pending kind not listed ranks
    last.  Ties break round-robin by pid rotation so no process starves.
    """

    def __init__(self, priority: Sequence[str]):
        self.priority = list(priority)
        self._rotation = 0

    def _rank(self, kind: Optional[str]) -> int:
        if kind in self.priority:
            return self.priority.index(kind)
        return len(self.priority)

    def choose(self, view: AdversaryView) -> int:
        candidates = view.unfinished()
        if not candidates:
            raise SimulationError("adversary consulted with no runnable process")
        self._rotation += 1
        return min(
            candidates,
            key=lambda pid: (
                self._rank(view.pending_kind(pid)),
                (pid + self._rotation) % (max(candidates) + 1),
            ),
        )


class LongestFirstAdversary(AdaptiveAdversary):
    """Always run the process that has already taken the most steps."""

    def choose(self, view: AdversaryView) -> int:
        candidates = view.unfinished()
        return max(candidates, key=lambda pid: (view.steps_taken(pid), -pid))


class ShortestFirstAdversary(AdaptiveAdversary):
    """Always run the process with the fewest steps (max fairness)."""

    def choose(self, view: AdversaryView) -> int:
        candidates = view.unfinished()
        return min(candidates, key=lambda pid: (view.steps_taken(pid), pid))


class RandomAdaptiveAdversary(AdaptiveAdversary):
    """Uniform choice among unfinished processes (the oblivious control)."""

    def __init__(self, seed: int):
        self._rng = random.Random(seed)

    def choose(self, view: AdversaryView) -> int:
        candidates = view.unfinished()
        return candidates[self._rng.randrange(len(candidates))]


class SiftKillerAdversary(AdaptiveAdversary):
    """A content-aware strategy tuned against Algorithm 2.

    Ordering rules, strongest first:

    1. run any process about to *read an empty register* — it keeps its own
       persona, so no sifting happens;
    2. after a write to register X, run exactly one process that will read
       X — it adopts the value just written, and pairing each write with a
       single distinct reader spreads *different* personae to different
       readers instead of letting one writer convert many;
    3. otherwise run a writer.

    This inspects both pending operation kinds and register *contents*, so
    it models the content-aware adversary the paper's Section 5 warns
    about; the oblivious floor does not apply to it (experiment E18).
    """

    def __init__(self):
        self._last_write_target = None

    def choose(self, view: AdversaryView) -> int:
        candidates = view.unfinished()
        if not candidates:
            raise SimulationError("adversary consulted with no runnable process")
        empty_readers = []
        busy_readers = []
        writers = []
        for pid in candidates:
            operation = view.pending_operation(pid)
            kind = None if operation is None else operation.kind
            if kind in ("read", "scan", "maxread"):
                target = getattr(operation.obj, "value", None)
                if target is None:
                    empty_readers.append(pid)
                else:
                    busy_readers.append((pid, operation.obj))
            else:
                writers.append(pid)
        if empty_readers:
            return empty_readers[0]
        if self._last_write_target is not None:
            for pid, obj in busy_readers:
                if obj is self._last_write_target:
                    self._last_write_target = None
                    return pid
        if writers:
            chosen = writers[0]
            operation = view.pending_operation(chosen)
            self._last_write_target = operation.obj
            return chosen
        return busy_readers[0][0] if busy_readers else candidates[0]


#: Named adaptive strategies, for experiment sweeps and fuzz scenarios.
ADAPTIVE_FAMILIES = (
    "pending-reads",
    "pending-writes",
    "longest-first",
    "shortest-first",
    "random-adaptive",
    "sift-killer",
)

_READ_KINDS = ("read", "scan", "maxread")
_WRITE_KINDS = ("write", "update", "maxwrite")


def make_adaptive(name: str, seed: int = 0) -> AdaptiveAdversary:
    """Build the named adaptive strategy (see :data:`ADAPTIVE_FAMILIES`)."""
    if name == "pending-reads":
        return PendingKindAdversary(_READ_KINDS)
    if name == "pending-writes":
        return PendingKindAdversary(_WRITE_KINDS)
    if name == "longest-first":
        return LongestFirstAdversary()
    if name == "shortest-first":
        return ShortestFirstAdversary()
    if name == "random-adaptive":
        return RandomAdaptiveAdversary(seed)
    if name == "sift-killer":
        return SiftKillerAdversary()
    raise ConfigurationError(
        f"unknown adaptive adversary {name!r}; choose from {ADAPTIVE_FAMILIES}"
    )


@dataclass(frozen=True)
class AdaptiveSpec:
    """A serializable, hashable description of one adaptive adversary.

    The adaptive counterpart of
    :class:`~repro.workloads.schedules.ScheduleSpec`: pins the strategy
    name and its private seed so a fuzz scenario that used an adaptive
    adversary replays identically from its JSON form.
    """

    name: str
    seed: int = 0

    _JSON_VERSION = 1

    def __post_init__(self) -> None:
        if self.name not in ADAPTIVE_FAMILIES:
            raise ConfigurationError(
                f"unknown adaptive adversary {self.name!r}; choose from "
                f"{ADAPTIVE_FAMILIES}"
            )

    def build(self) -> AdaptiveAdversary:
        """Construct a fresh adversary instance (strategies are stateful)."""
        return make_adaptive(self.name, self.seed)

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": self._JSON_VERSION,
            "name": self.name,
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "AdaptiveSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"adaptive spec JSON must be an object, got {type(data).__name__}"
            )
        if data.get("version") != cls._JSON_VERSION:
            raise ConfigurationError(
                f"unsupported adaptive spec version {data.get('version')!r}; "
                f"this build reads version {cls._JSON_VERSION}"
            )
        return cls(name=str(data["name"]), seed=int(data.get("seed", 0)))


def run_adaptive_programs(
    programs: Sequence[Program],
    adversary: AdaptiveAdversary,
    seeds: SeedTree,
    *,
    inputs: Optional[Sequence[Any]] = None,
    record_trace: bool = False,
    step_limit: int = 50_000_000,
    hooks: Sequence[StepHook] = (),
    skip_guard: Optional[int] = None,
) -> RunResult:
    """Execute programs under an adaptive adversary.

    The loop mirrors :class:`repro.runtime.simulator.Simulator` but asks the
    adversary for the next pid at every step instead of consuming a fixed
    schedule.  Since the adversary only picks among runnable processes,
    runs always complete (subject to ``step_limit``).

    ``hooks`` attaches the same :class:`~repro.runtime.faults.StepHook`
    instances the oblivious simulator takes — fault injectors may crash a
    process (it disappears from the adversary's view) or withhold slots,
    and invariant monitors observe every charged step, so the full monitor
    suite rides along adaptive runs too.  One difference: adaptive runs
    have no :class:`~repro.runtime.simulator.Simulator`, so ``on_run_start``
    is not emitted.  ``skip_guard`` bounds consecutive withheld slots
    (default ``max(10_000, 1_000 * n)``) — an adversary that keeps naming a
    stalled process would otherwise spin forever.
    """
    # Local import: simulator imports faults, and the note helper lives with
    # the other hook plumbing there.
    from repro.runtime.simulator import _note_hook_failure

    n = len(programs)
    if inputs is not None and len(inputs) != n:
        raise SimulationError(
            f"got {len(inputs)} inputs for {n} programs; they must match"
        )
    algorithm_seeds = seeds.child("algorithm")
    processes: Dict[int, Process] = {}
    for pid, program in enumerate(programs):
        context = ProcessContext(
            pid=pid,
            n=n,
            rng=algorithm_seeds.child(f"process-{pid}").rng(),
            input_value=None if inputs is None else inputs[pid],
        )
        processes[pid] = Process(context, program)

    steps: Dict[int, int] = {pid: 0 for pid in processes}
    trace = TraceRecorder() if record_trace else None
    crashed: Set[int] = set()
    guard = skip_guard if skip_guard is not None else max(10_000, 1_000 * n)
    hooks = list(hooks)

    def emit(stage: str, *args: Any, pid: Optional[int] = None,
             step: Optional[int] = None) -> None:
        for hook in hooks:
            try:
                getattr(hook, stage)(*args)
            except BaseException as error:
                _note_hook_failure(error, hook, stage, pid=pid, global_step=step)
                raise

    for process in processes.values():
        process.start()
        if process.finished:
            emit("on_finish", process.pid, process.output, pid=process.pid)

    view = AdversaryView(processes, steps, crashed)
    step_index = 0
    consecutive_skips = 0
    while view.unfinished():
        pid = adversary.choose(view)
        process = processes[pid]
        if process.finished or pid in crashed:
            raise SimulationError(
                f"adaptive adversary chose unrunnable process {pid}"
            )
        action: Optional[str] = None
        for hook in hooks:
            try:
                decision = hook.before_step(
                    pid, steps[pid], step_index, process.pending_operation
                )
            except BaseException as error:
                _note_hook_failure(error, hook, "before_step",
                                   pid=pid, global_step=step_index)
                raise
            if decision == CRASH:
                action = CRASH
                break
            if decision == SKIP:
                action = SKIP
        if action == CRASH:
            crashed.add(pid)
            emit("on_crash", pid, steps[pid], pid=pid)
            continue
        if action == SKIP:
            consecutive_skips += 1
            if consecutive_skips >= guard:
                raise ScheduleExhaustedError(
                    f"adaptive run appears starved: {guard} consecutive "
                    "slots were withheld by fault injection",
                    unfinished_pids=view.unfinished(),
                    steps_by_pid=steps,
                )
            continue
        consecutive_skips = 0
        operation = process.pending_operation
        intercepted = None
        for hook in hooks:
            try:
                intercepted = hook.intercept(pid, operation)
            except BaseException as error:
                _note_hook_failure(error, hook, "intercept",
                                   pid=pid, global_step=step_index)
                raise
            if intercepted is not None:
                break
        if intercepted is not None:
            result = intercepted.value
        else:
            result = operation.obj.apply(operation, pid)
        steps[pid] += 1
        if trace is not None:
            trace.record(
                TraceEvent(
                    step=step_index,
                    pid=pid,
                    kind=operation.kind,
                    obj_name=operation.obj.name,
                    value=getattr(operation, "value", None),
                    result=result,
                )
            )
        emit("after_step", pid, step_index, operation, result,
             pid=pid, step=step_index)
        process.complete_step(result)
        if process.finished:
            emit("on_finish", pid, process.output, pid=pid, step=step_index)
        step_index += 1
        if step_index > step_limit:
            raise StepLimitExceededError(
                f"adaptive run exceeded step limit {step_limit}",
                unfinished_pids=view.unfinished(),
                steps_by_pid=steps,
            )

    outputs = {
        pid: process.output
        for pid, process in processes.items()
        if process.finished
    }
    result = RunResult(
        n=n,
        outputs=outputs,
        steps_by_pid=dict(steps),
        completed=not crashed and len(outputs) == n,
        trace=trace,
        crashed=frozenset(crashed),
    )
    emit("on_run_end", result)
    return result
