"""Oblivious-adversary schedules.

A schedule is a (possibly infinite) sequence of process ids, fixed before the
execution starts.  The oblivious adversary of the paper is exactly this: it
may know the protocol and ``n``, but not the algorithm's coin flips, so a
schedule here is constructed from its own random stream (or no randomness at
all) and never observes execution state.

The classes below form a small gallery of adversary strategies used by the
test suite and the benchmark harness:

- :class:`RoundRobinSchedule` — the fully synchronous adversary;
- :class:`ReversedRoundRobinSchedule` — round-robin with reversed id order,
  which stresses view-ordering assumptions;
- :class:`PermutedRoundRobinSchedule` — lockstep passes with a fresh uniform
  pid permutation per pass (the randomized adversary the vectorized backend
  can batch);
- :class:`InterleavedLockstepSchedule` — windows of two slots per process,
  uniformly shuffled, so two-operation rounds see partial views while
  staying lockstep;
- :class:`RandomSchedule` — uniform random interleaving;
- :class:`BlockSchedule` — each scheduled process runs a burst of consecutive
  steps, approximating "solo runs" that make early snapshots small;
- :class:`FrontRunnerSchedule` — one process runs far ahead before the rest
  start, the classic worst case for leader-style protocols;
- :class:`CrashSchedule` — wraps another schedule and stops scheduling a set
  of processes after a step budget, modelling crash failures (wait-freedom
  means the survivors must still terminate);
- :class:`StutterSchedule` — repeats each slot of a base schedule, creating
  long per-process runs with the base schedule's structure;
- :class:`ExplicitSchedule` — a literal list of pids, for targeted tests.

All schedules are reusable: ``iter(schedule)`` always restarts from the
beginning, so the same adversary can be replayed against different coin
flips.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.runtime.rng import SeedTree

__all__ = [
    "Schedule",
    "ExplicitSchedule",
    "RoundRobinSchedule",
    "ReversedRoundRobinSchedule",
    "PermutedRoundRobinSchedule",
    "InterleavedLockstepSchedule",
    "RandomSchedule",
    "BlockSchedule",
    "FrontRunnerSchedule",
    "CrashSchedule",
    "StutterSchedule",
]


def _check_n(n: int) -> int:
    if n < 1:
        raise ConfigurationError(f"a schedule needs at least one process, got n={n}")
    return n


class Schedule:
    """Base class: an iterable of process ids fixed in advance.

    Subclasses implement :meth:`__iter__`.  Iteration must be deterministic
    for a given constructed instance so that runs are reproducible and the
    schedule is genuinely oblivious (it cannot react to the execution).
    """

    n: int

    def __iter__(self) -> Iterator[int]:
        raise NotImplementedError

    def take(self, count: int) -> List[int]:
        """Return the first ``count`` slots, for inspection and tests."""
        return list(itertools.islice(iter(self), count))


class ExplicitSchedule(Schedule):
    """A finite schedule given as a literal sequence of pids.

    Explicit schedules are value objects: two instances with the same slots
    and the same ``n`` are equal and hash alike, and :meth:`to_json` /
    :meth:`from_json` round-trip them exactly.  The fuzzer's regression
    corpus relies on both properties for deduplication and replay.
    """

    _JSON_VERSION = 1

    def __init__(self, slots: Sequence[int], n: Optional[int] = None):
        self.slots = list(slots)
        inferred = (max(self.slots) + 1) if self.slots else 1
        self.n = _check_n(n if n is not None else inferred)
        for pid in self.slots:
            if not 0 <= pid < self.n:
                raise ConfigurationError(f"pid {pid} out of range for n={self.n}")

    def __iter__(self) -> Iterator[int]:
        return iter(self.slots)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExplicitSchedule):
            return NotImplemented
        return self.n == other.n and self.slots == other.slots

    def __hash__(self) -> int:
        return hash((self.n, tuple(self.slots)))

    def __repr__(self) -> str:
        return f"ExplicitSchedule({self.slots!r}, n={self.n})"

    def to_json(self) -> Dict[str, object]:
        """A plain-JSON description that :meth:`from_json` restores exactly."""
        return {
            "version": self._JSON_VERSION,
            "kind": "explicit",
            "n": self.n,
            "slots": list(self.slots),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ExplicitSchedule":
        """Rebuild a schedule from :meth:`to_json` output.

        Rejects unknown versions/kinds with
        :class:`~repro.errors.ConfigurationError` so a future format change
        cannot be silently misread as today's.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"explicit schedule JSON must be an object, got {type(data).__name__}"
            )
        if data.get("version") != cls._JSON_VERSION:
            raise ConfigurationError(
                f"unsupported explicit schedule version {data.get('version')!r}; "
                f"this build reads version {cls._JSON_VERSION}"
            )
        if data.get("kind") != "explicit":
            raise ConfigurationError(
                f"expected kind 'explicit', got {data.get('kind')!r}"
            )
        return cls(list(data["slots"]), n=int(data["n"]))


class RoundRobinSchedule(Schedule):
    """Processes take turns in id order: 0, 1, ..., n-1, 0, 1, ...

    With ``rounds=None`` the schedule is infinite (the adversary never
    starves anyone); otherwise it ends after ``rounds`` full passes.
    """

    def __init__(self, n: int, rounds: Optional[int] = None):
        self.n = _check_n(n)
        self.rounds = rounds

    def __iter__(self) -> Iterator[int]:
        passes = itertools.count() if self.rounds is None else range(self.rounds)
        for _ in passes:
            for pid in range(self.n):
                yield pid


class ReversedRoundRobinSchedule(Schedule):
    """Round-robin in decreasing id order: n-1, ..., 1, 0, n-1, ..."""

    def __init__(self, n: int, rounds: Optional[int] = None):
        self.n = _check_n(n)
        self.rounds = rounds

    def __iter__(self) -> Iterator[int]:
        passes = itertools.count() if self.rounds is None else range(self.rounds)
        for _ in passes:
            for pid in range(self.n - 1, -1, -1):
                yield pid


class PermutedRoundRobinSchedule(Schedule):
    """Lockstep passes, each a fresh uniform permutation of all pids.

    Every process takes exactly one step per pass, but the order *within*
    each pass is drawn uniformly at random from the schedule's private seed.
    This is the richest adversary whose executions still factorize into
    per-pass operation orders, which is what the vectorized backend needs
    to run trials as batched array operations; see
    :mod:`repro.runtime.vectorized`.
    """

    def __init__(self, n: int, seed: int):
        self.n = _check_n(n)
        self.seed = seed

    def __iter__(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        pids = list(range(self.n))
        while True:
            rng.shuffle(pids)
            yield from list(pids)


class InterleavedLockstepSchedule(Schedule):
    """Windows of two slots per process, uniformly shuffled within a window.

    Each window contains every pid exactly twice, in a uniform random
    arrangement of the 2n slots.  Unlike plain (or permuted) round-robin,
    one process's *second* operation of a window can land before another's
    *first*, so two-operation rounds (snapshot update/scan) see genuinely
    partial views — permuted round-robin degenerates there, because every
    scan pass follows a complete update pass.  Still lockstep enough for
    the vectorized backend to batch.
    """

    def __init__(self, n: int, seed: int):
        self.n = _check_n(n)
        self.seed = seed

    def __iter__(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        window = [pid for pid in range(self.n) for _ in range(2)]
        while True:
            rng.shuffle(window)
            yield from list(window)


class RandomSchedule(Schedule):
    """Infinite uniform random interleaving drawn from a private seed.

    The seed is fixed at construction time, so the sequence of slots is a
    function of the seed alone — the adversary flips its own coins but never
    sees the algorithm's.
    """

    def __init__(self, n: int, seed: int):
        self.n = _check_n(n)
        self.seed = seed

    def __iter__(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        while True:
            yield rng.randrange(self.n)


class BlockSchedule(Schedule):
    """Random interleaving of per-process bursts of ``block_size`` steps."""

    def __init__(self, n: int, block_size: int, seed: int):
        self.n = _check_n(n)
        if block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size
        self.seed = seed

    def __iter__(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        while True:
            pid = rng.randrange(self.n)
            for _ in range(self.block_size):
                yield pid


class FrontRunnerSchedule(Schedule):
    """One process runs ``lead_steps`` solo, then round-robin over everyone.

    This is the adversary that maximizes the chance that a single persona
    fills the shared objects before anyone else moves.
    """

    def __init__(self, n: int, leader: int = 0, lead_steps: Optional[int] = None):
        self.n = _check_n(n)
        if not 0 <= leader < n:
            raise ConfigurationError(f"leader {leader} out of range for n={n}")
        self.leader = leader
        self.lead_steps = lead_steps if lead_steps is not None else 4 * n

    def __iter__(self) -> Iterator[int]:
        for _ in range(self.lead_steps):
            yield self.leader
        for pid in itertools.cycle(range(self.n)):
            yield pid


class CrashSchedule(Schedule):
    """Stop scheduling selected processes after per-process step budgets.

    ``crashes`` maps pid -> number of slots that pid receives before it is
    never scheduled again.  Crashed processes simply stop taking steps, which
    is exactly how crash failures manifest in an asynchronous schedule.
    """

    def __init__(self, base: Schedule, crashes: Dict[int, int]):
        self.base = base
        self.n = base.n
        for pid, budget in crashes.items():
            if not 0 <= pid < self.n:
                raise ConfigurationError(f"crashed pid {pid} out of range")
            if budget < 0:
                raise ConfigurationError(f"negative crash budget for pid {pid}")
        self.crashes = dict(crashes)

    def __iter__(self) -> Iterator[int]:
        remaining = dict(self.crashes)
        for pid in self.base:
            if pid in remaining:
                if remaining[pid] == 0:
                    continue
                remaining[pid] -= 1
            yield pid


class StutterSchedule(Schedule):
    """Repeat every slot of a base schedule ``repeat`` times."""

    def __init__(self, base: Schedule, repeat: int):
        if repeat < 1:
            raise ConfigurationError(f"repeat must be >= 1, got {repeat}")
        self.base = base
        self.n = base.n
        self.repeat = repeat

    def __iter__(self) -> Iterator[int]:
        for pid in self.base:
            for _ in range(self.repeat):
                yield pid


class LimitedSchedule(Schedule):
    """Truncate a base schedule after ``max_slots`` slots.

    Turns an infinite adversary into a finite one, which is how starvation
    scenarios (e.g. crash failures) are run: combine with
    ``Simulator.run(allow_partial=True)`` so surviving processes' outputs
    can still be inspected.
    """

    def __init__(self, base: Schedule, max_slots: int):
        if max_slots < 0:
            raise ConfigurationError(f"max_slots must be >= 0, got {max_slots}")
        self.base = base
        self.n = base.n
        self.max_slots = max_slots

    def __iter__(self) -> Iterator[int]:
        return itertools.islice(iter(self.base), self.max_slots)


__all__.append("LimitedSchedule")


def standard_gallery(n: int, seeds: SeedTree) -> Dict[str, Schedule]:
    """The named family of adversaries used across tests and benchmarks.

    Returns a dict mapping a human-readable adversary name to a schedule for
    ``n`` processes.  All randomized members draw their seeds from disjoint
    branches of ``seeds``.
    """
    gallery: Dict[str, Schedule] = {
        "round-robin": RoundRobinSchedule(n),
        "reversed": ReversedRoundRobinSchedule(n),
        "random": RandomSchedule(n, seeds.child("random").seed),
        "blocks-4": BlockSchedule(n, 4, seeds.child("blocks-4").seed),
        "front-runner": FrontRunnerSchedule(n),
    }
    if n > 1:
        half = {pid: 1 for pid in range(n // 2)}
        gallery["crash-half"] = CrashSchedule(
            RandomSchedule(n, seeds.child("crash-half").seed), half
        )
    return gallery


__all__.append("standard_gallery")
