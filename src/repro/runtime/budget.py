"""Wall-clock deadlines and per-run budget hooks.

Adversarial campaigns (the chaos fuzzer, the worst-schedule search) explore
scenario spaces that contain pathological members on purpose.  A campaign
must never hang on one of them: every unit of work runs under a *budget*,
and exhausting a budget is an ordinary, recordable outcome
(:class:`~repro.errors.BudgetExceededError`), not a protocol verdict.

Two budget dimensions are enforced:

- **steps** — deterministic, part of a scenario's identity, enforced by the
  simulator's ``step_limit`` and the
  :class:`~repro.runtime.monitors.WaitFreedomWatchdog`; exceeding it *is*
  protocol evidence (a termination violation);
- **wall clock** — a machine-dependent safety valve enforced by
  :class:`Deadline` / :class:`WallClockBudgetHook`; exceeding it says
  nothing about the protocol, only that this host gave up.

Keeping the two separate is what lets seeded campaigns stay deterministic:
the oracle verdicts depend only on step budgets, while wall-clock deadlines
merely bound how long a host will wait for them.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import BudgetExceededError, ConfigurationError
from repro.runtime.faults import StepHook
from repro.runtime.operations import Operation

__all__ = ["Deadline", "WallClockBudgetHook"]


class Deadline:
    """A wall-clock budget measured from construction time.

    ``Deadline(None)`` never expires, so callers can thread one object
    through unconditionally.  ``remaining()`` is clamped at 0.
    """

    def __init__(self, seconds: Optional[float], *, clock=time.monotonic):
        if seconds is not None and seconds <= 0:
            raise ConfigurationError(
                f"deadline must be positive (or None), got {seconds}"
            )
        self.seconds = seconds
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self._start

    def remaining(self) -> Optional[float]:
        """Seconds left, clamped at 0; ``None`` for an unbounded deadline."""
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - self.elapsed())

    def expired(self) -> bool:
        """True once the budget has run out."""
        return self.seconds is not None and self.elapsed() >= self.seconds

    def check(self, what: str = "work") -> None:
        """Raise :class:`BudgetExceededError` if the budget has run out."""
        if self.expired():
            raise BudgetExceededError(
                f"{what} exceeded its wall-clock budget of "
                f"{self.seconds:.3g}s (elapsed {self.elapsed():.3g}s)"
            )


class WallClockBudgetHook(StepHook):
    """A :class:`StepHook` that aborts a run when its deadline expires.

    The clock is only consulted every ``check_every`` charged steps, so the
    hook costs almost nothing on the hot path.  The raise happens in
    ``before_step``, i.e. *between* atomic operations, so the aborted run
    never leaves a shared object half-applied.
    """

    def __init__(self, deadline: Deadline, *, check_every: int = 256):
        if check_every < 1:
            raise ConfigurationError(
                f"check_every must be >= 1, got {check_every}"
            )
        self.deadline = deadline
        self.check_every = check_every
        self._since_check = 0

    def before_step(
        self,
        pid: int,
        process_steps: int,
        global_steps: int,
        operation: Optional[Operation],
    ) -> Optional[str]:
        self._since_check += 1
        if self._since_check >= self.check_every:
            self._since_check = 0
            self.deadline.check("simulated run")
        return None
