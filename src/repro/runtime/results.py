"""Run results: outputs, step accounting, and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set

from repro.runtime.trace import TraceRecorder

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """The outcome of one simulated execution.

    Attributes:
        n: number of processes.
        outputs: pid -> return value, for processes that finished.
        steps_by_pid: pid -> number of charged steps (shared-memory
            operations executed).  Slots granted to finished processes are
            free and not counted, per the model in Section 1.1.
        completed: True if every process finished.
        trace: the full operation trace, if recording was enabled.
        crashed: pids fail-stopped by fault injection during the run
            (empty for fault-free executions).
        metrics: the :class:`~repro.obs.metrics.MetricsRegistry` populated
            during the run, when the caller requested metrics collection
            (``None`` otherwise — collection is strictly opt-in).
    """

    n: int
    outputs: Dict[int, Any]
    steps_by_pid: Dict[int, int]
    completed: bool
    trace: Optional[TraceRecorder] = None
    annotations: Dict[str, Any] = field(default_factory=dict)
    crashed: FrozenSet[int] = frozenset()
    metrics: Optional[Any] = None

    @property
    def survivors(self) -> Set[int]:
        """Pids that were not crashed by fault injection."""
        return {pid for pid in self.steps_by_pid if pid not in self.crashed}

    @property
    def survivors_completed(self) -> bool:
        """True if every non-crashed process finished — the wait-free bar."""
        return all(pid in self.outputs for pid in self.survivors)

    @property
    def total_steps(self) -> int:
        """Total charged steps across all processes."""
        return sum(self.steps_by_pid.values())

    @property
    def max_individual_steps(self) -> int:
        """The worst-case individual step count over all processes."""
        if not self.steps_by_pid:
            return 0
        return max(self.steps_by_pid.values())

    @property
    def decided_values(self) -> Set[Any]:
        """The set of distinct output values among finished processes."""
        return set(self.outputs.values())

    @property
    def agreement(self) -> bool:
        """True if all finished processes returned the same value.

        An execution with no finished processes vacuously agrees; callers
        checking probabilistic agreement should also check :attr:`completed`.
        """
        return len(self.decided_values) <= 1

    def output_list(self) -> List[Any]:
        """Outputs ordered by pid (finished processes only)."""
        return [self.outputs[pid] for pid in sorted(self.outputs)]

    def validity_holds(self, inputs: Dict[int, Any]) -> bool:
        """Check the validity condition against the given input assignment."""
        allowed = set(inputs.values())
        return all(value in allowed for value in self.outputs.values())

    def summary(self) -> str:
        """One-line human-readable summary for logs and examples."""
        return (
            f"n={self.n} completed={self.completed} "
            f"distinct_outputs={len(self.decided_values)} "
            f"total_steps={self.total_steps} "
            f"max_individual={self.max_individual_steps}"
        )
