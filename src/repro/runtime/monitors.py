"""Inline invariant monitors: check safety/liveness properties as runs execute.

Monitors are :class:`~repro.runtime.faults.StepHook` subclasses that watch
every charged step and every process completion, and flag violations of the
properties the paper proves:

- :class:`ValidityMonitor` — every decided value is some process's input
  (validity, Theorems 1-3);
- :class:`AdoptCommitCoherenceMonitor` — once any process commits ``v``,
  every other process leaves the object with value ``v`` (coherence,
  Section 1.2);
- :class:`WaitFreedomWatchdog` — every surviving (non-crashed) process
  decides within its step budget, the operational reading of wait-freedom;
- :class:`RegisterSemanticsMonitor` — a read of an atomic register returns
  the most recently written value.  Always true in the simulator's
  sequential execution, so any violation proves an *injected* out-of-model
  fault (or a broken object emulation) reached the protocol — this is the
  detector the lossy/stale :class:`~repro.runtime.faults.RegisterFault`
  calibration faults must trip.

In ``strict`` mode (the default) a violation raises
:class:`~repro.errors.ProtocolViolationError` at the offending step, so the
failing execution halts while its state is still inspectable.  With
``strict=False`` violations are recorded on ``monitor.violations`` and the
run continues — the mode fault sweeps use to count how often an invariant
breaks across trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Set

from repro.errors import ConfigurationError, ProtocolViolationError
from repro.runtime.faults import StepHook
from repro.runtime.operations import Operation, Read, Write

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.simulator import Simulator

__all__ = [
    "AdoptCommitCoherenceMonitor",
    "InvariantMonitor",
    "InvariantViolation",
    "RegisterSemanticsMonitor",
    "ValidityMonitor",
    "WaitFreedomWatchdog",
]


@dataclass(frozen=True)
class InvariantViolation:
    """One detected invariant breach."""

    monitor: str
    pid: Optional[int]
    message: str

    def __str__(self) -> str:
        subject = f"pid {self.pid}: " if self.pid is not None else ""
        return f"[{self.monitor}] {subject}{self.message}"


class InvariantMonitor(StepHook):
    """Base class: violation bookkeeping shared by every monitor.

    ``metrics`` optionally names a
    :class:`~repro.obs.metrics.MetricsRegistry`; every violation then also
    increments ``monitor.violations{monitor=<name>}``, so lenient-mode
    sweeps produce inspectable numbers instead of only exception notes.
    """

    name = "invariant"

    def __init__(self, *, strict: bool = True, metrics: Optional[Any] = None):
        self.strict = strict
        self.metrics = metrics
        self.violations: List[InvariantViolation] = []

    @property
    def ok(self) -> bool:
        """True while no violation has been observed."""
        return not self.violations

    def _violate(self, message: str, pid: Optional[int] = None) -> None:
        violation = InvariantViolation(self.name, pid, message)
        self.violations.append(violation)
        if self.metrics is not None:
            self.metrics.counter("monitor.violations", monitor=self.name).inc()
        if self.strict:
            raise ProtocolViolationError(str(violation))


class ValidityMonitor(InvariantMonitor):
    """Every finished process's output must be one of the allowed inputs."""

    name = "validity"

    def __init__(
        self,
        allowed_inputs: Iterable[Any],
        *,
        strict: bool = True,
        metrics: Optional[Any] = None,
    ):
        super().__init__(strict=strict, metrics=metrics)
        self.allowed = list(allowed_inputs)

    def on_finish(self, pid: int, output: Any) -> None:
        # Duck-typed unwrap for adopt-commit style outputs carrying .value.
        value = getattr(output, "value", output) if hasattr(output, "committed") else output
        if not any(value == allowed for allowed in self.allowed):
            self._violate(
                f"decided {value!r}, which is not among the inputs "
                f"{self.allowed!r}",
                pid=pid,
            )


class AdoptCommitCoherenceMonitor(InvariantMonitor):
    """If any process commits ``v``, every outcome must carry value ``v``.

    Expects process outputs shaped like
    :class:`repro.adoptcommit.base.AdoptCommitResult` (duck-typed on the
    ``committed``/``value`` attributes); outputs without those attributes
    are ignored, so the monitor can ride along runs whose processes return
    bare values.
    """

    name = "adopt-commit-coherence"

    def __init__(self, *, strict: bool = True, metrics: Optional[Any] = None):
        super().__init__(strict=strict, metrics=metrics)
        self._committed: Dict[int, Any] = {}
        self._outcomes: Dict[int, Any] = {}

    def on_finish(self, pid: int, output: Any) -> None:
        if not hasattr(output, "committed") or not hasattr(output, "value"):
            return
        self._outcomes[pid] = output.value
        if output.committed:
            self._committed[pid] = output.value
        committed_values = set(self._committed.values())
        if len(committed_values) > 1:
            self._violate(
                f"two different values committed: {sorted(map(repr, committed_values))}",
                pid=pid,
            )
            return
        if committed_values:
            (winner,) = committed_values
            for other_pid, value in self._outcomes.items():
                if value != winner:
                    self._violate(
                        f"pid {other_pid} left with {value!r} although "
                        f"{winner!r} was committed",
                        pid=pid,
                    )
                    return


class WaitFreedomWatchdog(InvariantMonitor):
    """Every surviving process must decide within ``step_budget`` steps.

    Crashed processes are exempt (they are the faults, not the victims of
    them); a survivor that exceeds the budget without finishing is exactly
    a wait-freedom violation under the run's schedule.

    With a ``metrics`` registry attached, the watchdog also reports what
    it observed — ``monitor.wait_freedom.steps_to_decide`` (histogram,
    per finished process), ``monitor.wait_freedom.undecided_steps``
    (histogram, per process left undecided at run end), and
    ``monitor.wait_freedom.step_budget`` (the configured budget) — so a
    lenient-mode sweep yields inspectable numbers, not just exception
    notes.
    """

    name = "wait-freedom"

    def __init__(
        self,
        step_budget: int,
        *,
        strict: bool = True,
        metrics: Optional[Any] = None,
    ):
        super().__init__(strict=strict, metrics=metrics)
        if step_budget < 1:
            raise ConfigurationError(
                f"step_budget must be >= 1, got {step_budget}"
            )
        self.step_budget = step_budget
        self._steps: Dict[int, int] = {}
        self._finished: Set[int] = set()
        self._crashed: Set[int] = set()
        self._flagged: Set[int] = set()

    def after_step(
        self, pid: int, step_index: int, operation: Operation, result: Any
    ) -> None:
        count = self._steps.get(pid, 0) + 1
        self._steps[pid] = count
        if (
            count > self.step_budget
            and pid not in self._finished
            and pid not in self._crashed
            and pid not in self._flagged
        ):
            self._flagged.add(pid)
            self._violate(
                f"executed {count} steps without deciding "
                f"(budget {self.step_budget})",
                pid=pid,
            )

    def on_run_start(self, simulator: "Simulator") -> None:
        if self.metrics is not None:
            self.metrics.counter("monitor.wait_freedom.step_budget").inc(
                self.step_budget
            )

    def on_finish(self, pid: int, output: Any) -> None:
        self._finished.add(pid)
        if self.metrics is not None:
            self.metrics.histogram(
                "monitor.wait_freedom.steps_to_decide"
            ).observe(self._steps.get(pid, 0))

    def on_crash(self, pid: int, steps_taken: int) -> None:
        self._crashed.add(pid)

    def on_run_end(self, result: Any) -> None:
        if self.metrics is None:
            return
        for pid, count in sorted(self._steps.items()):
            if pid in self._finished or pid in self._crashed:
                continue
            self.metrics.histogram(
                "monitor.wait_freedom.undecided_steps"
            ).observe(count)


class RegisterSemanticsMonitor(InvariantMonitor):
    """Reads of registers must return a value their declared model allows.

    With no declared model (the default), registers are atomic: a read
    must return the last value written.  The simulator executes operations
    sequentially, so for genuine atomic registers this invariant holds by
    construction; a violation therefore proves that an out-of-model fault
    (lossy write, stale read) or a broken object emulation altered what
    the protocol observed.

    Passing ``model=`` (a :class:`~repro.memory.semantics.RegisterModel`)
    calibrates the monitor to a *declared* weakening: it mirrors the
    resolver's contention-window bookkeeping, so reads the model permits
    (the pre-write value, inside the window, by a non-writer) stay silent
    while reads the model does **not** permit — staleness outside the
    window, a writer failing to read its own write, a value that was never
    written at all — still fire.  Under a declared ``safe`` model,
    in-window contended reads are unchecked (safe registers may return
    anything), but out-of-window reads remain held to atomicity.

    Objects are tracked by name from the first write the monitor sees;
    reads before any observed write are unchecked (the initial value is
    unknown to the monitor).
    """

    name = "register-semantics"

    def __init__(
        self,
        *,
        strict: bool = True,
        metrics: Optional[Any] = None,
        model: Optional[Any] = None,
    ):
        super().__init__(strict=strict, metrics=metrics)
        if model is not None and getattr(model, "is_atomic", False):
            model = None  # a declared atomic model is the default contract
        self.model = model
        self._last_write: Dict[str, Any] = {}
        self._previous_write: Dict[str, Any] = {}
        self._last_writer: Dict[str, int] = {}
        self._reads_since_write: Dict[str, int] = {}

    def _allowed(self, name: str, pid: int, result: Any) -> bool:
        """Whether ``result`` is permitted for this read under the model."""
        expected = self._last_write[name]
        if result == expected:
            return True
        if self.model is None:
            return False
        in_window = self._reads_since_write[name] < self.model.window
        contended = in_window and self._last_writer[name] != pid
        if not contended:
            return False
        if self.model.kind == "safe":
            return True  # anything goes inside a safe contention window
        # Regular: only the immediately-previous value is permitted, and
        # only when the monitor has seen that value written (an unknown
        # pre-first-write value is represented as an absent key, in which
        # case the old value is the unknown initial and goes unchecked).
        if name not in self._previous_write:
            return True
        return bool(result == self._previous_write[name])

    def after_step(
        self, pid: int, step_index: int, operation: Operation, result: Any
    ) -> None:
        name = operation.obj.name
        if isinstance(operation, Write):
            if name in self._last_write:
                self._previous_write[name] = self._last_write[name]
            self._last_write[name] = operation.value
            self._last_writer[name] = pid
            self._reads_since_write[name] = 0
        elif isinstance(operation, Read) and name in self._last_write:
            if not self._allowed(name, pid, result):
                declared = (
                    "atomic" if self.model is None else self.model.kind
                )
                self._violate(
                    f"read of {name!r} returned {result!r} but the last "
                    f"write was {self._last_write[name]!r} — {declared} "
                    "register semantics violated",
                    pid=pid,
                )
            self._reads_since_write[name] = (
                self._reads_since_write.get(name, 0) + 1
            )
