"""O(1)-memory streaming schedule samplers for the lockstep families.

The classic schedule gallery (:mod:`repro.runtime.scheduler`) materializes
per-pass state — :class:`~repro.runtime.scheduler.PermutedRoundRobinSchedule`
shuffles a ``list(range(n))`` every pass and
:class:`~repro.runtime.scheduler.InterleavedLockstepSchedule` a ``2n``-slot
window — which is invisible at experiment sizes but allocates gigabytes and
burns a full Fisher–Yates per pass once ``n`` reaches the million-process
regime.  This module re-expresses the same *families* as pure functions:

    ``pid_at(step)``  —  the pid of global slot ``step``, computed from
    ``(seed, step)`` alone in O(1) time and memory.

Two groups, with different fidelity guarantees:

- **Drop-in identical**: :class:`StreamingRoundRobinSchedule` and
  :class:`StreamingReversedSchedule` emit *bit-identical* slot streams to
  the materialized ``round-robin`` / ``reversed`` classes (property-tested
  at small ``n``), because those orders are already closed-form.
- **Same family, new sampler**: :class:`StreamingPermutedSchedule`,
  :class:`StreamingInterleavedSchedule`, and
  :class:`StreamingRandomSchedule` sample the same *distribution class*
  (fresh uniform-ish pass permutations / shuffled double windows / iid
  uniform slots) from a seeded Feistel permutation or hash instead of a
  ``random.Random`` Fisher–Yates.  Exact bit-identity to the
  ``random.Random`` stream is impossible without materializing the array
  (Fisher–Yates is inherently stateful), so these are registered as *new*
  schedule families (``streaming-*`` in
  :mod:`repro.workloads.schedules`) rather than silently changing the
  existing ones.  Their property tests pin them to a *materialized
  reference* instead: building each pass's permutation as an explicit
  list through the same PRP yields the identical slot stream, and every
  pass is a true permutation (each pid exactly once, or exactly twice for
  the interleaved windows, second occurrence after the first).

The permutation primitive is a 4-round balanced Feistel network over
``2k``-bit blocks (``k = ceil(bits(N)/2)``) with round keys derived by a
splitmix64-style mixer from ``(seed, pass)``, cycle-walked down to the
domain ``[0, N)``.  A Feistel network is a bijection by construction, so
each pass order is a genuine permutation; cycle-walking preserves that
while restricting to the domain.  It is not cryptographic and does not
need to be — the adversary only needs its coins to be independent of the
algorithm's, which seeding from a disjoint :class:`SeedTree` branch
already guarantees.

Schedules are oblivious by construction: every slot is a function of the
construction-time seed, never of execution state.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.runtime.scheduler import Schedule

__all__ = [
    "FeistelPermutation",
    "StreamingRoundRobinSchedule",
    "StreamingReversedSchedule",
    "StreamingPermutedSchedule",
    "StreamingInterleavedSchedule",
    "StreamingRandomSchedule",
]

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """The splitmix64 finalizer: a fast, well-dispersed 64-bit mixer."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _check_n(n: int) -> int:
    if n < 1:
        raise ConfigurationError(
            f"a schedule needs at least one process, got n={n}"
        )
    return n


class FeistelPermutation:
    """A seeded bijection on ``[0, domain)`` evaluated point-wise in O(1).

    4-round balanced Feistel over the smallest even-bit block covering the
    domain, cycle-walking out-of-domain points back through the network.
    The expected walk length is below 4 (the block is at most 4x the
    domain), so ``apply`` is O(1) amortized with no table.
    """

    ROUNDS = 4

    def __init__(self, domain: int, seed: int):
        if domain < 1:
            raise ConfigurationError(
                f"permutation domain must be >= 1, got {domain}"
            )
        self.domain = domain
        self.seed = seed
        half_bits = max(1, (max(domain - 1, 1).bit_length() + 1) // 2)
        self._half_bits = half_bits
        self._half_mask = (1 << half_bits) - 1
        self._block = 1 << (2 * half_bits)
        self._keys = tuple(
            _mix64((seed << 3) ^ round_index ^ 0xA5A5A5A5A5A5A5A5)
            for round_index in range(self.ROUNDS)
        )

    def _encrypt(self, value: int) -> int:
        left = value >> self._half_bits
        right = value & self._half_mask
        for key in self._keys:
            left, right = (
                right,
                left ^ (_mix64(right ^ key) & self._half_mask),
            )
        return (left << self._half_bits) | right

    def apply(self, index: int) -> int:
        """The image of ``index``; raises on out-of-domain input."""
        if not 0 <= index < self.domain:
            raise ConfigurationError(
                f"index {index} outside permutation domain [0, {self.domain})"
            )
        value = self._encrypt(index)
        while value >= self.domain:  # cycle-walk back into the domain
            value = self._encrypt(value)
        return value

    def table(self) -> List[int]:
        """The full permutation as a list — O(domain), tests only."""
        return [self.apply(index) for index in range(self.domain)]


class _StreamingSchedule(Schedule):
    """Base for pure-function schedules: ``pid_at`` drives iteration."""

    def pid_at(self, step: int) -> int:
        """The pid of global slot ``step`` — pure in ``(self, step)``."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[int]:
        for step in itertools.count():
            yield self.pid_at(step)


class StreamingRoundRobinSchedule(_StreamingSchedule):
    """Round-robin as a pure function: bit-identical to the materialized
    :class:`~repro.runtime.scheduler.RoundRobinSchedule` stream."""

    def __init__(self, n: int, rounds: Optional[int] = None):
        self.n = _check_n(n)
        self.rounds = rounds

    def pid_at(self, step: int) -> int:
        return step % self.n

    def __iter__(self) -> Iterator[int]:
        steps = (
            itertools.count() if self.rounds is None
            else range(self.rounds * self.n)
        )
        for step in steps:
            yield self.pid_at(step)


class StreamingReversedSchedule(_StreamingSchedule):
    """Reversed round-robin as a pure function: bit-identical to the
    materialized :class:`~repro.runtime.scheduler.ReversedRoundRobinSchedule`."""

    def __init__(self, n: int, rounds: Optional[int] = None):
        self.n = _check_n(n)
        self.rounds = rounds

    def pid_at(self, step: int) -> int:
        return self.n - 1 - (step % self.n)

    def __iter__(self) -> Iterator[int]:
        steps = (
            itertools.count() if self.rounds is None
            else range(self.rounds * self.n)
        )
        for step in steps:
            yield self.pid_at(step)


class StreamingPermutedSchedule(_StreamingSchedule):
    """Lockstep passes, each a fresh seeded Feistel permutation of the pids.

    Slot ``step`` belongs to pass ``step // n`` at offset ``step % n``; the
    pid is the pass's permutation applied to the offset.  Same family as
    :class:`~repro.runtime.scheduler.PermutedRoundRobinSchedule` (every
    process takes exactly one step per pass, pass orders drawn from the
    schedule's private seed) in O(1) memory per slot.
    """

    def __init__(self, n: int, seed: int):
        self.n = _check_n(n)
        self.seed = seed
        self._pass_index: Optional[int] = None
        self._pass_prp: Optional[FeistelPermutation] = None

    def _permutation(self, pass_index: int) -> FeistelPermutation:
        # One-entry memo: iteration walks passes in order, so re-deriving
        # round keys per slot would be the only cost above the hash work.
        # Purity is preserved — the memo caches a pure function's value.
        if pass_index != self._pass_index:
            self._pass_prp = FeistelPermutation(
                self.n, _mix64(self.seed ^ (pass_index << 1) ^ 0x5EED)
            )
            self._pass_index = pass_index
        assert self._pass_prp is not None
        return self._pass_prp

    def pid_at(self, step: int) -> int:
        return self._permutation(step // self.n).apply(step % self.n)


class StreamingInterleavedSchedule(_StreamingSchedule):
    """Shuffled double windows (each pid twice per ``2n`` slots) in O(1).

    Window ``step // 2n`` is a Feistel permutation of the ``2n`` half-slots;
    half-slot ``2p`` and ``2p + 1`` both map to pid ``p``, so each window
    schedules every pid exactly twice in a seeded uniform-ish arrangement —
    the same family as
    :class:`~repro.runtime.scheduler.InterleavedLockstepSchedule`, where one
    process's second operation can precede another's first.
    """

    def __init__(self, n: int, seed: int):
        self.n = _check_n(n)
        self.seed = seed
        self._window_index: Optional[int] = None
        self._window_prp: Optional[FeistelPermutation] = None

    def _permutation(self, window_index: int) -> FeistelPermutation:
        if window_index != self._window_index:
            self._window_prp = FeistelPermutation(
                2 * self.n,
                _mix64(self.seed ^ (window_index << 1) ^ 0x1A7E),
            )
            self._window_index = window_index
        assert self._window_prp is not None
        return self._window_prp

    def pid_at(self, step: int) -> int:
        width = 2 * self.n
        return self._permutation(step // width).apply(step % width) // 2


class StreamingRandomSchedule(_StreamingSchedule):
    """Iid uniform-ish slots from a hash of ``(seed, step)``.

    The pid is ``hash * n >> 64`` (Lemire's multiply-shift range map) on a
    splitmix64-mixed 64-bit word, so each slot is uniform up to a modulo
    bias below ``n / 2**64`` — unobservable at any feasible ``n`` — and
    independent across steps to the mixer's quality.  Same family as
    :class:`~repro.runtime.scheduler.RandomSchedule` without its sequential
    ``random.Random`` state.
    """

    def __init__(self, n: int, seed: int):
        self.n = _check_n(n)
        self.seed = seed

    def pid_at(self, step: int) -> int:
        return (_mix64((self.seed << 1) ^ _mix64(step)) * self.n) >> 64
