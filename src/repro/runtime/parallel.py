"""Parallel sharded trial engine with deterministic seed partitioning.

Experiment sweeps are embarrassingly parallel: every trial is a pure
function of ``(master_seed, trial_index)`` because all randomness flows
through a :class:`~repro.runtime.rng.SeedTree` branch named by the trial
index.  This module exploits that purity: it shards a trial range across
``multiprocessing`` workers and reassembles the per-trial outcomes **in
trial-index order**, so results are bit-identical to a serial run no matter
the worker count, the chunk size, or OS scheduling jitter.

Design rules that make the engine deterministic:

- a trial's seed derives from its *index*, never from which worker or chunk
  executed it (the caller's task must already obey this; the runners in
  :mod:`repro.analysis.experiments` do);
- workers return compact per-trial outcome records, and the coordinator
  reorders them by index before aggregating, so floating-point reductions
  happen in exactly the serial order;
- chunking only affects scheduling, never semantics.

The engine degrades gracefully: with ``workers <= 1``, on platforms without
the ``fork`` start method, or when invoked re-entrantly from inside a worker,
it runs trials in-process with zero multiprocessing overhead.  Hung or
failing chunks are retried in fresh pools under capped *full-jitter*
exponential backoff (:class:`~repro.runtime.backoff.BackoffPolicy` — the
same policy object the service layer applies to per-session worker
retries); the jitter stream is seeded from the sweep's ``run_key``, so
retry timing is a deterministic function of the sweep's identity.  Chunks
that keep failing are *quarantined* (the rest of the sweep still completes
and is journaled) and the run then fails loudly — with
:class:`~repro.errors.StepLimitExceededError` for timeouts, or the chunk's
own exception for task errors.

Crash safety: pass ``checkpoint_path`` (plus a ``run_key`` describing the
sweep) and every completed chunk is appended to an
append-only, hash-chained :class:`~repro.runtime.checkpoint.CheckpointJournal`.
A killed sweep re-invoked with the same arguments replays journaled chunks
and executes only the remainder; because aggregation is by trial index, the
resumed result is bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError, StepLimitExceededError
from repro.runtime.backoff import BackoffPolicy
from repro.runtime.checkpoint import CheckpointJournal

__all__ = [
    "MAX_RETRY_BACKOFF",
    "ParallelConfig",
    "available_workers",
    "default_chunk_size",
    "get_default_parallelism",
    "iter_chunks",
    "parallelism",
    "resolve_workers",
    "retry_backoff_policy",
    "run_indexed_trials",
    "set_default_parallelism",
    "supports_fork",
]

#: Chunks handed out per worker when no chunk size is given; several chunks
#: per worker smooths out trials with uneven runtimes.
_CHUNKS_PER_WORKER = 4

#: Hard cap on any single retry backoff sleep, in seconds.
MAX_RETRY_BACKOFF = 30.0


def retry_backoff_policy(base: float) -> BackoffPolicy:
    """The chunk-retry backoff policy for a given base delay.

    Exposed so tests (and the service layer's documentation) can pin the
    exact policy the trial engine applies: full jitter, ×2 growth, capped
    at :data:`MAX_RETRY_BACKOFF`.
    """
    return BackoffPolicy(base=base, multiplier=2.0, max_delay=MAX_RETRY_BACKOFF)


def supports_fork() -> bool:
    """Whether this platform offers the ``fork`` start method.

    The engine relies on ``fork`` so that worker processes inherit the task
    callable (which may be a closure over protocol factories) without
    pickling it.  Without ``fork`` the engine falls back to in-process
    execution, which is always correct, just serial.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def available_workers() -> int:
    """Number of CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request.

    ``None`` means "use the session default" (see
    :func:`set_default_parallelism`), ``0`` means "all available CPUs", and
    negative counts are rejected.
    """
    if workers is None:
        workers = get_default_parallelism().workers
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return available_workers()
    return workers


def default_chunk_size(trials: int, workers: int) -> int:
    """Chunk size giving ~``_CHUNKS_PER_WORKER`` chunks per worker."""
    if trials < 1 or workers < 1:
        raise ConfigurationError(
            f"need trials >= 1 and workers >= 1, got {trials} and {workers}"
        )
    return max(1, math.ceil(trials / (workers * _CHUNKS_PER_WORKER)))


def iter_chunks(trials: int, chunk_size: int) -> Iterator[Tuple[int, int]]:
    """Yield half-open ``(start, stop)`` index ranges covering ``trials``."""
    if trials < 0:
        raise ConfigurationError(f"trials must be >= 0, got {trials}")
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, trials, chunk_size):
        yield start, min(start + chunk_size, trials)


@dataclass(frozen=True)
class ParallelConfig:
    """Execution knobs for :func:`run_indexed_trials`.

    Attributes:
        workers: worker process count; ``1`` runs in-process, ``0`` means
            all available CPUs.
        chunk_size: trials dispatched per work unit; ``None`` picks
            :func:`default_chunk_size`.  Never affects results.
        timeout: seconds to wait for any single chunk before declaring its
            worker hung; ``None`` waits forever.
        retries: how many times incomplete chunks are re-dispatched in a
            fresh pool before they are quarantined and the run fails.
        backoff: delay *ceiling* in seconds before the first re-dispatch;
            the actual sleep is a seeded full-jitter draw from
            ``[0, ceiling]`` and the ceiling doubles per re-dispatch up to
            :data:`MAX_RETRY_BACKOFF` (see
            :class:`~repro.runtime.backoff.BackoffPolicy`).  ``0`` retries
            immediately (used by tests).
    """

    workers: int = 1
    chunk_size: Optional[int] = None
    timeout: Optional[float] = None
    retries: int = 1
    backoff: float = 0.25

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {self.workers}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive, got {self.timeout}"
            )
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.backoff < 0:
            raise ConfigurationError(
                f"backoff must be >= 0, got {self.backoff}"
            )


_default_config = ParallelConfig()


def get_default_parallelism() -> ParallelConfig:
    """The session-wide default :class:`ParallelConfig`."""
    return _default_config


def set_default_parallelism(config: ParallelConfig) -> ParallelConfig:
    """Replace the session default; returns the previous config.

    The default is what ``workers=None`` callers (the experiment runners,
    hence every benchmark and the ``experiments`` CLI subcommand) inherit.
    """
    global _default_config
    previous = _default_config
    _default_config = config
    return previous


@contextmanager
def parallelism(
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    backoff: Optional[float] = None,
) -> Iterator[ParallelConfig]:
    """Temporarily override the session default parallelism."""
    current = get_default_parallelism()
    overrides = {
        key: value
        for key, value in (
            ("workers", workers),
            ("chunk_size", chunk_size),
            ("timeout", timeout),
            ("retries", retries),
            ("backoff", backoff),
        )
        if value is not None
    }
    previous = set_default_parallelism(replace(current, **overrides))
    try:
        yield get_default_parallelism()
    finally:
        set_default_parallelism(previous)


# The task being executed by the current pool.  Workers are forked after
# this is set, so they inherit the callable (closures included) without any
# pickling.  It doubles as a re-entrancy guard: a task that itself calls
# run_indexed_trials runs its inner sweep in-process.
_ACTIVE_TASK: Optional[Callable[[int], Any]] = None


def _run_chunk(bounds: Tuple[int, int]) -> List[Any]:
    """Execute one chunk of trial indices inside a worker process."""
    task = _ACTIVE_TASK
    if task is None:  # pragma: no cover - unreachable under fork
        raise RuntimeError("worker forked without an active task")
    start, stop = bounds
    return [task(index) for index in range(start, stop)]


def _run_serial(task: Callable[[int], Any], trials: int) -> List[Any]:
    return [task(index) for index in range(trials)]


def run_indexed_trials(
    task: Callable[[int], Any],
    trials: int,
    *,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    backoff: Optional[float] = None,
    checkpoint_path: Optional[str] = None,
    run_key: str = "",
) -> List[Any]:
    """Evaluate ``task(0..trials-1)`` and return outcomes in index order.

    ``task`` must be a pure function of its index (all randomness derived
    from the index, e.g. via ``SeedTree(master).child(f"trial-{i}")``) and
    its return value must be picklable.  Under those conditions the result
    list is bit-identical for every worker count and chunk size.

    Parameters default to the session :class:`ParallelConfig` (see
    :func:`parallelism`).  Raises :class:`StepLimitExceededError` if chunks
    are still unfinished after ``retries`` backed-off re-dispatches, and
    re-raises the underlying exception when chunks are quarantined for
    repeatedly failing.

    With ``checkpoint_path``, every completed chunk is durably journaled
    (see :class:`~repro.runtime.checkpoint.CheckpointJournal`); re-running
    with the same arguments resumes from the journal and produces results
    bit-identical to an uninterrupted run.  ``run_key`` should describe the
    sweep's full configuration so a stale journal cannot silently pollute a
    different sweep.
    """
    if trials < 0:
        raise ConfigurationError(f"trials must be >= 0, got {trials}")
    config = get_default_parallelism()
    worker_count = resolve_workers(workers)
    if timeout is None:
        timeout = config.timeout
    if retries is None:
        retries = config.retries
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if backoff is None:
        backoff = config.backoff
    if backoff < 0:
        raise ConfigurationError(f"backoff must be >= 0, got {backoff}")
    if trials == 0:
        return []
    worker_count = min(worker_count, trials)
    serial = (
        worker_count <= 1
        or not supports_fork()
        or _ACTIVE_TASK is not None  # re-entrant call from inside a worker
    )
    if serial and checkpoint_path is None:
        return _run_serial(task, trials)
    if chunk_size is None:
        chunk_size = config.chunk_size
    if chunk_size is None:
        chunk_size = default_chunk_size(trials, worker_count)
    journal: Optional[CheckpointJournal] = None
    if checkpoint_path is not None:
        journal = CheckpointJournal.open(
            checkpoint_path, run_key=run_key, trials=trials, chunk_size=chunk_size
        )
        # The journal's original chunking wins so resumed chunk boundaries
        # line up even if today's worker count differs.
        chunk_size = journal.chunk_size
    chunks = list(iter_chunks(trials, chunk_size))
    if serial:
        outcomes = _run_chunked_serial(task, chunks, journal)
    else:
        outcomes = _run_sharded(
            task, chunks, worker_count, timeout, retries, backoff, journal,
            run_key=run_key,
        )
    return [outcome for chunk in outcomes for outcome in chunk]


def _run_chunked_serial(
    task: Callable[[int], Any],
    chunks: List[Tuple[int, int]],
    journal: Optional[CheckpointJournal],
) -> List[List[Any]]:
    """In-process execution with the same chunk/journal structure as the pool."""
    results: List[List[Any]] = []
    for start, stop in chunks:
        replayed = journal.outcomes_for(start, stop) if journal else None
        if replayed is not None:
            results.append(replayed)
            continue
        outcomes = [task(index) for index in range(start, stop)]
        if journal is not None:
            journal.record_chunk(start, stop, outcomes)
        results.append(outcomes)
    return results


def _run_sharded(
    task: Callable[[int], Any],
    chunks: List[Tuple[int, int]],
    workers: int,
    timeout: Optional[float],
    retries: int,
    backoff: float,
    journal: Optional[CheckpointJournal] = None,
    *,
    run_key: str = "",
) -> List[List[Any]]:
    """Dispatch chunks to a fork pool; retry stragglers; keep chunk order.

    Chunks that time out or raise are re-dispatched in fresh pools under
    capped full-jitter exponential backoff; the jitter stream is seeded
    from ``run_key``, so the delay sequence is a deterministic function of
    the sweep's identity (and never of wall clock or worker scheduling).
    When retries are exhausted the surviving chunks have still completed
    (and been journaled), and the run fails loudly: poison chunks re-raise
    their own exception, hung chunks raise
    :class:`StepLimitExceededError`.
    """
    global _ACTIVE_TASK
    policy = retry_backoff_policy(backoff)
    jitter = BackoffPolicy.rng(0, "parallel-retry", run_key)
    results: List[Optional[List[Any]]] = [None] * len(chunks)
    pending = []
    for index, (start, stop) in enumerate(chunks):
        replayed = journal.outcomes_for(start, stop) if journal else None
        if replayed is not None:
            results[index] = replayed
        else:
            pending.append(index)
    failures: Dict[int, BaseException] = {}
    context = multiprocessing.get_context("fork")
    _ACTIVE_TASK = task
    try:
        for attempt in range(retries + 1):
            if not pending:
                break
            if attempt > 0 and backoff > 0:
                time.sleep(policy.delay(attempt - 1, jitter))
            pool = context.Pool(processes=min(workers, len(pending)))
            try:
                handles = {
                    index: pool.apply_async(_run_chunk, (chunks[index],))
                    for index in pending
                }
                pool.close()
                incomplete: List[int] = []
                timed_out: List[int] = []
                # Journal each chunk the moment it is collected — durability
                # must not wait for the sweep's stragglers, or a mid-run kill
                # would leave nothing to resume from.
                def _collected(index: int, outcomes: List[Any]) -> None:
                    results[index] = outcomes
                    failures.pop(index, None)
                    if journal is not None:
                        start, stop = chunks[index]
                        journal.record_chunk(start, stop, outcomes)

                for index, handle in handles.items():
                    try:
                        _collected(index, handle.get(timeout))
                    except multiprocessing.TimeoutError:
                        incomplete.append(index)
                        timed_out.append(index)
                    except BaseException as error:  # the task's own exception
                        incomplete.append(index)
                        failures[index] = error
                # Chunks that finished while we were blocked on an earlier
                # straggler are ready now; salvage them before retrying.
                for index in list(timed_out):
                    if handles[index].ready():
                        try:
                            _collected(index, handles[index].get())
                            incomplete.remove(index)
                            timed_out.remove(index)
                        except BaseException as error:
                            failures[index] = error
                            timed_out.remove(index)
                pending = incomplete
            finally:
                pool.terminate()
                pool.join()
        if pending:
            quarantined = sorted(index for index in pending if index in failures)
            hung = sorted(index for index in pending if index not in failures)
            if quarantined:
                error = failures[quarantined[0]]
                error.add_note(
                    f"{len(quarantined)} of {len(chunks)} trial chunks "
                    f"quarantined as poison after {retries + 1} attempt(s); "
                    f"quarantined trial ranges: "
                    f"{[chunks[i] for i in quarantined]}; "
                    f"hung trial ranges: {[chunks[i] for i in hung]}"
                )
                raise error
            raise StepLimitExceededError(
                f"{len(hung)} of {len(chunks)} trial chunks timed out "
                f"after {retries + 1} attempt(s) with timeout={timeout}s; "
                f"unfinished trial ranges: {[chunks[i] for i in hung]}"
            )
    finally:
        _ACTIVE_TASK = None
    return results  # type: ignore[return-value]
