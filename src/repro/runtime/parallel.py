"""Parallel sharded trial engine with deterministic seed partitioning.

Experiment sweeps are embarrassingly parallel: every trial is a pure
function of ``(master_seed, trial_index)`` because all randomness flows
through a :class:`~repro.runtime.rng.SeedTree` branch named by the trial
index.  This module exploits that purity: it shards a trial range across
``multiprocessing`` workers and reassembles the per-trial outcomes **in
trial-index order**, so results are bit-identical to a serial run no matter
the worker count, the chunk size, or OS scheduling jitter.

Design rules that make the engine deterministic:

- a trial's seed derives from its *index*, never from which worker or chunk
  executed it (the caller's task must already obey this; the runners in
  :mod:`repro.analysis.experiments` do);
- workers return compact per-trial outcome records, and the coordinator
  reorders them by index before aggregating, so floating-point reductions
  happen in exactly the serial order;
- chunking only affects scheduling, never semantics.

The engine degrades gracefully: with ``workers <= 1``, on platforms without
the ``fork`` start method, or when invoked re-entrantly from inside a worker,
it runs trials in-process with zero multiprocessing overhead.  Hung workers
are bounded by a per-chunk timeout; incomplete chunks are retried in a fresh
pool and, if they still cannot finish, the engine raises
:class:`~repro.errors.StepLimitExceededError` instead of deadlocking.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError, StepLimitExceededError

__all__ = [
    "ParallelConfig",
    "available_workers",
    "default_chunk_size",
    "get_default_parallelism",
    "iter_chunks",
    "parallelism",
    "resolve_workers",
    "run_indexed_trials",
    "set_default_parallelism",
    "supports_fork",
]

#: Chunks handed out per worker when no chunk size is given; several chunks
#: per worker smooths out trials with uneven runtimes.
_CHUNKS_PER_WORKER = 4


def supports_fork() -> bool:
    """Whether this platform offers the ``fork`` start method.

    The engine relies on ``fork`` so that worker processes inherit the task
    callable (which may be a closure over protocol factories) without
    pickling it.  Without ``fork`` the engine falls back to in-process
    execution, which is always correct, just serial.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def available_workers() -> int:
    """Number of CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request.

    ``None`` means "use the session default" (see
    :func:`set_default_parallelism`), ``0`` means "all available CPUs", and
    negative counts are rejected.
    """
    if workers is None:
        workers = get_default_parallelism().workers
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return available_workers()
    return workers


def default_chunk_size(trials: int, workers: int) -> int:
    """Chunk size giving ~``_CHUNKS_PER_WORKER`` chunks per worker."""
    if trials < 1 or workers < 1:
        raise ConfigurationError(
            f"need trials >= 1 and workers >= 1, got {trials} and {workers}"
        )
    return max(1, math.ceil(trials / (workers * _CHUNKS_PER_WORKER)))


def iter_chunks(trials: int, chunk_size: int) -> Iterator[Tuple[int, int]]:
    """Yield half-open ``(start, stop)`` index ranges covering ``trials``."""
    if trials < 0:
        raise ConfigurationError(f"trials must be >= 0, got {trials}")
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, trials, chunk_size):
        yield start, min(start + chunk_size, trials)


@dataclass(frozen=True)
class ParallelConfig:
    """Execution knobs for :func:`run_indexed_trials`.

    Attributes:
        workers: worker process count; ``1`` runs in-process, ``0`` means
            all available CPUs.
        chunk_size: trials dispatched per work unit; ``None`` picks
            :func:`default_chunk_size`.  Never affects results.
        timeout: seconds to wait for any single chunk before declaring its
            worker hung; ``None`` waits forever.
        retries: how many times incomplete chunks are re-dispatched in a
            fresh pool before the run fails.
    """

    workers: int = 1
    chunk_size: Optional[int] = None
    timeout: Optional[float] = None
    retries: int = 1

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {self.workers}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive, got {self.timeout}"
            )
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {self.retries}"
            )


_default_config = ParallelConfig()


def get_default_parallelism() -> ParallelConfig:
    """The session-wide default :class:`ParallelConfig`."""
    return _default_config


def set_default_parallelism(config: ParallelConfig) -> ParallelConfig:
    """Replace the session default; returns the previous config.

    The default is what ``workers=None`` callers (the experiment runners,
    hence every benchmark and the ``experiments`` CLI subcommand) inherit.
    """
    global _default_config
    previous = _default_config
    _default_config = config
    return previous


@contextmanager
def parallelism(
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
) -> Iterator[ParallelConfig]:
    """Temporarily override the session default parallelism."""
    current = get_default_parallelism()
    overrides = {
        key: value
        for key, value in (
            ("workers", workers),
            ("chunk_size", chunk_size),
            ("timeout", timeout),
            ("retries", retries),
        )
        if value is not None
    }
    previous = set_default_parallelism(replace(current, **overrides))
    try:
        yield get_default_parallelism()
    finally:
        set_default_parallelism(previous)


# The task being executed by the current pool.  Workers are forked after
# this is set, so they inherit the callable (closures included) without any
# pickling.  It doubles as a re-entrancy guard: a task that itself calls
# run_indexed_trials runs its inner sweep in-process.
_ACTIVE_TASK: Optional[Callable[[int], Any]] = None


def _run_chunk(bounds: Tuple[int, int]) -> List[Any]:
    """Execute one chunk of trial indices inside a worker process."""
    task = _ACTIVE_TASK
    if task is None:  # pragma: no cover - unreachable under fork
        raise RuntimeError("worker forked without an active task")
    start, stop = bounds
    return [task(index) for index in range(start, stop)]


def _run_serial(task: Callable[[int], Any], trials: int) -> List[Any]:
    return [task(index) for index in range(trials)]


def run_indexed_trials(
    task: Callable[[int], Any],
    trials: int,
    *,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
) -> List[Any]:
    """Evaluate ``task(0..trials-1)`` and return outcomes in index order.

    ``task`` must be a pure function of its index (all randomness derived
    from the index, e.g. via ``SeedTree(master).child(f"trial-{i}")``) and
    its return value must be picklable.  Under those conditions the result
    list is bit-identical for every worker count and chunk size.

    Parameters default to the session :class:`ParallelConfig` (see
    :func:`parallelism`).  Raises :class:`StepLimitExceededError` if chunks
    are still unfinished after ``retries`` re-dispatches, and re-raises any
    exception the task itself raised in a worker.
    """
    if trials < 0:
        raise ConfigurationError(f"trials must be >= 0, got {trials}")
    config = get_default_parallelism()
    worker_count = resolve_workers(workers)
    if timeout is None:
        timeout = config.timeout
    if retries is None:
        retries = config.retries
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if trials == 0:
        return []
    worker_count = min(worker_count, trials)
    if (
        worker_count <= 1
        or not supports_fork()
        or _ACTIVE_TASK is not None  # re-entrant call from inside a worker
    ):
        return _run_serial(task, trials)
    if chunk_size is None:
        chunk_size = config.chunk_size
    if chunk_size is None:
        chunk_size = default_chunk_size(trials, worker_count)
    chunks = list(iter_chunks(trials, chunk_size))
    outcomes = _run_sharded(task, chunks, worker_count, timeout, retries)
    return [outcome for chunk in outcomes for outcome in chunk]


def _run_sharded(
    task: Callable[[int], Any],
    chunks: List[Tuple[int, int]],
    workers: int,
    timeout: Optional[float],
    retries: int,
) -> List[List[Any]]:
    """Dispatch chunks to a fork pool; retry stragglers; keep chunk order."""
    global _ACTIVE_TASK
    results: List[Optional[List[Any]]] = [None] * len(chunks)
    pending = list(range(len(chunks)))
    context = multiprocessing.get_context("fork")
    _ACTIVE_TASK = task
    try:
        for _attempt in range(retries + 1):
            if not pending:
                break
            pool = context.Pool(processes=min(workers, len(pending)))
            try:
                handles = {
                    index: pool.apply_async(_run_chunk, (chunks[index],))
                    for index in pending
                }
                pool.close()
                timed_out: List[int] = []
                for index, handle in handles.items():
                    try:
                        results[index] = handle.get(timeout)
                    except multiprocessing.TimeoutError:
                        timed_out.append(index)
                # Chunks that finished while we were blocked on an earlier
                # straggler are ready now; salvage them before retrying.
                for index in list(timed_out):
                    if handles[index].ready():
                        results[index] = handles[index].get()
                        timed_out.remove(index)
                pending = timed_out
            finally:
                pool.terminate()
                pool.join()
        if pending:
            raise StepLimitExceededError(
                f"{len(pending)} of {len(chunks)} trial chunks timed out "
                f"after {retries + 1} attempt(s) with timeout={timeout}s; "
                f"unfinished trial ranges: {[chunks[i] for i in pending]}"
            )
    finally:
        _ACTIVE_TASK = None
    return results  # type: ignore[return-value]
