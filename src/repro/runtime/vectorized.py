"""Vectorized mass-trial backend: thousands of independent trials as arrays.

The generator :class:`~repro.runtime.simulator.Simulator` executes one trial
at a time, one shared-memory operation per Python-level step — faithful, but
~430k steps/sec.  The paper's guarantees are statements about *ensembles* of
independent executions, and independent trials of the same algorithm under a
lockstep schedule are an embarrassingly vectorizable workload: this module
runs blocks of trials simultaneously, one NumPy array op per *round* instead
of one Python step per *operation*.

Why lockstep schedules?  A round-based algorithm's outcome is a pure
function of (a) the coins frozen into each persona and (b) the *relative
order* of same-round operations — round ``i`` only ever touches round ``i``'s
shared object.  When the schedule advances every process through the same
round window together (``round-robin``, ``reversed``, ``front-runner`` after
its prefix, ``permuted``, ``interleaved`` — see
:data:`repro.workloads.schedules.LOCKSTEP_FAMILIES`), those per-round orders
can be drawn as permutation arrays and the whole ensemble becomes batched
``take_along_axis`` / prefix-maximum kernels:

- **Algorithm 2 (sifting)**: round ``i``'s register content at any position
  is the last writer before it; readers gather the running maximum of writer
  positions and adopt that persona.
- **Algorithm 1 (snapshot)**: a process adopts the max-priority persona
  among updates ordered before its scan; scatter update keys into a
  positions window, prefix-maximize, gather at scan positions.  The
  footnote-1 max-register variant has identical adoption semantics, so both
  use the same kernel.
- **DoublingCIL**: a per-pass state machine (read / write-pending / done)
  over the single proposal register, with the same last-writer-prefix trick
  inside each pass.

Two modes, selected by the ``backend=`` parameter of the
:mod:`repro.analysis.experiments` runners:

- ``"vectorized"`` — the fast path.  Coins come from per-block
  ``numpy.random.PCG64`` streams keyed off the master seed; blocks are
  aligned to *absolute* trial indices (:data:`VECTORIZED_BLOCK_TRIALS`
  trials per block), so results are invariant to worker count, chunking,
  and the total trial count — the PR-1 by-index partitioning discipline,
  at block granularity.  Randomized schedule families here are restricted
  to the lockstep class above.
- ``"vectorized-oracle"`` — the differential-testing path.  Every trial
  consumes the *exact same* ``random.Random`` streams as the generator
  simulator (``trial_seed_tree(master, i)``, ``"schedule"`` and
  ``"algorithm"`` branches), and per-round operation orders are parsed from
  the real schedule object's slot stream.  Decisions are bit-identical to
  the generator per trial; since order parsing is generic over occurrence
  times, this mode also supports the non-lockstep ``random`` / ``blocks``
  families for sifting and snapshot.  It is slower than the generator and
  exists so ``tests/property/test_backend_equivalence.py`` can pin the fast
  kernels to the oracle.

NumPy stays an optional dependency: this module imports it lazily and
raises :class:`~repro.errors.ConfigurationError` with an install hint when
it is absent, so the zero-dependency core (and every generator-backend code
path) is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.runtime.parallel import run_indexed_trials
from repro.runtime.rng import SeedTree
from repro.workloads.schedules import make_schedule

__all__ = [
    "BACKENDS",
    "VECTOR_BACKENDS",
    "VECTORIZED_BLOCK_TRIALS",
    "VectorizedSweep",
    "numpy_available",
    "run_vectorized_sweep",
    "supported_families",
]

#: Every execution backend the experiment runners accept.
BACKENDS = ("generator", "vectorized", "vectorized-oracle")

#: The backends implemented by this module.
VECTOR_BACKENDS = ("vectorized", "vectorized-oracle")

#: Fast-mode trials per block.  This is a *seeding* constant, not a tuning
#: knob: block ``b`` covers absolute trials ``[b*B, (b+1)*B)`` and draws its
#: coins from streams keyed by ``b``, so trial ``i``'s randomness depends
#: only on ``(master_seed, i // B, i % B)`` — never on the total trial
#: count, the worker count, or chunking.  Changing it changes fast-mode
#: results, exactly like changing the master seed would.
VECTORIZED_BLOCK_TRIALS = 4096

#: Oracle-mode trials per block.  Semantically irrelevant (every trial has
#: its own streams); small so worker sharding has useful grain in tests.
_ORACLE_BLOCK_TRIALS = 8

#: Families every kernel supports in both modes: exactly one slot per
#: process per window, windows aligned across processes.
_SINGLE_SLOT_FAMILIES = ("round-robin", "reversed", "permuted")

#: Deterministic families (orders identical across trials).
_DETERMINISTIC_FAMILIES = ("round-robin", "reversed", "front-runner")

_INSTALL_HINT = (
    "backend='vectorized' requires NumPy, which is not installed; install "
    "it with `pip install numpy`, or use the default generator backend"
)


def numpy_available() -> bool:
    """True when ``import numpy`` succeeds (the backend is usable)."""
    try:
        import numpy  # noqa: F401
    except Exception:
        return False
    return True


def _require_numpy():
    try:
        import numpy
    except Exception as error:
        raise ConfigurationError(_INSTALL_HINT) from error
    return numpy


# ----- algorithm plans -------------------------------------------------------


@dataclass(frozen=True)
class _Plan:
    """Everything a kernel needs, extracted from a conciliator instance."""

    algorithm: str  # "sifting" | "snapshot" | "cil"
    n: int
    rounds: int
    ops_per_round: int
    p_schedule: Tuple[float, ...] = ()
    priority_range: int = 0
    max_iterations: int = 0

    @property
    def ops_per_process(self) -> int:
        if self.algorithm == "cil":
            return self.max_iterations + 1
        return self.rounds * self.ops_per_round


def _plan_for(conciliator: Any) -> _Plan:
    """Map a conciliator instance onto a vectorized kernel, or refuse."""
    from repro.baselines.doubling_cil import DoublingCILConciliator
    from repro.core.sifting_conciliator import SiftingConciliator
    from repro.core.snapshot_conciliator import SnapshotConciliator

    if isinstance(conciliator, SiftingConciliator):
        if conciliator.anonymous:
            raise ConfigurationError(
                "the vectorized backend tracks personae by origin id and "
                "does not support anonymous sifting; use the generator "
                "backend"
            )
        return _Plan(
            algorithm="sifting",
            n=conciliator.n,
            rounds=conciliator.rounds,
            ops_per_round=1,
            p_schedule=tuple(conciliator.p_schedule),
        )
    if isinstance(conciliator, SnapshotConciliator):
        # One update + one scan per round; the max-register variant adopts
        # by the same (priority, origin) maximum over preceding writes, so
        # it shares the kernel.  mult mirrors the kernel's key packing.
        mult = 1 << (conciliator.n - 1).bit_length() if conciliator.n > 1 else 2
        if conciliator.priority_range * mult + conciliator.n >= 2**63:
            raise ConfigurationError(
                "priority_range * n overflows the vectorized kernel's "
                "int64 adoption keys; use the generator backend"
            )
        return _Plan(
            algorithm="snapshot",
            n=conciliator.n,
            rounds=conciliator.rounds,
            ops_per_round=2,
            priority_range=conciliator.priority_range,
        )
    if isinstance(conciliator, DoublingCILConciliator):
        return _Plan(
            algorithm="cil",
            n=conciliator.n,
            rounds=conciliator.max_iterations + 1,
            ops_per_round=1,
            max_iterations=conciliator.max_iterations,
        )
    raise ConfigurationError(
        "the vectorized backend supports SiftingConciliator, "
        "SnapshotConciliator, and DoublingCILConciliator; got "
        f"{type(conciliator).__name__} — use the generator backend"
    )


def supported_families(algorithm: str, oracle: bool) -> Tuple[str, ...]:
    """Schedule families a kernel accepts in the given mode.

    The fast mode is limited to lockstep(-ish) families whose per-round
    orders it can draw directly as permutation arrays; the oracle mode
    parses orders from the real schedule's slot stream, which additionally
    admits any non-starving family for the fixed-length algorithms.  The
    CIL baseline's operation sequence is coin-dependent, so it needs strict
    one-slot-per-window alignment in both modes.
    """
    if algorithm == "cil":
        return _SINGLE_SLOT_FAMILIES
    lockstep = _SINGLE_SLOT_FAMILIES + ("interleaved", "front-runner")
    if oracle:
        return lockstep + ("random", "blocks")
    return lockstep


def _check_family(plan: _Plan, family: str, oracle: bool) -> None:
    families = supported_families(plan.algorithm, oracle)
    if family in families:
        return
    mode = "vectorized-oracle" if oracle else "vectorized"
    hint = ""
    if not oracle and family in supported_families(plan.algorithm, True):
        hint = " (backend='vectorized-oracle' supports it, slowly)"
    raise ConfigurationError(
        f"schedule family {family!r} is not lockstep-compatible with the "
        f"{plan.algorithm} kernel under backend={mode!r}; choose from "
        f"{families}{hint}, or use the generator backend"
    )


# ----- order construction ----------------------------------------------------


def _occurrence_times(schedule: Any, n: int, total_ops: int) -> List[List[int]]:
    """``times[pid][j]`` = global slot index of pid's ``j``-th charged step.

    Generic over any schedule: slots granted to a process beyond its
    ``total_ops``-th are free no-ops (the process has finished) and do not
    advance its count.  Only *relative* order matters downstream.
    """
    times = [[0] * total_ops for _ in range(n)]
    counts = [0] * n
    need = n * total_ops
    seen = 0
    guard = 1000 * need + 100_000
    for slot, pid in enumerate(iter(schedule)):
        if slot > guard:
            raise ConfigurationError(
                f"schedule starves a process: {need - seen} charged steps "
                f"still missing after {slot} slots"
            )
        count = counts[pid]
        if count < total_ops:
            times[pid][count] = slot
            counts[pid] = count + 1
            seen += 1
            if seen == need:
                break
    return times


def _orders_from_times(times: List[List[int]], rounds: int) -> List[List[int]]:
    """Per-round execution orders for one-op-per-round algorithms."""
    n = len(times)
    return [
        sorted(range(n), key=lambda pid: times[pid][r]) for r in range(rounds)
    ]


def _positions_from_times(
    times: List[List[int]], rounds: int
) -> Tuple[List[List[int]], List[List[int]]]:
    """Per-round update/scan positions (ranks in the round's 2n-op window)."""
    n = len(times)
    u_pos: List[List[int]] = []
    s_pos: List[List[int]] = []
    for r in range(rounds):
        events = [(times[pid][2 * r], 0, pid) for pid in range(n)]
        events += [(times[pid][2 * r + 1], 1, pid) for pid in range(n)]
        events.sort()
        u_row = [0] * n
        s_row = [0] * n
        for rank, (_, which, pid) in enumerate(events):
            if which == 0:
                u_row[pid] = rank
            else:
                s_row[pid] = rank
        u_pos.append(u_row)
        s_pos.append(s_row)
    return u_pos, s_pos


def _inverse_permutations(np: Any, order: Any) -> Any:
    """Positions array: ``pos[..., pid]`` = rank of ``pid`` in ``order``.

    The inverse of a permutation is its argsort; a second sort pass beats
    every scatter-based inversion numpy offers on these block shapes.
    """
    return np.argsort(order, axis=-1)


class _BlockOrders(NamedTuple):
    """Per-block operation orders, kernel-shaped."""

    orders: Any = None  # (k, passes, n) — sifting round orders / CIL passes
    u_pos: Any = None   # (k, R, n) — snapshot update positions in [0, 2n)
    s_pos: Any = None   # (k, R, n) — snapshot scan positions in [0, 2n)


def _deterministic_times(family: str, n: int, total_ops: int) -> List[List[int]]:
    """Occurrence times for a seedless family (same for every trial)."""
    schedule = make_schedule(family, n, SeedTree(0))
    return _occurrence_times(schedule, n, total_ops)


def _fast_orders(
    np: Any, rng: Any, plan: _Plan, family: str, k: int
) -> _BlockOrders:
    """Draw one block's operation orders for the fast mode.

    Each call makes a fixed sequence of draws on the block's dedicated
    ``"schedule"`` stream, leading-dimension ``k``, so a partial final block
    is a prefix of a full one (C-order fill).  Permutations come from
    argsorting uint32 keys — ties (probability ``~(2n)^2 / 2**33`` per
    window) resolve to index order, a bias far below anything observable.
    """
    n, rounds = plan.n, plan.rounds

    def uniform_keys(shape: Tuple[int, ...]) -> Any:
        return rng.integers(0, 2**32, size=shape, dtype=np.uint32)

    if family in _DETERMINISTIC_FAMILIES:
        times = _deterministic_times(family, n, plan.ops_per_process)
        if plan.algorithm == "snapshot":
            u_rows, s_rows = _positions_from_times(times, rounds)
            u = np.broadcast_to(np.asarray(u_rows), (k, rounds, n))
            s = np.broadcast_to(np.asarray(s_rows), (k, rounds, n))
            return _BlockOrders(u_pos=u, s_pos=s)
        passes = plan.ops_per_process if plan.algorithm == "cil" else rounds
        rows = (
            _window_orders_from_times(times, passes)
            if plan.algorithm == "cil"
            else _orders_from_times(times, rounds)
        )
        return _BlockOrders(
            orders=np.broadcast_to(np.asarray(rows), (k, passes, n))
        )
    if family == "permuted":
        if plan.algorithm == "snapshot":
            # Two fresh permutations per round (update pass, scan pass):
            # positions are the pass ranks, scans offset into [n, 2n).
            keys = uniform_keys((k, 2 * rounds, n))
            pos = _inverse_permutations(np, np.argsort(keys, axis=-1))
            return _BlockOrders(
                u_pos=pos[:, 0::2, :], s_pos=pos[:, 1::2, :] + n
            )
        passes = plan.ops_per_process if plan.algorithm == "cil" else rounds
        keys = uniform_keys((k, passes, n))
        return _BlockOrders(orders=np.argsort(keys, axis=-1))
    if family == "interleaved":
        # A window is a uniform shuffle of each pid twice; giving every
        # (pid, op) an iid uniform key and ranking reproduces exactly that
        # distribution, with the earlier of a pid's two ranks necessarily
        # its first operation (program order).
        windows = (rounds + 1) // 2 if plan.algorithm == "sifting" else rounds
        keys = uniform_keys((k, windows, n, 2))
        ranks = _inverse_permutations(
            np, np.argsort(keys.reshape(k, windows, 2 * n), axis=-1)
        ).reshape(k, windows, n, 2)
        # Elementwise minimum over explicit slices: reducing over a
        # length-2 trailing axis is pathologically slow in numpy.
        first = np.minimum(ranks[..., 0], ranks[..., 1])
        second = np.maximum(ranks[..., 0], ranks[..., 1])
        if plan.algorithm == "snapshot":
            return _BlockOrders(u_pos=first, s_pos=second)
        orders = np.empty((k, 2 * windows, n), dtype=np.int64)
        orders[:, 0::2, :] = np.argsort(first, axis=-1)
        orders[:, 1::2, :] = np.argsort(second, axis=-1)
        return _BlockOrders(orders=orders[:, :rounds, :])
    raise ConfigurationError(
        f"fast-mode order construction missing for family {family!r}"
    )  # pragma: no cover - guarded by _check_family


def _window_orders_from_times(
    times: List[List[int]], passes: int
) -> List[List[int]]:
    """Per-pass orders for the CIL kernel (one slot per process per pass)."""
    return _orders_from_times(times, passes)


def _oracle_orders(
    np: Any, plan: _Plan, family: str, n: int, trial_seeds: SeedTree
) -> _BlockOrders:
    """One trial's orders, parsed from the real schedule's slot stream."""
    schedule = make_schedule(family, n, trial_seeds.child("schedule"))
    times = _occurrence_times(schedule, n, plan.ops_per_process)
    if plan.algorithm == "snapshot":
        u_rows, s_rows = _positions_from_times(times, plan.rounds)
        return _BlockOrders(
            u_pos=np.asarray(u_rows)[None, :, :],
            s_pos=np.asarray(s_rows)[None, :, :],
        )
    passes = plan.ops_per_process if plan.algorithm == "cil" else plan.rounds
    rows = _orders_from_times(times, passes)
    return _BlockOrders(orders=np.asarray(rows)[None, :, :])


def _stack_orders(np: Any, per_trial: Sequence[_BlockOrders]) -> _BlockOrders:
    def cat(field: str) -> Any:
        parts = [getattr(item, field) for item in per_trial]
        return None if parts[0] is None else np.concatenate(parts, axis=0)

    return _BlockOrders(
        orders=cat("orders"), u_pos=cat("u_pos"), s_pos=cat("s_pos")
    )


# ----- coin draws ------------------------------------------------------------


class _BlockCoins(NamedTuple):
    write_bits: Any = None   # sifting: (k, R, n) bool, [.., r, origin]
    priorities: Any = None   # snapshot: (k, R, n) int64, [.., r, origin]
    cil_uniforms: Any = None  # cil: (k, n, max_iterations) float64


def _fast_coins(np: Any, rng: Any, plan: _Plan, k: int) -> _BlockCoins:
    """One block's persona coins from its dedicated ``"personas"`` stream.

    Sifting write bits are drawn as 32-bit integer threshold compares
    (``key < floor(p * 2**32)``), which quantizes each write probability to
    a multiple of ``2**-32`` — a relative error below ``2**-32``, invisible
    to any statistical test at feasible sample sizes and roughly the same
    magnitude as the float rounding already inside the ``p`` values
    themselves.  Snapshot priorities and CIL iteration uniforms are drawn
    with the exact distributions the generator uses.
    """
    n = plan.n
    if plan.algorithm == "sifting":
        keys = rng.integers(0, 2**32, size=(k, plan.rounds, n), dtype=np.uint32)
        exact = np.floor(np.asarray(plan.p_schedule) * float(2**32))
        thresholds = np.minimum(exact, float(2**32 - 1)).astype(np.uint32)
        bits = keys < thresholds[None, :, None]
        for index, value in enumerate(plan.p_schedule):
            if value >= 1.0:  # clipped above; restore the sure-write rounds
                bits[:, index, :] = True
        return _BlockCoins(write_bits=bits)
    if plan.algorithm == "snapshot":
        return _BlockCoins(priorities=rng.integers(
            1, plan.priority_range + 1, size=(k, plan.rounds, n),
            dtype=np.int64,
        ))
    return _BlockCoins(cil_uniforms=rng.random((k, n, plan.max_iterations)))


def _oracle_coins(np: Any, plan: _Plan, trial_seeds: SeedTree) -> _BlockCoins:
    """One trial's persona coins, replaying the generator's exact streams.

    Per process the generator draws, in order: sifting — one ``random()``
    per round then the combine coin; snapshot — one ``randint`` per round
    then the coin; CIL — the coin first, then one lazy ``random()`` per
    iteration.  Pre-drawing the CIL uniforms past the point the generator
    stops is invisible (the stream is private to the process and decisions
    depend only on the consumed prefix).
    """
    n = plan.n
    algorithm_seeds = trial_seeds.child("algorithm")
    if plan.algorithm == "sifting":
        bits = np.empty((1, plan.rounds, n), dtype=bool)
        for pid in range(n):
            rng = algorithm_seeds.child(f"process-{pid}").rng()
            bits[0, :, pid] = [rng.random() < p for p in plan.p_schedule]
            rng.randrange(2)  # the combine coin, unused by the decision
        return _BlockCoins(write_bits=bits)
    if plan.algorithm == "snapshot":
        prio = np.empty((1, plan.rounds, n), dtype=np.int64)
        for pid in range(n):
            rng = algorithm_seeds.child(f"process-{pid}").rng()
            prio[0, :, pid] = [
                rng.randint(1, plan.priority_range)
                for _ in range(plan.rounds)
            ]
            rng.randrange(2)
        return _BlockCoins(priorities=prio)
    uniforms = np.empty((1, n, plan.max_iterations))
    for pid in range(n):
        rng = algorithm_seeds.child(f"process-{pid}").rng()
        rng.randrange(2)  # persona coin is drawn before the loop
        uniforms[0, pid] = [rng.random() for _ in range(plan.max_iterations)]
    return _BlockCoins(cil_uniforms=uniforms)


def _stack_coins(np: Any, per_trial: Sequence[_BlockCoins]) -> _BlockCoins:
    def cat(field: str) -> Any:
        parts = [getattr(item, field) for item in per_trial]
        return None if parts[0] is None else np.concatenate(parts, axis=0)

    return _BlockCoins(
        write_bits=cat("write_bits"),
        priorities=cat("priorities"),
        cil_uniforms=cat("cil_uniforms"),
    )


# ----- kernels ---------------------------------------------------------------


def _distinct_counts(np: Any, holder: Any) -> Any:
    """Distinct persona count per trial row (the survivor variable Y_i)."""
    ordered = np.sort(holder, axis=1)
    return 1 + (ordered[:, 1:] != ordered[:, :-1]).sum(axis=1)


def _sifting_kernel(
    np: Any, coins: _BlockCoins, orders: _BlockOrders, survivors: bool
) -> Tuple[Any, Any, Optional[List[Any]]]:
    """Batched Algorithm 2: returns (holder, steps, survivor rows).

    Gathers go through precomputed *flat* indices (trial-row offsets baked
    in) rather than ``take_along_axis`` — at bench block sizes every numpy
    call is a multi-millisecond pass over the block, and 1-D fancy indexing
    is the cheapest gather/scatter numpy offers.
    """
    write_bits = coins.write_bits
    k, rounds, n = write_bits.shape
    row_base = np.arange(k, dtype=np.intp)[:, None] * n
    orders_flat = orders.orders + row_base[:, None, :]
    # Register contents ride a single running maximum: encode a write at
    # position j as j * mult + persona and a *read* as (j - n) * mult +
    # persona.  Both families are position-dominant and every write beats
    # every read, so the prefix maximum at position j is the last write
    # before j when one exists — and otherwise position j's own (reader)
    # entry, which decodes back to its own persona.  The persona is the
    # low bits either way (mod-mult arithmetic survives the negatives).
    mult = 1 << (n - 1).bit_length() if n > 1 else 2
    nmult = n * mult
    # Encoded values span (-nmult, nmult); int32 halves the memory traffic
    # of every gather and prefix pass whenever that range fits (it always
    # does at realistic n — the fallback keeps huge n correct, not fast).
    dtype = np.int32 if nmult < 2**31 else np.intp
    holder = np.tile(np.arange(n, dtype=dtype), (k, 1))
    hflat = holder.reshape(-1)
    posmult = np.arange(n, dtype=dtype) * mult
    # The persona part of the encoding (persona, minus the read penalty
    # when round r's coin says read) depends only on (round, persona), so
    # bake it into one table up front: the round loop then needs a single
    # gather where a coin gather plus a `where` select used to sit.
    adjusted = np.where(
        write_bits,
        np.arange(n, dtype=dtype),
        np.arange(n, dtype=dtype) - dtype(nmult),
    ).reshape(-1)
    adj_row = np.arange(k, dtype=np.intp)[:, None] * (rounds * n)
    series: Optional[List[Any]] = [] if survivors else None
    for r in range(rounds):
        of = orders_flat[:, r, :]
        held = hflat[of]  # persona at each schedule position
        encoded = posmult + adjusted[adj_row + (r * n + held)]
        last_write = np.maximum.accumulate(encoded, axis=1)
        hflat[of] = last_write & (mult - 1)
        if series is not None:
            series.append(_distinct_counts(np, holder))
    steps = np.full((k, n), rounds, dtype=np.int64)
    return holder, steps, series


def _snapshot_kernel(
    np: Any, coins: _BlockCoins, orders: _BlockOrders, survivors: bool
) -> Tuple[Any, Any, Optional[List[Any]]]:
    """Batched Algorithm 1: returns (holder, steps, survivor rows).

    Adoption keys pack ``(round priority, origin)`` lexicographically as
    ``priority * mult + origin`` with ``mult`` the next power of two above
    the largest origin, so the origin decodes with a bitmask instead of a
    modulo (the guard in :func:`_plan_for` keeps the product inside int64).
    """
    priorities = coins.priorities
    k, rounds, n = priorities.shape
    mult = 1 << (n - 1).bit_length()
    # Key of persona p in round r packs (priority, origin) once for every
    # (trial, round, persona) up front; the round loop gathers finished
    # keys instead of re-deriving them.  Min priority 1 keeps every key
    # strictly above the empty-slot sentinel.  As in the sifting kernel,
    # int32 halves memory traffic whenever the packed keys fit.
    peak = int(priorities.max()) * mult + n if priorities.size else 0
    dtype = np.int32 if peak < 2**31 else np.int64
    holder = np.tile(np.arange(n, dtype=dtype), (k, 1))
    keys_flat = (
        priorities * mult + np.arange(n, dtype=np.int64)
    ).reshape(-1).astype(dtype, copy=False)
    key_row = np.arange(k, dtype=np.intp)[:, None] * (rounds * n)
    window_row = np.arange(k, dtype=np.intp)[:, None] * (2 * n)
    u_flat = orders.u_pos + window_row[:, None, :]
    s_flat = orders.s_pos + window_row[:, None, :]
    window = np.empty(k * 2 * n, dtype=dtype)
    series: Optional[List[Any]] = [] if survivors else None
    for r in range(rounds):
        key = keys_flat[key_row + (r * n + holder)]
        window[:] = -1
        window[u_flat[:, r, :]] = key
        running_max = np.maximum.accumulate(window.reshape(k, 2 * n), axis=1)
        # A process's own update precedes its scan, so seen >= its own key
        # and the -1 sentinel never leaks through the mask decode.
        seen = running_max.reshape(-1)[s_flat[:, r, :]]
        holder = seen & (mult - 1)
        if series is not None:
            series.append(_distinct_counts(np, holder))
    steps = np.full((k, n), 2 * rounds, dtype=np.int64)
    return holder, steps, series


def _cil_kernel(
    np: Any, coins: _BlockCoins, orders: _BlockOrders, survivors: bool
) -> Tuple[Any, Any, Optional[List[Any]]]:
    """Batched DoublingCIL: returns (holder, steps, None).

    Per pass each live process takes one slot: a pending writer publishes
    its own persona and finishes; a reader adopts the last same-pass writer
    before its position (else the carried register), or flips its iteration
    coin and either schedules a write for its next slot or stays reading.
    The generator's charged-step accounting (one per read, one for the
    final write, nothing after finishing) falls out of the ``live`` mask.
    """
    uniforms = coins.cil_uniforms
    k, n, max_iterations = uniforms.shape
    exponents = np.arange(max_iterations, dtype=np.float64)
    p_schedule = np.minimum(1.0, (2.0 ** exponents) / (2.0 * n))
    holder = np.broadcast_to(np.arange(n), (k, n)).copy()
    steps = np.zeros((k, n), dtype=np.int64)
    # phase: 0 = reading, 1 = write pending (next slot), 2 = done
    phase = np.zeros((k, n), dtype=np.int64)
    iteration = np.zeros((k, n), dtype=np.int64)
    register = np.full((k,), -1, dtype=np.int64)
    rows = np.arange(k)[:, None]
    positions = np.arange(n)
    passes = orders.orders.shape[1]
    for pass_index in range(passes):
        if not (phase < 2).any():
            break
        order = orders.orders[:, pass_index, :]
        phase_here = np.take_along_axis(phase, order, axis=1)
        live = phase_here < 2
        writing = phase_here == 1
        writer_pos = np.where(writing, positions, -1)
        last_writer = np.maximum.accumulate(writer_pos, axis=1)
        last_writer_pid = np.take_along_axis(
            order, np.maximum(last_writer, 0), axis=1
        )
        content = np.where(last_writer >= 0, last_writer_pid, register[:, None])
        reading = phase_here == 0
        adopts = reading & (content >= 0)
        clamped = np.minimum(iteration, max_iterations - 1)
        iter_here = np.take_along_axis(clamped, order, axis=1)
        u_here = uniforms[rows, order, iter_here]
        wants_write = reading & ~adopts & (u_here < p_schedule[iter_here])
        keeps_reading = reading & ~adopts & ~wants_write
        held = np.take_along_axis(holder, order, axis=1)
        new_holder = np.where(adopts, content, held)
        new_phase = np.where(
            adopts | writing, 2, np.where(wants_write, 1, phase_here)
        )
        new_iteration = np.take_along_axis(iteration, order, axis=1) + (
            keeps_reading.astype(np.int64)
        )
        new_steps = np.take_along_axis(steps, order, axis=1) + (
            live.astype(np.int64)
        )
        np.put_along_axis(holder, order, new_holder, axis=1)
        np.put_along_axis(phase, order, new_phase, axis=1)
        np.put_along_axis(iteration, order, new_iteration, axis=1)
        np.put_along_axis(steps, order, new_steps, axis=1)
        final_writer = last_writer[:, -1]
        register = np.where(
            final_writer >= 0,
            np.take_along_axis(
                order, np.maximum(final_writer, 0)[:, None], axis=1
            )[:, 0],
            register,
        )
    if (phase < 2).any():  # pragma: no cover - p reaches 1 within the bound
        raise ConfigurationError(
            "CIL kernel failed to terminate within its pass bound"
        )
    return holder, steps, None


_KERNELS: Dict[str, Callable[..., Tuple[Any, Any, Optional[List[Any]]]]] = {
    "sifting": _sifting_kernel,
    "snapshot": _snapshot_kernel,
    "cil": _cil_kernel,
}


# ----- sweep orchestration ---------------------------------------------------


class _BlockOutcome(NamedTuple):
    """Per-block record shipped back from workers (must stay picklable)."""

    agreement: List[int]
    individual_steps: List[float]
    total_steps: List[float]
    decisions: Optional[List[Tuple[Any, ...]]]
    survivors: Optional[List[Tuple[int, ...]]]


@dataclass(frozen=True)
class VectorizedSweep:
    """The result of a vectorized mass-trial sweep.

    Per-trial vectors are ordered by absolute trial index; ``decisions``
    and ``survivor_series`` are populated only when requested (they are
    what the differential test suite compares against the generator).
    """

    kind: str
    backend: str
    schedule_family: str
    n: int
    trials: int
    agreement: Tuple[int, ...]
    individual_steps: Tuple[float, ...]
    total_steps: Tuple[float, ...]
    decisions: Optional[Tuple[Tuple[Any, ...], ...]] = None
    survivor_series: Optional[Tuple[Tuple[int, ...], ...]] = None

    @property
    def agreement_count(self) -> int:
        return sum(self.agreement)

    def stats(self) -> Any:
        """This sweep as a :class:`ConciliatorTrialStats`.

        Fields are computed with the same trial-order reductions as the
        generator runner, so an oracle-mode sweep's stats are bit-identical
        to ``run_conciliator_trials`` on the generator backend.
        """
        from repro.analysis.experiments import ConciliatorTrialStats
        from repro.analysis.stats import summarize

        return ConciliatorTrialStats(
            n=self.n,
            trials=self.trials,
            agreement_count=self.agreement_count,
            individual_steps=summarize(list(self.individual_steps)),
            total_steps=summarize(list(self.total_steps)),
            validity_failures=0,
            kind=self.kind,
        )

    def decay_series(self) -> List[float]:
        """Mean survivors per round, folded exactly like ``decay_series``."""
        if self.survivor_series is None:
            raise ConfigurationError(
                "sweep was run without collect_survivors=True"
            )
        sums: Dict[int, float] = {}
        rounds_seen = 0
        for series in self.survivor_series:
            rounds_seen = max(rounds_seen, len(series))
            for index, count in enumerate(series):
                sums[index] = sums.get(index, 0.0) + count
        return [
            sums.get(index, 0.0) / self.trials for index in range(rounds_seen)
        ]


def _canonical_value_ids(inputs: Sequence[Any]) -> List[int]:
    """Map each input slot to the first slot holding an equal value."""
    ids: List[int] = []
    for index, value in enumerate(inputs):
        match = index
        for earlier in range(index):
            if inputs[earlier] == value:
                match = earlier
                break
        ids.append(match)
    return ids


def _run_block(
    np: Any,
    plan: _Plan,
    family: str,
    oracle: bool,
    master_seed: int,
    block: int,
    block_trials: int,
    start: int,
    count: int,
    value_ids: List[int],
    inputs: List[Any],
    collect_decisions: bool,
    collect_survivors: bool,
) -> _BlockOutcome:
    """Execute one block of ``count`` trials starting at absolute ``start``."""
    from repro.analysis.experiments import trial_seed_tree

    if oracle:
        coin_rows = []
        order_rows = []
        for trial in range(start, start + count):
            trial_seeds = trial_seed_tree(master_seed, trial)
            order_rows.append(
                _oracle_orders(np, plan, family, plan.n, trial_seeds)
            )
            coin_rows.append(_oracle_coins(np, plan, trial_seeds))
        coins = _stack_coins(np, coin_rows)
        orders = _stack_orders(np, order_rows)
    else:
        root = SeedTree(master_seed).child("vectorized").child(f"block-{block}")
        coin_rng = np.random.Generator(
            np.random.PCG64(root.child("personas").seed)
        )
        order_rng = np.random.Generator(
            np.random.PCG64(root.child("schedule").seed)
        )
        coins = _fast_coins(np, coin_rng, plan, count)
        orders = _fast_orders(np, order_rng, plan, family, count)
    holder, steps, series = _KERNELS[plan.algorithm](
        np, coins, orders, collect_survivors
    )
    value_of = np.asarray(value_ids)
    decided = value_of[holder]
    agreement = (decided == decided[:, :1]).all(axis=1)
    outcome_decisions: Optional[List[Tuple[Any, ...]]] = None
    if collect_decisions:
        outcome_decisions = [
            tuple(inputs[pid] for pid in row) for row in holder.tolist()
        ]
    outcome_survivors: Optional[List[Tuple[int, ...]]] = None
    if collect_survivors:
        if series is not None:
            stacked = np.stack(series, axis=1)  # (count, rounds)
            outcome_survivors = [tuple(row) for row in stacked.tolist()]
        else:
            # Kernels without a per-round survivor notion (CIL) still owe
            # one (empty) series per trial so the container stays rectangular.
            outcome_survivors = [()] * holder.shape[0]
    return _BlockOutcome(
        agreement=[int(flag) for flag in agreement.tolist()],
        individual_steps=[float(v) for v in steps.max(axis=1).tolist()],
        total_steps=[float(v) for v in steps.sum(axis=1).tolist()],
        decisions=outcome_decisions,
        survivors=outcome_survivors,
    )


def run_vectorized_sweep(
    factory: Callable[[], Any],
    inputs: Sequence[Any],
    *,
    schedule_family: str = "permuted",
    trials: int = 100,
    master_seed: int = 0,
    oracle: bool = False,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    run_key: str = "",
    collect_decisions: bool = False,
    collect_survivors: bool = False,
) -> VectorizedSweep:
    """Run ``trials`` independent executions on the vectorized backend.

    ``factory`` must build one of the supported conciliators
    (:class:`SiftingConciliator`, :class:`SnapshotConciliator`,
    :class:`DoublingCILConciliator`); its configuration (rounds,
    probability schedule, priority range) is extracted and batched.

    Trials are grouped into blocks (:data:`VECTORIZED_BLOCK_TRIALS` in the
    fast mode) and blocks are sharded with the same index-ordered engine as
    the generator runners, so ``workers``/``chunk_size`` (here counted in
    blocks) never change results, and ``checkpoint_path`` journals finished
    blocks.  In oracle mode trial ``i`` consumes exactly the generator's
    seed streams; in the fast mode trial ``i``'s randomness depends only on
    ``(master_seed, i)`` through its block, so results are also invariant
    to the *total* trial count.
    """
    np = _require_numpy()
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    inputs = list(inputs)
    conciliator = factory()
    plan = _plan_for(conciliator)
    if plan.n != len(inputs):
        raise ConfigurationError(
            f"got {len(inputs)} inputs for a conciliator with n={plan.n}"
        )
    if plan.n < 2:
        raise ConfigurationError(
            f"a sweep needs at least 2 processes (inputs), got {plan.n}"
        )
    _check_family(plan, schedule_family, oracle)
    kind = getattr(conciliator, "name", None) or type(conciliator).__name__
    value_ids = _canonical_value_ids(inputs)
    block_trials = _ORACLE_BLOCK_TRIALS if oracle else VECTORIZED_BLOCK_TRIALS
    blocks = (trials + block_trials - 1) // block_trials

    def task(block: int) -> _BlockOutcome:
        start = block * block_trials
        count = min(block_trials, trials - start)
        return _run_block(
            np, plan, schedule_family, oracle, master_seed, block,
            block_trials, start, count, value_ids, inputs,
            collect_decisions, collect_survivors,
        )

    outcomes = run_indexed_trials(
        task,
        blocks,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_path=checkpoint_path,
        run_key=run_key,
    )
    agreement: List[int] = []
    individual: List[float] = []
    totals: List[float] = []
    decisions: List[Tuple[Any, ...]] = []
    survivors: List[Tuple[int, ...]] = []
    for outcome in outcomes:
        agreement.extend(outcome.agreement)
        individual.extend(outcome.individual_steps)
        totals.extend(outcome.total_steps)
        if outcome.decisions is not None:
            decisions.extend(outcome.decisions)
        if outcome.survivors is not None:
            survivors.extend(outcome.survivors)
    return VectorizedSweep(
        kind=kind,
        backend="vectorized-oracle" if oracle else "vectorized",
        schedule_family=schedule_family,
        n=plan.n,
        trials=trials,
        agreement=tuple(agreement),
        individual_steps=tuple(individual),
        total_steps=tuple(totals),
        decisions=tuple(decisions) if collect_decisions else None,
        survivor_series=tuple(survivors) if collect_survivors else None,
    )
