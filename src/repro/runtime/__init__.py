"""Asynchronous shared-memory runtime with an oblivious adversary.

This package is the substrate on which every protocol in the library runs.
It implements the model of Section 1.1 of the paper:

- *n* processes communicate only through shared-memory objects
  (:mod:`repro.memory`);
- an **oblivious adversary** fixes a :class:`~repro.runtime.scheduler.Schedule`
  — a sequence of process ids — before the execution starts and independently
  of any coin flips made by the processes;
- at each step the next process in the schedule executes exactly one atomic
  operation of its choosing; once a process has finished, its remaining slots
  become free no-ops that are not charged to the step complexity.

Python's GIL makes true concurrent shared-memory steps impossible (and real
threads would yield an OS-controlled, effectively *adaptive* schedule), so the
model is executed by a deterministic discrete-event simulator
(:class:`~repro.runtime.simulator.Simulator`).  Because the paper's model is
itself a sequence of atomic operations chosen by a schedule, this simulation
is exact, not an approximation: step counts are the very quantity the paper's
theorems bound.
"""

from repro.runtime.adaptive import (
    AdaptiveAdversary,
    AdversaryView,
    LongestFirstAdversary,
    PendingKindAdversary,
    RandomAdaptiveAdversary,
    ShortestFirstAdversary,
    SiftKillerAdversary,
    run_adaptive_programs,
)
from repro.runtime.adversary import (
    AdversarySpec,
    LateAdversary,
    NoisySchedulerAdversary,
    make_adversary,
)
from repro.runtime.checkpoint import CheckpointJournal
from repro.runtime.faults import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    InterceptedResult,
    RegisterFault,
    StallFault,
    StepHook,
)
from repro.runtime.monitors import (
    AdoptCommitCoherenceMonitor,
    InvariantMonitor,
    InvariantViolation,
    RegisterSemanticsMonitor,
    ValidityMonitor,
    WaitFreedomWatchdog,
)
from repro.runtime.operations import (
    MaxRead,
    MaxWrite,
    Operation,
    Read,
    Scan,
    Update,
    Write,
)
from repro.runtime.parallel import (
    ParallelConfig,
    get_default_parallelism,
    parallelism,
    run_indexed_trials,
    set_default_parallelism,
)
from repro.runtime.process import Process, ProcessContext
from repro.runtime.results import RunResult
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import (
    BlockSchedule,
    CrashSchedule,
    ExplicitSchedule,
    FrontRunnerSchedule,
    LimitedSchedule,
    RandomSchedule,
    ReversedRoundRobinSchedule,
    RoundRobinSchedule,
    Schedule,
    StutterSchedule,
)
from repro.runtime.simulator import Simulator
from repro.runtime.trace import TraceEvent, TraceRecorder

__all__ = [
    "Operation",
    "Read",
    "Write",
    "Update",
    "Scan",
    "MaxRead",
    "MaxWrite",
    "Process",
    "ProcessContext",
    "RunResult",
    "SeedTree",
    "Schedule",
    "ExplicitSchedule",
    "RoundRobinSchedule",
    "ReversedRoundRobinSchedule",
    "RandomSchedule",
    "BlockSchedule",
    "FrontRunnerSchedule",
    "CrashSchedule",
    "StutterSchedule",
    "LimitedSchedule",
    "Simulator",
    "ParallelConfig",
    "get_default_parallelism",
    "parallelism",
    "run_indexed_trials",
    "set_default_parallelism",
    "TraceEvent",
    "TraceRecorder",
    "CheckpointJournal",
    "CrashFault",
    "FaultInjector",
    "FaultPlan",
    "InterceptedResult",
    "RegisterFault",
    "StallFault",
    "StepHook",
    "AdoptCommitCoherenceMonitor",
    "InvariantMonitor",
    "InvariantViolation",
    "RegisterSemanticsMonitor",
    "ValidityMonitor",
    "WaitFreedomWatchdog",
    "AdaptiveAdversary",
    "AdversaryView",
    "PendingKindAdversary",
    "LongestFirstAdversary",
    "ShortestFirstAdversary",
    "RandomAdaptiveAdversary",
    "SiftKillerAdversary",
    "run_adaptive_programs",
    "AdversarySpec",
    "LateAdversary",
    "NoisySchedulerAdversary",
    "make_adversary",
]
