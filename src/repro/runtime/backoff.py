"""Retry backoff policy shared by the trial engine and the service layer.

Retrying a failed unit of work immediately is how transient faults become
correlated storms: every client that saw the same blip retries at the same
instant.  The standard remedy (AWS architecture blog, "Exponential Backoff
and Jitter") is *capped full-jitter exponential backoff* — the ``k``-th
retry sleeps a uniform draw from ``[0, min(max_delay, base * mult**k)]`` —
which decorrelates retriers while keeping the expected delay growing
geometrically until the cap.

:class:`BackoffPolicy` is a frozen value object so one policy instance can
be shared between layers: :mod:`repro.runtime.parallel` applies it to
chunk re-dispatches, and :mod:`repro.service` applies the same object to
per-session worker retries.  Determinism matters in both places — sweep
timing must be reproducible from seeds, and the virtual-time loadtest must
be a pure function of its master seed — so the jitter draw never touches
global randomness: callers pass an explicit ``random.Random`` (usually
built with :meth:`BackoffPolicy.rng` from a seed-tree label).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.runtime.rng import derive_seed

__all__ = ["BackoffPolicy"]

#: Jitter modes: ``full`` draws uniform [0, cap]; ``none`` sleeps the cap.
_JITTER_MODES = ("full", "none")


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with optional full jitter.

    Attributes:
        base: delay ceiling for attempt 0, in seconds.
        multiplier: geometric growth factor per attempt.
        max_delay: hard cap on the delay ceiling, in seconds.
        jitter: ``"full"`` (uniform in ``[0, cap]``, the default) or
            ``"none"`` (sleep exactly the cap — used where a test needs
            the worst case, never in production paths).
    """

    base: float = 0.25
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: str = "full"

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ConfigurationError(f"base must be >= 0, got {self.base}")
        if self.multiplier < 1:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay < 0:
            raise ConfigurationError(
                f"max_delay must be >= 0, got {self.max_delay}"
            )
        if self.jitter not in _JITTER_MODES:
            raise ConfigurationError(
                f"unknown jitter mode {self.jitter!r}; "
                f"choose from {_JITTER_MODES}"
            )

    def cap(self, attempt: int) -> float:
        """The delay ceiling for the given 0-based retry attempt."""
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        return min(self.max_delay, self.base * self.multiplier ** attempt)

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """The seconds to sleep before the given 0-based retry attempt.

        With ``jitter="full"`` the delay is ``rng.uniform(0, cap(attempt))``
        — callers must supply the ``rng`` so the draw stays deterministic;
        omitting it falls back to the un-jittered cap (identical to
        ``jitter="none"``), never to global randomness.
        """
        cap = self.cap(attempt)
        if self.jitter == "none" or rng is None or cap == 0:
            return cap
        return rng.uniform(0.0, cap)

    @staticmethod
    def rng(master_seed: int, *labels: str) -> random.Random:
        """A deterministic jitter stream for one retry context.

        A thin wrapper over :func:`repro.runtime.rng.derive_seed` so the
        jitter stream is independent of every other stream derived from
        the same master seed (the labels namespace it).
        """
        return random.Random(derive_seed(master_seed, "backoff", *labels))
