"""Deterministic randomness plumbing.

The oblivious-adversary model requires two independence properties that are
easy to violate accidentally in a simulation:

1. the adversary's schedule must be independent of every coin flipped by the
   algorithm, and
2. coins flipped by different processes (and by different rounds of the same
   persona) must be mutually independent.

Both are enforced structurally by deriving every random stream from a
:class:`SeedTree`: a master seed plus a path of string labels.  Distinct paths
give streams that are independent for all practical purposes (seeds are
derived by SHA-256, so collisions would imply a hash collision).  Schedules
are always drawn from the ``"schedule"`` branch and algorithms from the
``"algorithm"`` branch, so no amount of refactoring inside a protocol can leak
algorithm randomness into the schedule.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Tuple

__all__ = ["SeedTree", "derive_seed"]

_SEED_BYTES = 8


def derive_seed(master: int, *labels: str) -> int:
    """Derive a child seed from ``master`` and a path of labels.

    The derivation hashes the decimal master seed together with the
    NUL-separated label path, so ``derive_seed(s, "a", "b")`` and
    ``derive_seed(s, "ab")`` are distinct streams.
    """
    hasher = hashlib.sha256()
    hasher.update(str(master).encode("ascii"))
    for label in labels:
        hasher.update(b"\x00")
        hasher.update(label.encode("utf-8"))
    return int.from_bytes(hasher.digest()[:_SEED_BYTES], "big")


class SeedTree:
    """A node in a tree of deterministically derived random seeds.

    A :class:`SeedTree` is cheap to create and immutable.  Typical use::

        seeds = SeedTree(master_seed)
        schedule_rng = seeds.child("schedule").rng()
        process_rng = seeds.child("algorithm").child(f"process-{pid}").rng()

    Two trees with the same master seed and path always produce identical
    streams, which is what makes whole simulated executions reproducible
    from a single integer.
    """

    __slots__ = ("_seed", "_path")

    def __init__(self, seed: int, path: Tuple[str, ...] = ()):
        self._seed = int(seed)
        self._path = tuple(path)

    @property
    def seed(self) -> int:
        """The derived integer seed at this node."""
        if self._path:
            return derive_seed(self._seed, *self._path)
        return self._seed

    @property
    def path(self) -> Tuple[str, ...]:
        """The label path from the master seed to this node."""
        return self._path

    def child(self, label: str) -> "SeedTree":
        """Return the subtree rooted at ``label`` under this node."""
        return SeedTree(self._seed, self._path + (label,))

    def rng(self) -> random.Random:
        """Return a fresh :class:`random.Random` seeded at this node."""
        return random.Random(self.seed)

    def children(self, prefix: str, count: int) -> Iterator["SeedTree"]:
        """Yield ``count`` numbered children ``f"{prefix}-{i}"``."""
        for index in range(count):
            yield self.child(f"{prefix}-{index}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedTree(seed={self._seed}, path={'/'.join(self._path) or '<root>'})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeedTree):
            return NotImplemented
        return self._seed == other._seed and self._path == other._path

    def __hash__(self) -> int:
        return hash((self._seed, self._path))
