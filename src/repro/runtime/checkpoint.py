"""Crash-safe checkpoint journals for long experiment sweeps.

A multi-hour sweep that dies at 95% (OOM kill, pre-empted CI runner,
Ctrl-C) should not restart from zero.  :class:`CheckpointJournal` makes the
sharded trial engine resumable: every completed chunk of trials is appended
to a journal file as one JSON line carrying the pickled per-trial outcomes,
and a re-run with the same configuration replays completed chunks from the
journal and executes only the rest.  Because the engine aggregates
outcomes strictly in trial-index order, a resumed sweep is **bit-identical**
to an uninterrupted one.

Safety properties:

- **append-only + fsync**: each record is flushed and fsynced before the
  chunk is considered durable, so a SIGKILL loses at most in-flight chunks;
- **hash chain**: every record's SHA-256 covers the previous record's hash,
  so truncation in the middle, reordering, or editing is detected and
  reported as :class:`~repro.errors.CheckpointError` rather than silently
  producing wrong statistics;
- **torn tail tolerance**: a partial final line (the crash happened
  mid-append) is truncated away on open — that chunk simply re-runs;
- **configuration binding**: the header pins ``run_key`` (a caller-supplied
  description of the sweep), ``trials`` and ``chunk_size``; resuming with a
  different configuration fails loudly instead of pooling incompatible
  results.

The payload is pickled (then base64-encoded) rather than JSON-encoded so
arbitrary picklable outcome records — the engine's contract — round-trip
with their exact types.  A journal is a local, trusted artifact produced by
this library for this library; do not feed journals from untrusted sources
to :meth:`CheckpointJournal.open` (unpickling executes code).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CheckpointError

__all__ = ["CheckpointJournal"]

_VERSION = 1
_GENESIS = "0" * 64


class _NothingDurable(CheckpointError):
    """Internal: the journal file holds no complete record (torn header)."""


def _canonical(payload: Dict[str, Any]) -> bytes:
    """Canonical JSON encoding: the byte string the hash chain covers."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _chain_hash(previous: str, payload: Dict[str, Any]) -> str:
    hasher = hashlib.sha256()
    hasher.update(previous.encode("ascii"))
    hasher.update(_canonical(payload))
    return hasher.hexdigest()


def _encode_outcomes(outcomes: List[Any]) -> str:
    return base64.b64encode(pickle.dumps(outcomes, protocol=4)).decode("ascii")


def _decode_outcomes(payload: str) -> List[Any]:
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


class CheckpointJournal:
    """Append-only, hash-chained journal of completed trial chunks.

    Use :meth:`open` rather than the constructor: it creates a fresh
    journal (writing the header) or loads and verifies an existing one,
    tolerating a torn final line.

    Attributes:
        path: journal file location.
        run_key: caller-supplied sweep identity the journal is bound to.
        trials: total trial count of the sweep.
        chunk_size: chunk granularity the sweep was started with.  A resumed
            run must reuse it so chunk boundaries line up; :meth:`open`
            returns the journal's value and callers adopt it.
    """

    def __init__(
        self,
        path: str,
        run_key: str,
        trials: int,
        chunk_size: int,
        *,
        completed: Optional[Dict[Tuple[int, int], List[Any]]] = None,
        last_hash: str = _GENESIS,
    ):
        self.path = path
        self.run_key = run_key
        self.trials = trials
        self.chunk_size = chunk_size
        self._completed: Dict[Tuple[int, int], List[Any]] = dict(completed or {})
        self._last_hash = last_hash

    # ----- construction ----------------------------------------------------

    @classmethod
    def open(
        cls, path: str, *, run_key: str, trials: int, chunk_size: int
    ) -> "CheckpointJournal":
        """Create a new journal or load + verify an existing one.

        For an existing journal the header's ``run_key`` and ``trials``
        must match; ``chunk_size`` is taken from the journal (the sweep's
        original chunking wins, so resuming with different worker counts
        still lines up on the same chunk boundaries).
        """
        if os.path.exists(path) and os.path.getsize(path) > 0:
            try:
                return cls._load(path, run_key=run_key, trials=trials)
            except _NothingDurable:
                # The crash happened before even the header became durable;
                # start the journal over.
                pass
        header = {
            "kind": "header",
            "version": _VERSION,
            "run_key": run_key,
            "trials": trials,
            "chunk_size": chunk_size,
        }
        header_hash = _chain_hash(_GENESIS, header)
        journal = cls(path, run_key, trials, chunk_size, last_hash=header_hash)
        record = dict(header, hash=header_hash)
        with open(path, "w", encoding="ascii") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return journal

    @classmethod
    def _load(cls, path: str, *, run_key: str, trials: int) -> "CheckpointJournal":
        with open(path, "rb") as handle:
            raw = handle.read()
        lines = raw.split(b"\n")
        # A torn *tail* (an unterminated final line, or an unparseable final
        # record) is the signature of a crash mid-append: drop it and
        # truncate the file so future appends extend a clean prefix.  An
        # unparseable record with durable records *after* it is corruption,
        # not a crash artifact, and must fail loudly.
        valid_bytes = 0
        records: List[Dict[str, Any]] = []
        torn = False
        for index, line in enumerate(lines):
            if not line:
                continue
            terminated = index < len(lines) - 1
            record = None
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                record = None
            if record is None or not terminated:
                later = any(lines[j] for j in range(index + 1, len(lines)))
                if later:
                    raise CheckpointError(
                        f"checkpoint journal {path!r}: unreadable record "
                        f"{index} with durable records after it — the file "
                        "is corrupt, not merely torn; refusing to resume"
                    )
                torn = True
                break
            records.append(record)
            valid_bytes += len(line) + 1
        if not records:
            raise _NothingDurable(
                f"checkpoint journal {path!r} contains no durable records"
            )
        header = records[0]
        if header.get("kind") != "header" or header.get("version") != _VERSION:
            raise CheckpointError(
                f"checkpoint journal {path!r} has an unrecognized header: "
                f"{header!r}"
            )
        expected = _chain_hash(
            _GENESIS, {key: header[key] for key in header if key != "hash"}
        )
        if header.get("hash") != expected:
            raise CheckpointError(
                f"checkpoint journal {path!r}: header hash mismatch "
                "(file corrupted or edited)"
            )
        if header["run_key"] != run_key:
            raise CheckpointError(
                f"checkpoint journal {path!r} was written for run_key="
                f"{header['run_key']!r}, but this sweep is {run_key!r}; "
                "refusing to mix incompatible sweeps"
            )
        if header["trials"] != trials:
            raise CheckpointError(
                f"checkpoint journal {path!r} covers {header['trials']} "
                f"trials, but this sweep has {trials}; refusing to resume"
            )
        completed: Dict[Tuple[int, int], List[Any]] = {}
        last_hash = header["hash"]
        for index, record in enumerate(records[1:], start=1):
            if record.get("kind") != "chunk":
                raise CheckpointError(
                    f"checkpoint journal {path!r}: record {index} has "
                    f"unexpected kind {record.get('kind')!r}"
                )
            body = {key: record[key] for key in record if key != "hash"}
            if record.get("hash") != _chain_hash(last_hash, body):
                raise CheckpointError(
                    f"checkpoint journal {path!r}: integrity hash mismatch "
                    f"at record {index} (file corrupted, edited, or "
                    "truncated mid-chain)"
                )
            last_hash = record["hash"]
            bounds = (record["start"], record["stop"])
            completed[bounds] = _decode_outcomes(record["payload"])
        if torn:
            with open(path, "r+b") as handle:
                handle.truncate(valid_bytes)
        return cls(
            path,
            run_key,
            trials,
            header["chunk_size"],
            completed=completed,
            last_hash=last_hash,
        )

    # ----- recording and replay --------------------------------------------

    def record_chunk(self, start: int, stop: int, outcomes: List[Any]) -> None:
        """Durably append one completed chunk (flush + fsync)."""
        if (start, stop) in self._completed:
            return
        body = {
            "kind": "chunk",
            "start": start,
            "stop": stop,
            "payload": _encode_outcomes(list(outcomes)),
        }
        record_hash = _chain_hash(self._last_hash, body)
        record = dict(body, hash=record_hash)
        with open(self.path, "a", encoding="ascii") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._last_hash = record_hash
        self._completed[(start, stop)] = list(outcomes)

    def outcomes_for(self, start: int, stop: int) -> Optional[List[Any]]:
        """Journaled outcomes for a chunk, or ``None`` if not completed."""
        return self._completed.get((start, stop))

    @property
    def completed_chunks(self) -> Dict[Tuple[int, int], List[Any]]:
        """All journaled chunks (bounds -> outcomes), for inspection."""
        return dict(self._completed)

    @property
    def completed_trials(self) -> int:
        """How many trials the journal already covers."""
        return sum(stop - start for start, stop in self._completed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CheckpointJournal(path={self.path!r}, run_key={self.run_key!r}, "
            f"completed={self.completed_trials}/{self.trials})"
        )
