"""Declarative fault injection for simulated runs.

The paper's wait-freedom guarantees are claims about *hostile* executions:
processes may crash at any point, be starved for arbitrarily long windows,
and the survivors must still terminate.  This module turns those hostile
conditions into first-class, declarative experiment inputs instead of
ad-hoc schedule constructions:

- :class:`CrashFault` — fail-stop a chosen process after a chosen number of
  charged steps (in-model: equivalent to the adversary never scheduling the
  process again);
- :class:`StallFault` — starve a process for a window of the execution
  (in-model: the adversary withholds its slots);
- :class:`RegisterFault` — **out-of-model** register misbehaviour (lossy
  writes, stale reads) used to prove that the invariant monitors in
  :mod:`repro.runtime.monitors` catch real bugs.  Because these faults step
  outside the atomic-register model the paper assumes, a
  :class:`FaultPlan` containing them must be constructed with
  ``allow_out_of_model=True``; experiments using them are detector
  calibration, never reproduction evidence.

A :class:`FaultPlan` is immutable and reusable; :meth:`FaultPlan.injector`
builds a fresh stateful :class:`FaultInjector` (a :class:`StepHook`) for
each run, which the :class:`~repro.runtime.simulator.Simulator` consults at
every scheduled slot.  Crash and stall triggers are functions of charged
step counts only, so a faulted run remains a deterministic function of
``(programs, inputs, schedule, seed tree, plan)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runtime.operations import Operation, Read, Write

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.runtime.results import RunResult
    from repro.runtime.simulator import Simulator

__all__ = [
    "CRASH",
    "EXECUTE",
    "SKIP",
    "CrashFault",
    "FaultInjector",
    "FaultPlan",
    "InterceptedResult",
    "RegisterFault",
    "ResponseDelayFault",
    "ServiceFaultController",
    "ServiceFaultPlan",
    "ShardBlackoutFault",
    "StallFault",
    "StepHook",
    "WorkerKillFault",
]

# Slot decisions a hook may return from :meth:`StepHook.before_step`.
EXECUTE = "execute"
SKIP = "skip"
CRASH = "crash"


class StepHook:
    """Observer/interceptor interface the simulator consults at every step.

    Fault injectors and invariant monitors both subclass this.  All methods
    are no-ops by default, so a hook overrides only what it needs.  Hooks
    must not touch shared objects directly: they observe operations and
    results, and may only influence execution through the documented return
    values (``before_step`` slot decisions and ``intercept`` overrides).
    """

    def on_run_start(self, simulator: "Simulator") -> None:
        """Called once before the first slot is consumed."""

    def before_step(
        self,
        pid: int,
        process_steps: int,
        global_steps: int,
        operation: Optional[Operation],
    ) -> Optional[str]:
        """Decide what happens to this slot.

        Args:
            pid: the scheduled process.
            process_steps: charged steps ``pid`` has executed so far.
            global_steps: charged steps executed by everyone so far.
            operation: the operation ``pid`` would execute.

        Returns ``None`` (or :data:`EXECUTE`) to let the step run,
        :data:`SKIP` to withhold the slot (starvation), or :data:`CRASH` to
        fail-stop the process permanently.
        """
        return None

    def intercept(
        self, pid: int, operation: Operation
    ) -> Optional["InterceptedResult"]:
        """Optionally replace the operation's execution entirely.

        Returning an :class:`InterceptedResult` prevents the target object
        from being touched and delivers ``.value`` to the process instead —
        this is how out-of-model register faults are realized.  Returning
        ``None`` executes the operation normally.
        """
        return None

    def after_step(
        self, pid: int, step_index: int, operation: Operation, result: Any
    ) -> None:
        """Called after each charged step with the (possibly faulty) result."""

    def on_skip(self, pid: int, global_steps: int) -> None:
        """Called when a slot is withheld (stalled) by fault injection.

        Free no-op slots of finished or crashed processes do not trigger
        this — they are not events in the model, merely slots the
        adversary wasted.
        """

    def on_crash(self, pid: int, steps_taken: int) -> None:
        """Called once when a process is fail-stopped by a fault."""

    def on_finish(self, pid: int, output: Any) -> None:
        """Called once when a process finishes with its output value."""

    def on_run_end(self, result: "RunResult") -> None:
        """Called once with the final :class:`RunResult`."""


@dataclass(frozen=True)
class InterceptedResult:
    """Wrapper distinguishing "replace the result with X" from "no opinion"."""

    value: Any


@dataclass(frozen=True)
class CrashFault:
    """Fail-stop ``pid`` after it has executed ``after_steps`` charged steps.

    ``after_steps=0`` crashes the process before it takes any step.  A crash
    is in-model: it is indistinguishable from an adversary that stops
    scheduling the process, which is exactly how crash failures manifest in
    an asynchronous system.
    """

    pid: int
    after_steps: int = 0

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise ConfigurationError(f"crash pid must be >= 0, got {self.pid}")
        if self.after_steps < 0:
            raise ConfigurationError(
                f"after_steps must be >= 0, got {self.after_steps}"
            )


@dataclass(frozen=True)
class StallFault:
    """Starve ``pid`` while the global charged-step count is in a window.

    The window is ``[start_step, start_step + duration)`` measured in steps
    charged to *any* process; while it is open, slots granted to ``pid``
    are withheld.  In-model: the adversary simply schedules around the
    process for a while.
    """

    pid: int
    start_step: int
    duration: int

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise ConfigurationError(f"stall pid must be >= 0, got {self.pid}")
        if self.start_step < 0:
            raise ConfigurationError(
                f"start_step must be >= 0, got {self.start_step}"
            )
        if self.duration < 1:
            raise ConfigurationError(
                f"duration must be >= 1, got {self.duration}"
            )


#: Register fault kinds: drop a write on the floor / serve a stale read.
LOSSY_WRITE = "lossy-write"
STALE_READ = "stale-read"
_REGISTER_FAULT_KINDS = (LOSSY_WRITE, STALE_READ)


@dataclass(frozen=True)
class RegisterFault:
    """Out-of-model register misbehaviour, for detector calibration only.

    ``kind`` is ``"lossy-write"`` (the matching write is silently dropped;
    the writer still believes it succeeded) or ``"stale-read"`` (the
    matching read returns the value the register held *before* its most
    recent write — the weak behaviour regular registers permit, which
    Hadzilacos–Hu–Toueg show breaks naive consensus protocols).

    ``obj_name`` selects target objects by substring match against the
    shared object's name.  ``op_index`` picks which matching operation
    (0-based, counted per fault) misbehaves and ``count`` how many
    consecutive matching operations after it do too.

    ``stale-read`` is the targeted, one-shot form of what the declarative
    register-model layer (:class:`~repro.memory.semantics.RegisterModel`
    with ``kind="regular"``) now expresses for whole runs; the value a
    stale read serves is defined once, in
    :func:`repro.memory.semantics.stale_value`, and this fault delegates
    to it.  The constructor remains fully supported — existing fault
    plans replay byte-identically.
    """

    kind: str
    obj_name: str
    op_index: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _REGISTER_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown register fault kind {self.kind!r}; "
                f"choose from {_REGISTER_FAULT_KINDS}"
            )
        if not self.obj_name:
            raise ConfigurationError("obj_name must be a non-empty pattern")
        if self.op_index < 0:
            raise ConfigurationError(
                f"op_index must be >= 0, got {self.op_index}"
            )
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, composable bundle of faults for one run.

    In-model faults (crashes, stalls) compose freely.  Out-of-model
    register faults must be explicitly opted into with
    ``allow_out_of_model=True``, which keeps reproduction sweeps honest: a
    plan that could produce physically-impossible executions cannot be
    built by accident.
    """

    crashes: Tuple[CrashFault, ...] = ()
    stalls: Tuple[StallFault, ...] = ()
    register_faults: Tuple[RegisterFault, ...] = ()
    allow_out_of_model: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stalls", tuple(self.stalls))
        object.__setattr__(self, "register_faults", tuple(self.register_faults))
        if self.register_faults and not self.allow_out_of_model:
            raise ConfigurationError(
                "register faults violate the atomic-register model; pass "
                "allow_out_of_model=True to confirm this plan is for "
                "detector calibration, not reproduction evidence"
            )
        seen_crashes = set()
        for crash in self.crashes:
            if crash.pid in seen_crashes:
                raise ConfigurationError(
                    f"pid {crash.pid} has more than one crash fault"
                )
            seen_crashes.add(crash.pid)

    #: JSON format version written by :meth:`to_json`.
    _JSON_VERSION = 1

    @property
    def crashed_pids(self) -> Tuple[int, ...]:
        """Pids this plan fail-stops, in ascending order."""
        return tuple(sorted(crash.pid for crash in self.crashes))

    @property
    def is_in_model(self) -> bool:
        """True when every fault is expressible as adversary scheduling."""
        return not self.register_faults

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (self.crashes or self.stalls or self.register_faults)

    def injector(self) -> "FaultInjector":
        """Build a fresh stateful injector for one run."""
        return FaultInjector(self)

    def to_json(self) -> Dict[str, Any]:
        """A plain-JSON description that :meth:`from_json` restores exactly.

        Plans are value objects (frozen dataclasses), so the round trip
        preserves equality and hashing — the properties the fuzzer's corpus
        uses to deduplicate minimized reproducers.
        """
        return {
            "version": self._JSON_VERSION,
            "crashes": [
                {"pid": crash.pid, "after_steps": crash.after_steps}
                for crash in self.crashes
            ],
            "stalls": [
                {
                    "pid": stall.pid,
                    "start_step": stall.start_step,
                    "duration": stall.duration,
                }
                for stall in self.stalls
            ],
            "register_faults": [
                {
                    "kind": fault.kind,
                    "obj_name": fault.obj_name,
                    "op_index": fault.op_index,
                    "count": fault.count,
                }
                for fault in self.register_faults
            ],
            "allow_out_of_model": self.allow_out_of_model,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output.

        Unknown versions are rejected with
        :class:`~repro.errors.ConfigurationError`; every fault re-runs its
        own validation, so a hand-edited corpus case cannot smuggle in an
        out-of-model fault without the explicit opt-in flag.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fault plan JSON must be an object, got {type(data).__name__}"
            )
        if data.get("version") != cls._JSON_VERSION:
            raise ConfigurationError(
                f"unsupported fault plan version {data.get('version')!r}; "
                f"this build reads version {cls._JSON_VERSION}"
            )
        return cls(
            crashes=tuple(
                CrashFault(pid=int(entry["pid"]),
                           after_steps=int(entry["after_steps"]))
                for entry in data.get("crashes", ())
            ),
            stalls=tuple(
                StallFault(
                    pid=int(entry["pid"]),
                    start_step=int(entry["start_step"]),
                    duration=int(entry["duration"]),
                )
                for entry in data.get("stalls", ())
            ),
            register_faults=tuple(
                RegisterFault(
                    kind=str(entry["kind"]),
                    obj_name=str(entry["obj_name"]),
                    op_index=int(entry["op_index"]),
                    count=int(entry["count"]),
                )
                for entry in data.get("register_faults", ())
            ),
            allow_out_of_model=bool(data.get("allow_out_of_model", False)),
        )


class FaultInjector(StepHook):
    """Per-run stateful executor of a :class:`FaultPlan`.

    Crash and stall decisions are pure functions of charged step counts, so
    the injected behaviour is reproducible.  Register faults additionally
    track, per fault, how many matching operations have been seen, and keep
    a per-object history of applied writes so stale reads can serve the
    previous value.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._crash_budget: Dict[int, int] = {
            crash.pid: crash.after_steps for crash in plan.crashes
        }
        self._fault_matches: List[int] = [0] * len(plan.register_faults)
        self._write_history: Dict[str, List[Any]] = {}
        #: (fault, pid, step) triples for every fault actually delivered.
        self.injected: List[Tuple[RegisterFault, int, int]] = []
        self._global_steps = 0

    # ----- slot decisions --------------------------------------------------

    def before_step(
        self,
        pid: int,
        process_steps: int,
        global_steps: int,
        operation: Optional[Operation],
    ) -> Optional[str]:
        self._global_steps = global_steps
        budget = self._crash_budget.get(pid)
        if budget is not None and process_steps >= budget:
            return CRASH
        for stall in self.plan.stalls:
            if stall.pid != pid:
                continue
            if stall.start_step <= global_steps < stall.start_step + stall.duration:
                return SKIP
        return None

    # ----- register faults -------------------------------------------------

    def _matches(self, fault: RegisterFault, operation: Operation) -> bool:
        if fault.kind == LOSSY_WRITE and not isinstance(operation, Write):
            return False
        if fault.kind == STALE_READ and not isinstance(operation, Read):
            return False
        return fault.obj_name in operation.obj.name

    def intercept(
        self, pid: int, operation: Operation
    ) -> Optional[InterceptedResult]:
        for index, fault in enumerate(self.plan.register_faults):
            if not self._matches(fault, operation):
                continue
            match = self._fault_matches[index]
            self._fault_matches[index] = match + 1
            if not fault.op_index <= match < fault.op_index + fault.count:
                continue
            self.injected.append((fault, pid, self._global_steps))
            if fault.kind == LOSSY_WRITE:
                # The write is dropped; the writer sees a normal ack.
                return InterceptedResult(None)
            # Deferred import: the semantics module subclasses StepHook, so
            # importing it at module level would be circular.  stale_value
            # is the single definition of the one-step-stale rule this
            # fault has always applied (see repro.memory.semantics); plans
            # written before the register-model layer existed reproduce
            # byte-identical outcomes through it.
            from repro.memory.semantics import stale_value
            history = self._write_history.get(operation.obj.name, [])
            return InterceptedResult(stale_value(history))
        return None

    def after_step(
        self, pid: int, step_index: int, operation: Operation, result: Any
    ) -> None:
        # Track write history for stale reads.  Intercepted (lossy) writes
        # are recorded too: the stale value a later read serves should be
        # what an observer believes was overwritten.
        if isinstance(operation, Write):
            self._write_history.setdefault(operation.obj.name, []).append(
                operation.value
            )


# ----- service-level faults --------------------------------------------------
#
# The classes above perturb *simulated executions* (the adversary's power
# inside one run).  The classes below perturb the *serving layer* that
# exposes those runs as sessions (repro.service): workers die, shards go
# dark, responses crawl.  They share this module because they follow the
# same discipline — declarative frozen value objects with versioned JSON,
# compiled per run into a stateful controller — which lets the loadgen
# chaos-test the service exactly the way scenarios fuzz the simulator.
# Times are in the service clock's seconds (virtual seconds under the
# deterministic loadtest loop, wall seconds under a live server).

#: Transient failure kinds a service fault controller can report.
WORKER_KILL = "worker-kill"
SHARD_BLACKOUT = "shard-blackout"


@dataclass(frozen=True)
class WorkerKillFault:
    """Kill the next ``count`` worker attempts on ``shard`` at/after ``at``.

    A killed attempt fails transiently (the session retries under its
    backoff policy); the shard's circuit breaker records the failure.
    """

    shard: int
    at: float = 0.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ConfigurationError(f"shard must be >= 0, got {self.shard}")
        if self.at < 0:
            raise ConfigurationError(f"at must be >= 0, got {self.at}")
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class ResponseDelayFault:
    """Add ``delay`` seconds of service time on ``shard`` during a window.

    The window is ``[start, start + duration)``.  Delayed attempts may
    blow their per-attempt timeout (and ultimately the session deadline),
    so this fault converts a healthy shard into a slow one — the failure
    mode circuit breakers exist for.
    """

    shard: int
    start: float
    duration: float
    delay: float

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ConfigurationError(f"shard must be >= 0, got {self.shard}")
        if self.start < 0:
            raise ConfigurationError(f"start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be > 0, got {self.duration}"
            )
        if self.delay <= 0:
            raise ConfigurationError(f"delay must be > 0, got {self.delay}")


@dataclass(frozen=True)
class ShardBlackoutFault:
    """Fail every worker attempt on ``shard`` during a window, instantly.

    The window is ``[start, start + duration)``.  A blacked-out shard is
    the canonical breaker-opening event: consecutive instant failures trip
    the breaker, which then sheds load at admission until its half-open
    probes find the shard healthy again.
    """

    shard: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ConfigurationError(f"shard must be >= 0, got {self.shard}")
        if self.start < 0:
            raise ConfigurationError(f"start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be > 0, got {self.duration}"
            )


@dataclass(frozen=True)
class ServiceFaultPlan:
    """A declarative bundle of service-layer faults for one traffic run.

    Mirrors :class:`FaultPlan`: immutable, reusable, versioned-JSON
    round-trippable, and compiled per run into a fresh stateful
    :class:`ServiceFaultController`.  Service faults model operational
    failures, not protocol misbehaviour, so there is no out-of-model
    opt-in — every combination is a legitimate thing to throw at a
    production serving layer.
    """

    worker_kills: Tuple[WorkerKillFault, ...] = ()
    response_delays: Tuple[ResponseDelayFault, ...] = ()
    blackouts: Tuple[ShardBlackoutFault, ...] = ()

    #: JSON format version written by :meth:`to_json`.
    _JSON_VERSION = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "worker_kills", tuple(self.worker_kills))
        object.__setattr__(
            self, "response_delays", tuple(self.response_delays)
        )
        object.__setattr__(self, "blackouts", tuple(self.blackouts))

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (self.worker_kills or self.response_delays or self.blackouts)

    @property
    def shards_touched(self) -> Tuple[int, ...]:
        """Shard ids any fault targets, ascending (admission sanity checks)."""
        shards = {fault.shard for fault in self.worker_kills}
        shards.update(fault.shard for fault in self.response_delays)
        shards.update(fault.shard for fault in self.blackouts)
        return tuple(sorted(shards))

    def controller(self) -> "ServiceFaultController":
        """Build a fresh stateful controller for one traffic run."""
        return ServiceFaultController(self)

    def to_json(self) -> Dict[str, Any]:
        """A plain-JSON description that :meth:`from_json` restores exactly."""
        return {
            "version": self._JSON_VERSION,
            "worker_kills": [
                {"shard": f.shard, "at": f.at, "count": f.count}
                for f in self.worker_kills
            ],
            "response_delays": [
                {
                    "shard": f.shard,
                    "start": f.start,
                    "duration": f.duration,
                    "delay": f.delay,
                }
                for f in self.response_delays
            ],
            "blackouts": [
                {"shard": f.shard, "start": f.start, "duration": f.duration}
                for f in self.blackouts
            ],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ServiceFaultPlan":
        """Rebuild a plan from :meth:`to_json` output, rejecting foreign
        versions; every fault re-runs its own validation."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"service fault plan JSON must be an object, "
                f"got {type(data).__name__}"
            )
        if data.get("version") != cls._JSON_VERSION:
            raise ConfigurationError(
                f"unsupported service fault plan version "
                f"{data.get('version')!r}; this build reads version "
                f"{cls._JSON_VERSION}"
            )
        return cls(
            worker_kills=tuple(
                WorkerKillFault(
                    shard=int(entry["shard"]),
                    at=float(entry["at"]),
                    count=int(entry["count"]),
                )
                for entry in data.get("worker_kills", ())
            ),
            response_delays=tuple(
                ResponseDelayFault(
                    shard=int(entry["shard"]),
                    start=float(entry["start"]),
                    duration=float(entry["duration"]),
                    delay=float(entry["delay"]),
                )
                for entry in data.get("response_delays", ())
            ),
            blackouts=tuple(
                ShardBlackoutFault(
                    shard=int(entry["shard"]),
                    start=float(entry["start"]),
                    duration=float(entry["duration"]),
                )
                for entry in data.get("blackouts", ())
            ),
        )


class ServiceFaultController:
    """Per-run stateful executor of a :class:`ServiceFaultPlan`.

    The service consults it at every worker attempt: blackouts win over
    worker kills (a dark shard cannot even start an attempt), worker kills
    are consumed one attempt at a time, and response delays stack if
    windows overlap.  Decisions are pure functions of ``(shard, now)`` and
    the kill budgets, so a virtual-time traffic run stays deterministic.
    """

    def __init__(self, plan: ServiceFaultPlan):
        self.plan = plan
        self._kills_left = [fault.count for fault in plan.worker_kills]
        #: (kind, shard, time) triples for every fault actually delivered.
        self.injected: List[Tuple[str, int, float]] = []

    def attempt_failure(self, shard: int, now: float) -> Optional[str]:
        """The transient-failure kind this attempt suffers, or ``None``."""
        for fault in self.plan.blackouts:
            if fault.shard == shard and \
                    fault.start <= now < fault.start + fault.duration:
                self.injected.append((SHARD_BLACKOUT, shard, now))
                return SHARD_BLACKOUT
        for index, fault in enumerate(self.plan.worker_kills):
            if fault.shard == shard and now >= fault.at \
                    and self._kills_left[index] > 0:
                self._kills_left[index] -= 1
                self.injected.append((WORKER_KILL, shard, now))
                return WORKER_KILL
        return None

    def extra_delay(self, shard: int, now: float) -> float:
        """Added service seconds for an attempt dispatched at ``now``."""
        return sum(
            fault.delay
            for fault in self.plan.response_delays
            if fault.shard == shard
            and fault.start <= now < fault.start + fault.duration
        )
