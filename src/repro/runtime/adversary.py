"""Intermediate-strength adversaries: the rungs between oblivious and adaptive.

The paper's floors are proved against an *oblivious* adversary (the
schedule is fixed before any coin is flipped) and demonstrably collapse
against a fully *adaptive* one (:mod:`repro.runtime.adaptive`).  This
module fills in the ladder between those endpoints so the dependence on
adversary strength can be probed, not just bracketed:

- :class:`LateAdversary` — an adaptive strategy that observes the run
  with a configurable delay ``δ`` (Robinson–Scheideler–Setzer's "late
  adversary"): every decision is made against the execution state as it
  was ``δ`` decisions ago.  ``δ = 0`` is fully adaptive; as ``δ`` grows
  the view goes stale and the adversary degenerates toward an oblivious
  scheduler (decisions that reference vanished processes fall back to a
  seeded uniform choice).
- :class:`NoisySchedulerAdversary` — an adaptive schedule perturbed by
  seeded random noise (after Aspnes 2003's noisy-scheduling model): with
  probability ``σ`` each slot goes to a uniformly random runnable
  process instead of the inner strategy's pick.  ``σ = 0`` is fully
  adaptive, ``σ = 1`` is the oblivious random-schedule control.

Both wrap any strategy from :data:`~repro.runtime.adaptive.ADAPTIVE_FAMILIES`
and plug into :func:`~repro.runtime.adaptive.run_adaptive_programs`
unchanged.  :class:`AdversarySpec` is the versioned-JSON value object
(the :class:`~repro.workloads.schedules.ScheduleSpec` analogue) that pins
one ladder rung for fuzz scenarios and probe reports; the canonical
strength ordering is ``oblivious < noisy < late-δ < adaptive``
(:data:`ADVERSARY_LADDER`).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.runtime.adaptive import (
    ADAPTIVE_FAMILIES,
    AdaptiveAdversary,
    AdversaryView,
    make_adaptive,
)

__all__ = [
    "ADVERSARY_KINDS",
    "ADVERSARY_LADDER",
    "AdversarySpec",
    "LateAdversary",
    "NoisySchedulerAdversary",
    "make_adversary",
]

#: Spec-constructible intermediate adversary kinds.
NOISY = "noisy"
LATE = "late"
ADVERSARY_KINDS = (NOISY, LATE)

#: The canonical strength ordering, weakest first.  ``oblivious`` and
#: ``adaptive`` are the existing endpoints (ScheduleSpec / AdaptiveSpec);
#: the two middle rungs are built by this module.
ADVERSARY_LADDER = ("oblivious", "noisy", "late", "adaptive")


class _StaleObject:
    """A per-name stand-in for a shared object, frozen at snapshot time.

    Strategies inspect pending operations' target objects by ``value``
    (register contents), ``name``, and identity (e.g.
    :class:`~repro.runtime.adaptive.SiftKillerAdversary` remembers "the
    register last written to" with an ``is`` comparison).  One stand-in
    per object name keeps identity stable across delayed views while the
    recorded ``value`` is rewound to what the adversary is allowed to see.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Any = None


class _StaleOperation:
    """A pending operation as it appeared at snapshot time."""

    __slots__ = ("kind", "obj", "value")

    def __init__(self, kind: str, obj: _StaleObject, value: Any):
        self.kind = kind
        self.obj = obj
        self.value = value


class _StaleView:
    """An :class:`AdversaryView`-shaped window onto a past snapshot."""

    def __init__(self, snapshot: Dict[int, Tuple[Optional[_StaleOperation], int]]):
        self._snapshot = snapshot

    def unfinished(self) -> List[int]:
        return sorted(self._snapshot)

    def pending_operation(self, pid: int) -> Optional[_StaleOperation]:
        return self._snapshot[pid][0]

    def pending_kind(self, pid: int) -> Optional[str]:
        operation = self._snapshot[pid][0]
        return None if operation is None else operation.kind

    def steps_taken(self, pid: int) -> int:
        return self._snapshot[pid][1]


class LateAdversary(AdaptiveAdversary):
    """An adaptive strategy whose view of the run lags by ``delay`` decisions.

    Each :meth:`choose` call snapshots the observable state (which
    processes are unfinished, their pending operation kind/target/value,
    their step counts) and consults the inner strategy against the
    snapshot taken ``delay`` calls earlier.  Until ``delay`` snapshots
    have accumulated — and whenever the stale pick is no longer runnable
    — the choice falls back to a seeded uniform draw among currently
    runnable processes, which is exactly the oblivious random control.
    """

    def __init__(self, inner: AdaptiveAdversary, delay: int, seed: int = 0):
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        self.inner = inner
        self.delay = delay
        self._rng = random.Random(seed)
        self._snapshots: Deque[Dict[int, Tuple[Optional[_StaleOperation], int]]]
        self._snapshots = deque(maxlen=delay + 1)
        self._stale_objects: Dict[str, _StaleObject] = {}
        #: How often the stale pick had to be clamped to a runnable pid.
        self.clamped = 0

    def _stale_object(self, name: str) -> _StaleObject:
        obj = self._stale_objects.get(name)
        if obj is None:
            obj = self._stale_objects[name] = _StaleObject(name)
        return obj

    def _capture(self, view: AdversaryView) -> Dict[int, Tuple[Optional[_StaleOperation], int]]:
        snapshot: Dict[int, Tuple[Optional[_StaleOperation], int]] = {}
        for pid in view.unfinished():
            operation = view.pending_operation(pid)
            if operation is None:
                snapshot[pid] = (None, view.steps_taken(pid))
                continue
            stale_obj = self._stale_object(operation.obj.name)
            stale_obj.value = getattr(operation.obj, "value", None)
            snapshot[pid] = (
                _StaleOperation(
                    operation.kind, stale_obj,
                    getattr(operation, "value", None),
                ),
                view.steps_taken(pid),
            )
        return snapshot

    def choose(self, view: AdversaryView) -> int:
        candidates = view.unfinished()
        if not candidates:
            raise SimulationError("adversary consulted with no runnable process")
        self._snapshots.append(self._capture(view))
        if len(self._snapshots) <= self.delay:
            # Not enough history yet: the adversary has seen nothing it is
            # allowed to act on, so it schedules obliviously.
            return candidates[self._rng.randrange(len(candidates))]
        stale = self._snapshots[0]
        choice = self.inner.choose(_StaleView(stale))
        if choice not in candidates:
            # The stale view named a process that has since finished or
            # crashed; an execution needs *some* runnable pid, so clamp to
            # a seeded uniform draw (the oblivious fallback).
            self.clamped += 1
            return candidates[self._rng.randrange(len(candidates))]
        return choice


class NoisySchedulerAdversary(AdaptiveAdversary):
    """An adaptive schedule perturbed by seeded uniform noise.

    With probability ``noise`` each slot is granted to a uniformly random
    runnable process; otherwise the inner strategy picks.  The noise coin
    and the uniform draw share one private seeded RNG, so runs are
    deterministic functions of ``(inner strategy, noise, seed)``.
    """

    def __init__(self, inner: AdaptiveAdversary, noise: float, seed: int = 0):
        if not 0.0 <= noise <= 1.0:
            raise ConfigurationError(
                f"noise must be in [0, 1], got {noise}"
            )
        self.inner = inner
        self.noise = noise
        self._rng = random.Random(seed)
        #: How many slots were actually perturbed.
        self.perturbed = 0

    def choose(self, view: AdversaryView) -> int:
        candidates = view.unfinished()
        if not candidates:
            raise SimulationError("adversary consulted with no runnable process")
        if self._rng.random() < self.noise:
            self.perturbed += 1
            return candidates[self._rng.randrange(len(candidates))]
        return self.inner.choose(view)


def make_adversary(
    kind: str,
    *,
    inner: str = "sift-killer",
    seed: int = 0,
    delay: int = 4,
    noise: float = 0.5,
) -> AdaptiveAdversary:
    """Build one intermediate adversary (see :data:`ADVERSARY_KINDS`).

    ``inner`` names the wrapped strategy from
    :data:`~repro.runtime.adaptive.ADAPTIVE_FAMILIES`; the wrapper and the
    inner strategy derive their private randomness from ``seed`` on
    separate branches so perturbation noise never realigns inner coins.
    """
    if inner not in ADAPTIVE_FAMILIES:
        raise ConfigurationError(
            f"unknown inner adaptive strategy {inner!r}; choose from "
            f"{ADAPTIVE_FAMILIES}"
        )
    wrapped = make_adaptive(inner, seed)
    if kind == LATE:
        return LateAdversary(wrapped, delay, seed=seed ^ 0x1D872B41)
    if kind == NOISY:
        return NoisySchedulerAdversary(wrapped, noise, seed=seed ^ 0x2545F491)
    raise ConfigurationError(
        f"unknown adversary kind {kind!r}; choose from {ADVERSARY_KINDS}"
    )


@dataclass(frozen=True)
class AdversarySpec:
    """A serializable, hashable description of one ladder adversary.

    The intermediate-strength counterpart of
    :class:`~repro.workloads.schedules.ScheduleSpec` (oblivious endpoint)
    and :class:`~repro.runtime.adaptive.AdaptiveSpec` (adaptive endpoint):
    pins the rung kind, the wrapped strategy, the strength parameter
    (``delay`` for late, ``noise`` for noisy), and the private seed, so a
    scenario that used a ladder adversary replays identically from JSON.
    """

    kind: str
    inner: str = "sift-killer"
    seed: int = 0
    delay: int = 4
    noise: float = 0.5

    _JSON_VERSION = 1

    def __post_init__(self) -> None:
        if self.kind not in ADVERSARY_KINDS:
            raise ConfigurationError(
                f"unknown adversary kind {self.kind!r}; choose from "
                f"{ADVERSARY_KINDS}"
            )
        if self.inner not in ADAPTIVE_FAMILIES:
            raise ConfigurationError(
                f"unknown inner adaptive strategy {self.inner!r}; choose "
                f"from {ADAPTIVE_FAMILIES}"
            )
        if self.delay < 0:
            raise ConfigurationError(
                f"delay must be >= 0, got {self.delay}"
            )
        if not 0.0 <= self.noise <= 1.0:
            raise ConfigurationError(
                f"noise must be in [0, 1], got {self.noise}"
            )

    def build(self) -> AdaptiveAdversary:
        """Construct a fresh adversary instance (wrappers are stateful)."""
        return make_adversary(
            self.kind,
            inner=self.inner,
            seed=self.seed,
            delay=self.delay,
            noise=self.noise,
        )

    def describe(self) -> str:
        """Human-oriented rung label, e.g. ``"late-4(sift-killer)"``."""
        strength = self.delay if self.kind == LATE else self.noise
        return f"{self.kind}-{strength}({self.inner})"

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": self._JSON_VERSION,
            "kind": self.kind,
            "inner": self.inner,
            "seed": self.seed,
            "delay": self.delay,
            "noise": self.noise,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "AdversarySpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"adversary spec JSON must be an object, "
                f"got {type(data).__name__}"
            )
        if data.get("version") != cls._JSON_VERSION:
            raise ConfigurationError(
                f"unsupported adversary spec version {data.get('version')!r}; "
                f"this build reads version {cls._JSON_VERSION}"
            )
        return cls(
            kind=str(data["kind"]),
            inner=str(data.get("inner", "sift-killer")),
            seed=int(data.get("seed", 0)),
            delay=int(data.get("delay", 4)),
            noise=float(data.get("noise", 0.5)),
        )
