"""Atomic operation requests.

A protocol program is a Python generator that *yields* one of these operation
objects whenever it wants to touch shared memory, and receives the operation's
result as the value of the ``yield`` expression::

    def program(ctx: ProcessContext):
        yield Write(register, ctx.pid)          # one step
        value = yield Read(register)            # one step
        return value                            # local, free

Each yielded operation is executed atomically by the simulator and costs the
process exactly one step, which matches the unit-cost step measure used by
the paper for both registers and snapshots.

Operations are small frozen dataclasses rather than direct method calls so
that (a) the simulator is the only code that can mutate shared objects, which
makes atomicity a structural property instead of a convention, and (b) every
step can be traced and counted uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.memory.base import SharedObject

__all__ = ["Operation", "Read", "Write", "Update", "Scan", "MaxRead", "MaxWrite"]


@dataclass(frozen=True)
class Operation:
    """Base class for one atomic shared-memory operation request.

    Attributes:
        obj: the shared object the operation targets.
    """

    obj: "SharedObject"

    @property
    def kind(self) -> str:
        """Short lowercase name of the operation, used in traces."""
        return type(self).__name__.lower()


@dataclass(frozen=True)
class Read(Operation):
    """Read an atomic register; result is its current value."""


@dataclass(frozen=True)
class Write(Operation):
    """Write ``value`` to an atomic register; result is ``None``."""

    value: Any = None


@dataclass(frozen=True)
class Update(Operation):
    """Update the invoking process's component of a snapshot object."""

    value: Any = None


@dataclass(frozen=True)
class Scan(Operation):
    """Atomically read all components of a snapshot object.

    The result is an immutable tuple with one entry per process (``None`` for
    processes that have not updated yet).  The whole scan costs one step:
    this is the *unit-cost snapshot* assumption of Section 2.
    """


@dataclass(frozen=True)
class MaxRead(Operation):
    """Read the largest value ever written to a max register (footnote 1)."""


@dataclass(frozen=True)
class MaxWrite(Operation):
    """Write ``value`` to a max register; retained only if it is the max."""

    value: Any = None
