"""Probability schedules and recurrences from Sections 2 and 3.

Sifting schedule (Section 3).  Lemma 2 bounds the expected number of excess
personae by ``E[X_{i+1} | X_i] <= min(p_{i+1} X_i + 1/p_{i+1},
(1 - p_{i+1} + p_{i+1}^2) X_i)``.  The first bound is minimized by
``p_{i+1} = 1/sqrt(x_i)``, which drives the recurrence

    x_0 = n - 1,   x_{i+1} = 2 sqrt(x_i)

with closed form ``x_i = 2^(2 - 2^(1-i)) (n-1)^(2^-i)`` (equation (2)).

Note on equation (3): the paper prints ``p_i = 2^(1 - 2^(-i+1))
(n-1)^(-2^-i)``, but substituting (2) into ``p_{i+1} = 1/sqrt(x_i)`` gives
``p_i = 2^(-1 + 2^(1-i)) (n-1)^(-2^-i)`` — the sign of the power-of-two
exponent is flipped.  The two agree at ``i = 1`` and differ by a factor of at
most 4 afterwards; only the self-consistent version satisfies the recurrence
the proof of Lemma 3 uses, so we implement that one (clamped to (0, 1]).
Experiment E10 checks empirically that either choice sifts at the claimed
``O(sqrt(x))`` rate.

Snapshot recurrence (Section 2).  Lemma 1 gives
``E[X_{i+1} | X_i] <= f(X_i)`` with ``f(x) = min(ln(x+1), x/2)``; Theorem 1
iterates ``f`` and uses ``f(x) <= log2 x`` for ``x >= 2``.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import ConfigurationError
from repro.core.rounds import sifting_switch_round

__all__ = [
    "sift_x",
    "sift_p",
    "sift_p_schedule",
    "paper_sift_p",
    "snapshot_f",
    "iterate_snapshot_f",
    "sift_tail_factor",
]

#: Per-round multiplicative bound after the switch to p = 1/2 (Lemma 4):
#: ``1 - p + p^2`` at ``p = 1/2``.
SIFT_TAIL_FACTOR = 0.75

__all__.append("SIFT_TAIL_FACTOR")


def sift_x(i: int, n: int) -> float:
    """Closed-form bound ``x_i`` from equation (2): ``E[X_i] <= x_i``.

    ``x_0 = n - 1`` and ``x_i = 2^(2 - 2^(1-i)) (n-1)^(2^-i)`` for ``i >= 1``.
    """
    if i < 0:
        raise ConfigurationError(f"round index must be >= 0, got {i}")
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if n == 1:
        return 0.0
    return 2.0 ** (2.0 - 2.0 ** (1 - i)) * (n - 1) ** (2.0 ** -i)


def sift_p(i: int, n: int) -> float:
    """Write probability ``p_i`` for sifting round ``i`` (1-based).

    For ``i <= ceil(log2 log2 n)`` this is the tuned value
    ``p_i = 1/sqrt(x_{i-1})`` (the minimizer in Lemma 2's first bound, the
    self-consistent form of equation (3)); afterwards it is ``1/2``, the
    minimizer of the second bound's coefficient ``1 - p + p^2`` (Lemma 4).
    """
    if i < 1:
        raise ConfigurationError(f"sifting rounds are 1-based, got i={i}")
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if i > sifting_switch_round(n):
        return 0.5
    x_prev = sift_x(i - 1, n)
    if x_prev <= 1.0:
        return 1.0
    return min(1.0, 1.0 / math.sqrt(x_prev))


def paper_sift_p(i: int, n: int) -> float:
    """Equation (3) exactly as printed: ``2^(1-2^(1-i)) (n-1)^(-2^-i)``.

    Kept for the E10 ablation; see the module docstring for why the
    self-consistent :func:`sift_p` is the default.  Clamped to (0, 1].
    """
    if i < 1:
        raise ConfigurationError(f"sifting rounds are 1-based, got i={i}")
    if n < 2:
        return 1.0
    value = 2.0 ** (1.0 - 2.0 ** (1 - i)) * (n - 1) ** (-(2.0 ** -i))
    return min(1.0, value)


def sift_p_schedule(n: int, rounds: int) -> List[float]:
    """The full per-round write-probability schedule for Algorithm 2."""
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    return [sift_p(i, n) for i in range(1, rounds + 1)]


def snapshot_f(x: float) -> float:
    """Lemma 1's contraction ``f(x) = min(ln(x+1), x/2)``."""
    if x < 0:
        raise ConfigurationError(f"f is defined on [0, inf), got {x}")
    return min(math.log(x + 1.0), x / 2.0)


def iterate_snapshot_f(x: float, iterations: int) -> float:
    """``f`` composed ``iterations`` times, the bound ``E[X_i] <= f^(i)(n)``."""
    if iterations < 0:
        raise ConfigurationError(f"iterations must be >= 0, got {iterations}")
    value = float(x)
    for _ in range(iterations):
        value = snapshot_f(value)
    return value


def sift_tail_factor() -> float:
    """Per-round decay factor ``3/4`` after the switch (Lemma 4)."""
    return SIFT_TAIL_FACTOR
