"""Algorithm 1 over register-emulated snapshots (the cost of reality).

Identical logic to :class:`repro.core.snapshot_conciliator.SnapshotConciliator`
but every unit-cost snapshot operation is replaced by the multi-step
register emulation of :class:`repro.memory.emulated_snapshot.EmulatedSnapshot`.
The agreement behaviour is unchanged — the emulation is linearizable, and
the algorithm only depends on the view semantics — but each process now
pays ``O(n^2)`` register steps per round instead of 2, which is exactly the
gap the paper's "unit-cost snapshot model" abstracts away (and why the
multi-writer-register Algorithm 2 matters).  Experiment E15 quantifies it.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.core.conciliator import Conciliator
from repro.core.persona import Persona
from repro.core.rounds import snapshot_priority_range, snapshot_rounds
from repro.errors import ConfigurationError
from repro.memory.emulated_snapshot import EmulatedSnapshot
from repro.runtime.operations import Operation
from repro.runtime.process import ProcessContext

__all__ = ["EmulatedSnapshotConciliator"]


class EmulatedSnapshotConciliator(Conciliator):
    """Algorithm 1 paying real register costs for its snapshots."""

    def __init__(
        self,
        n: int,
        epsilon: float = 0.5,
        *,
        rounds: Optional[int] = None,
        priority_range: Optional[int] = None,
        name: str = "emulated-snapshot-conciliator",
    ):
        super().__init__(n, name)
        self.epsilon = epsilon
        self.rounds = rounds if rounds is not None else snapshot_rounds(n, epsilon)
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")
        self.priority_range = (
            priority_range
            if priority_range is not None
            else snapshot_priority_range(n, epsilon, self.rounds)
        )
        self.arrays: List[EmulatedSnapshot] = [
            EmulatedSnapshot(n, f"{name}.A[{index}]")
            for index in range(self.rounds)
        ]

    def step_bound(self) -> int:
        """Worst-case individual steps: O(n^2) per round."""
        per_round = (
            self.arrays[0].update_step_bound() + self.arrays[0].scan_step_bound()
        )
        return per_round * self.rounds

    def unit_cost_steps(self) -> int:
        """What the same algorithm costs in the unit-cost model (2/round)."""
        return 2 * self.rounds

    def persona_program(
        self, ctx: ProcessContext, input_value: Any
    ) -> Generator[Operation, Any, Persona]:
        persona = Persona.for_snapshot(
            input_value, ctx.pid, ctx.rng, self.rounds, self.priority_range
        )
        self._record_initial(ctx.pid, persona)
        for round_index in range(self.rounds):
            array = self.arrays[round_index]
            yield from array.update_program(ctx, persona)
            view = yield from array.scan_program(ctx)
            candidates = [entry for entry in view if entry is not None]
            persona = max(
                candidates,
                key=lambda entry: (entry.priority(round_index), entry.origin),
            )
            self._record_round(round_index, ctx.pid, persona)
        return persona
