"""Footnote 2 as an executable protocol: Algorithm 1 with indirection.

Footnote 2 observes that Algorithm 1's snapshot components need not carry
whole input values: "adding a layer of indirection by replacing each input
with the id of the process that holds it reduces the size of each snapshot
component to O(log n log* n) bits".  This variant implements exactly that:

- each process publishes its input **once** in a per-process announce
  register (1 step);
- rounds operate on *tokens* — personae whose value field is empty, so a
  component carries only the origin id and the R priorities (the
  O(log n log* n) bits of the footnote);
- after the last round, one read of ``announce[winner.origin]`` recovers
  the value (1 step).

The winning token always refers to an initialized announce register: a
token reaches any snapshot array only after its origin's update, which the
origin performs after its announce write, so the chain of adoptions
preserves the precedence.

Cost: ``2R + 2`` steps — two more than the plain variant, in exchange for
components whose width is independent of the input domain (measured in
experiment E17).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.core.conciliator import Conciliator
from repro.core.persona import Persona
from repro.core.rounds import snapshot_priority_range, snapshot_rounds
from repro.errors import ConfigurationError, ProtocolViolationError
from repro.memory.register import AtomicRegister
from repro.memory.register_array import SnapshotArray
from repro.runtime.operations import Operation, Read, Scan, Update, Write
from repro.runtime.process import ProcessContext

__all__ = ["IndirectSnapshotConciliator"]


class IndirectSnapshotConciliator(Conciliator):
    """Algorithm 1 with footnote 2's value indirection."""

    def __init__(
        self,
        n: int,
        epsilon: float = 0.5,
        *,
        rounds: Optional[int] = None,
        priority_range: Optional[int] = None,
        name: str = "indirect-snapshot-conciliator",
    ):
        super().__init__(n, name)
        self.epsilon = epsilon
        self.rounds = rounds if rounds is not None else snapshot_rounds(n, epsilon)
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")
        self.priority_range = (
            priority_range
            if priority_range is not None
            else snapshot_priority_range(n, epsilon, self.rounds)
        )
        self.announce: List[AtomicRegister] = [
            AtomicRegister(f"{name}.announce[{pid}]") for pid in range(n)
        ]
        self._arrays = SnapshotArray(n, f"{name}.A")

    def step_bound(self) -> int:
        """Announce + 2 per round + final dereference."""
        return 2 * self.rounds + 2

    def persona_program(
        self, ctx: ProcessContext, input_value: Any
    ) -> Generator[Operation, Any, Persona]:
        full = Persona.for_snapshot(
            input_value, ctx.pid, ctx.rng, self.rounds, self.priority_range
        )
        # Publish the value once; everything after carries only the token.
        yield Write(self.announce[ctx.pid], input_value)
        token = Persona(
            value=None,
            origin=full.origin,
            priorities=full.priorities,
            coin=full.coin,
        )
        self._record_initial(ctx.pid, token)
        for round_index in range(self.rounds):
            array = self._arrays[round_index]
            yield Update(array, token)
            view = yield Scan(array)
            candidates = [entry for entry in view if entry is not None]
            token = max(
                candidates,
                key=lambda entry: (entry.priority(round_index), entry.origin),
            )
            self._record_round(round_index, ctx.pid, token)
        value = yield Read(self.announce[token.origin])
        if value is None:
            # Unreachable by the precedence argument in the module
            # docstring; a None here means the indirection chain broke.
            raise ProtocolViolationError(
                f"announce[{token.origin}] unset when dereferenced"
            )
        return Persona(
            value=value,
            origin=token.origin,
            priorities=token.priorities,
            coin=token.coin,
        )
