"""Algorithm 3: the CIL conciliator with an embedded sifter (Section 4).

The goal is linear expected **total** work.  Algorithm 2 alone costs
``Theta(n log log n)`` total steps in every execution; Algorithm 3 wraps it
in the Chor–Israeli–Li loop so that, on average, the whole system performs
O(n) steps, while each process still takes at most ``O(log log n)`` steps in
the worst case.

Main loop (per process):

    repeat:
        read proposal; if non-empty -> leave with it        (side 1)
        with probability 1/(4n): write own input to proposal,
                                 leave with it              (side 1)
        otherwise: execute ONE step of the inner conciliator;
                   if the inner protocol finished -> leave
                   with its result                          (side 0)

Since the inner conciliator takes ``O(log log n)`` steps, the loop body runs
at most ``inner_steps + 1`` times, giving the worst-case individual bound;
and every iteration independently shuts the whole protocol down with
probability ``1/(4n)``, giving the O(n) expected total bound.

**Combine stage.**  Different processes may leave with a sifter value (side
0) or a proposal value (side 1); these are reconciled by a two-valued
conciliator built from a binary adopt-commit plus a pre-flipped coin bit
carried in every persona:

    write my persona to out[side]
    (decision, b) <- BinaryAdoptCommit(side)
    if decision = commit: choose index b
    else:                 choose index persona.coin
    return the persona read from out[chosen index]

Theorem 3: if both the inner conciliator (run with eps = 1/4) and the CIL
mechanism each produce a unique value — combined probability > 1/2 — and the
coin bits of the two sides agree with the adopt-commit outcome (probability
>= 1/4, since the coins are invisible to the oblivious adversary), every
process picks the same side and hence the same value: agreement probability
at least 1/8.

The inner conciliator defaults to Algorithm 2 but any conciliator whose
persona program is "oblivious" in the paper's sense works; the last
paragraph of Section 4 uses Algorithm 1 to get an ``O(log* n)``-individual,
O(n)-total snapshot-model conciliator, available here via
``inner_factory=...``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Tuple

from repro.adoptcommit.flag_ac import BinaryAdoptCommit
from repro.core.conciliator import Conciliator
from repro.core.persona import Persona
from repro.core.rounds import cil_write_probability
from repro.core.sifting_conciliator import SiftingConciliator
from repro.errors import ConfigurationError
from repro.memory.register import AtomicRegister
from repro.runtime.operations import Operation, Read, Write
from repro.runtime.process import ProcessContext

__all__ = ["CILEmbeddedConciliator", "INNER_EPSILON"]

#: Inner conciliator disagreement budget used in the proof of Theorem 3.
INNER_EPSILON = 0.25

_SIDE_INNER = 0
_SIDE_PROPOSAL = 1


class CILEmbeddedConciliator(Conciliator):
    """Algorithm 3: worst-case O(log log n) individual, O(n) expected total.

    Args:
        n: number of processes.
        inner_factory: builds the embedded conciliator; defaults to
            ``SiftingConciliator(n, epsilon=1/4)`` as in the paper.  Pass
            ``lambda n: SnapshotConciliator(n, epsilon=0.25)`` for the
            snapshot-model variant sketched at the end of Section 4.
        write_probability: CIL proposal write probability, default 1/(4n).
    """

    def __init__(
        self,
        n: int,
        *,
        inner_factory: Optional[Callable[[int], Conciliator]] = None,
        write_probability: Optional[float] = None,
        name: str = "cil-embedded",
    ):
        super().__init__(n, name)
        if inner_factory is None:
            inner_factory = lambda count: SiftingConciliator(
                count, epsilon=INNER_EPSILON, name=f"{name}.sifter"
            )
        self.inner = inner_factory(n)
        if self.inner.n != n:
            raise ConfigurationError(
                f"inner conciliator built for n={self.inner.n}, expected {n}"
            )
        self.write_probability = (
            write_probability
            if write_probability is not None
            else cil_write_probability(n)
        )
        self.proposal = AtomicRegister(f"{name}.proposal")
        self.out = (
            AtomicRegister(f"{name}.out[0]"),
            AtomicRegister(f"{name}.out[1]"),
        )
        self.combine_ac = BinaryAdoptCommit(n, name=f"{name}.combine-ac")
        # Instrumentation for Theorem 3's claims (E5).
        self.fallback_count = 0
        self.inner_completions = 0
        self.proposal_exits = 0

    def persona_program(
        self, ctx: ProcessContext, input_value: Any
    ) -> Generator[Operation, Any, Persona]:
        # My own persona, used if I win the CIL write; its coin bit also
        # backs the combine stage.  The inner conciliator draws a fresh
        # persona internally (both draws come from ctx.rng, which the
        # oblivious adversary cannot see).
        mine = Persona(value=input_value, origin=ctx.pid, coin=ctx.rng.randrange(2))
        side, persona = yield from self._main_loop(ctx, input_value, mine)
        winner = yield from self._combine(ctx, side, persona)
        return winner

    def _main_loop(
        self, ctx: ProcessContext, input_value: Any, mine: Persona
    ) -> Generator[Operation, Any, Tuple[int, Persona]]:
        inner_generator = self.inner.persona_program(ctx, input_value)
        try:
            inner_pending: Optional[Operation] = next(inner_generator)
        except StopIteration as stop:  # zero-step inner protocol
            return _SIDE_INNER, stop.value

        while True:
            seen = yield Read(self.proposal)
            if seen is not None:
                self.proposal_exits += 1
                return _SIDE_PROPOSAL, seen
            if ctx.rng.random() < self.write_probability:
                yield Write(self.proposal, mine)
                self.proposal_exits += 1
                return _SIDE_PROPOSAL, mine
            # Execute exactly one step of the embedded conciliator.
            result = yield inner_pending
            try:
                inner_pending = inner_generator.send(result)
            except StopIteration as stop:
                self.inner_completions += 1
                return _SIDE_INNER, stop.value

    def _combine(
        self, ctx: ProcessContext, side: int, persona: Persona
    ) -> Generator[Operation, Any, Persona]:
        yield Write(self.out[side], persona)
        decision = yield from self.combine_ac.invoke(ctx, side)
        if decision.committed:
            chosen = decision.value
        else:
            chosen = persona.coin
        winner = yield Read(self.out[chosen])
        if winner is None:
            # The proof of Theorem 3 argues this register is always
            # initialized before anyone can be directed at it; the fallback
            # preserves termination and validity regardless, and tests
            # assert it never fires.
            self.fallback_count += 1
            winner = persona
        return winner
