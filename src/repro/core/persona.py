"""Personae: input values bundled with pre-flipped randomness.

The central trick of the paper (Section 1, "personae") is that against an
*oblivious* adversary, a process can generate every coin its value will ever
need **up front**, attach them to the value, and let the bundle propagate as
other processes adopt the value.  All copies of a persona then behave
identically in every round, so the number of *distinct surviving personae*
— not the number of processes — becomes the measure of progress.

A :class:`Persona` is immutable and hashable, so survivor counting is just
``len(set(...))``.  The originating process id is included, as in Section 3:
"the id value is not used by the algorithm and can be omitted in an actual
implementation", but including it guarantees that personae generated
independently are distinct even if their coins collide, which keeps the
analysis (and our survivor counting) clean.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["Persona"]


@dataclass(frozen=True)
class Persona:
    """An input value plus all randomness it will ever use.

    Attributes:
        value: the input value being proposed.  Must be hashable.
        origin: pid of the process that created the persona.
        priorities: per-round random priorities (Algorithm 1).  Empty for
            personae that never enter the snapshot conciliator.
        write_bits: per-round chooseWrite coin flips (Algorithm 2).  Empty
            for personae that never enter the sifting conciliator.
        coin: the combine-stage shared-coin bit (Algorithm 3).
    """

    value: Any
    origin: int
    priorities: Tuple[int, ...] = ()
    write_bits: Tuple[bool, ...] = ()
    coin: int = 0

    def __post_init__(self) -> None:
        if self.coin not in (0, 1):
            raise ConfigurationError(f"persona coin must be 0 or 1, got {self.coin}")

    @staticmethod
    def for_snapshot(
        value: Any,
        origin: int,
        rng: random.Random,
        rounds: int,
        priority_range: int,
    ) -> "Persona":
        """Create a persona for Algorithm 1.

        Draws ``rounds`` independent priorities uniformly from
        ``{1, ..., priority_range}`` (the paper's range ``ceil(R n^2 / eps)``
        makes the probability of any duplicate at most eps/2).
        """
        if rounds < 1:
            raise ConfigurationError(f"snapshot persona needs rounds >= 1, got {rounds}")
        if priority_range < 1:
            raise ConfigurationError(
                f"priority_range must be >= 1, got {priority_range}"
            )
        priorities = tuple(rng.randint(1, priority_range) for _ in range(rounds))
        return Persona(
            value=value,
            origin=origin,
            priorities=priorities,
            coin=rng.randrange(2),
        )

    @staticmethod
    def for_sifting(
        value: Any,
        origin: int,
        rng: random.Random,
        write_probabilities: Sequence[float],
    ) -> "Persona":
        """Create a persona for Algorithm 2.

        ``write_probabilities[i]`` is the probability ``p_{i+1}`` that the
        persona writes (rather than reads) in round ``i+1``; the chooseWrite
        bit for each round is flipped now and frozen into the persona.
        """
        if not write_probabilities:
            raise ConfigurationError("sifting persona needs at least one round")
        for probability in write_probabilities:
            if not 0.0 <= probability <= 1.0:
                raise ConfigurationError(
                    f"write probability {probability} outside [0, 1]"
                )
        bits = tuple(rng.random() < p for p in write_probabilities)
        return Persona(
            value=value,
            origin=origin,
            write_bits=bits,
            coin=rng.randrange(2),
        )

    def priority(self, round_index: int) -> int:
        """This persona's priority in round ``round_index`` (0-based)."""
        return self.priorities[round_index]

    def chooses_write(self, round_index: int) -> bool:
        """True if this persona writes in sifting round ``round_index``."""
        return self.write_bits[round_index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Persona(value={self.value!r}, origin={self.origin})"
