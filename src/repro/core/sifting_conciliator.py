"""Algorithm 2: the sifting conciliator on multi-writer registers.

One register ``r_i`` per asynchronous round.  In round ``i`` each persona
either *writes* itself to ``r_i`` (with probability ``p_i``, a coin
pre-flipped into the persona's ``chooseWrite`` vector) or *reads* ``r_i``
and adopts whatever persona it sees (keeping its own only if the register is
still empty).  Exactly one operation per round, so individual step
complexity equals the round count.

Lemma 2 bounds the per-round survivor contraction for any ``p_i``; the tuned
schedule (:func:`repro.core.probabilities.sift_p`) contracts ``X`` to
``~2 sqrt(X)`` per round for the first ``ceil(log2 log2 n)`` rounds —
bringing the expected survivors under 8 — and then switches to ``p = 1/2``,
shrinking expectations by ``3/4`` per round (Lemma 4).  Total rounds
``R = ceil(log2 log2 n) + ceil(log_{4/3}(8/eps))`` give agreement with
probability ``1 - eps`` (Theorem 2).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence

from repro.core.conciliator import Conciliator
from repro.core.persona import Persona
from repro.core.probabilities import sift_p_schedule
from repro.core.rounds import sifting_rounds
from repro.errors import ConfigurationError
from repro.memory.register_array import RegisterArray
from repro.runtime.operations import Operation, Read, Write
from repro.runtime.process import ProcessContext

__all__ = ["SiftingConciliator"]


class SiftingConciliator(Conciliator):
    """Algorithm 2 with agreement probability ``1 - epsilon``.

    Args:
        n: number of processes.
        epsilon: target disagreement probability.
        rounds: override the round count (decay experiments).
        p_schedule: override the per-round write probabilities (the E10
            ablation compares the tuned schedule, the paper's printed
            equation (3), and fixed ``p = 1/2``).
        anonymous: drop the originating id from personae, as Section 3
            notes a real implementation may ("the id value is not used by
            the algorithm"); saves log n register bits
            (see :mod:`repro.analysis.space`).  Survivor instrumentation
            then counts (value, coins) classes instead of origins.
    """

    def __init__(
        self,
        n: int,
        epsilon: float = 0.5,
        *,
        rounds: Optional[int] = None,
        p_schedule: Optional[Sequence[float]] = None,
        anonymous: bool = False,
        name: str = "sifting-conciliator",
    ):
        super().__init__(n, name)
        self.epsilon = epsilon
        self.rounds = rounds if rounds is not None else sifting_rounds(n, epsilon)
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")
        if p_schedule is None:
            self.p_schedule: List[float] = sift_p_schedule(n, self.rounds)
        else:
            if len(p_schedule) != self.rounds:
                raise ConfigurationError(
                    f"p_schedule has {len(p_schedule)} entries for "
                    f"{self.rounds} rounds"
                )
            self.p_schedule = list(p_schedule)
        self.anonymous = anonymous
        self.registers = RegisterArray(f"{name}.r")

    def step_bound(self) -> int:
        """Exact individual step complexity: 1 per round."""
        return self.rounds

    def make_persona(self, ctx: ProcessContext, input_value: Any) -> Persona:
        """Draw the persona (chooseWrite bits + combine coin)."""
        origin = -1 if self.anonymous else ctx.pid
        return Persona.for_sifting(input_value, origin, ctx.rng, self.p_schedule)

    def persona_program(
        self, ctx: ProcessContext, input_value: Any
    ) -> Generator[Operation, Any, Persona]:
        persona = self.make_persona(ctx, input_value)
        self._record_initial(ctx.pid, persona)
        for round_index in range(self.rounds):
            register = self.registers[round_index]
            if persona.chooses_write(round_index):
                yield Write(register, persona)
            else:
                seen = yield Read(register)
                if seen is not None:
                    persona = seen
            self._record_round(round_index, ctx.pid, persona)
        return persona
