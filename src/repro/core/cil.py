"""The Chor–Israeli–Li proposal-register conciliator (Section 4's outer loop).

A single multi-writer register ``proposal`` starts empty.  Each process
loops: read ``proposal`` and return its value if non-empty; otherwise write
its own value there with probability ``1/(4n)`` (and otherwise just loop).

In isolation this is a conciliator with constant agreement probability:
once some process writes, each of the other ``n - 1`` processes overwrites
with probability at most ``1/(4n)`` before escaping, so by a union bound the
first value survives alone with probability ``> 3/4``.  Total work is O(n)
expected (each loop iteration independently shuts the protocol down with
probability ``1/(4n)``), but *individual* step complexity is unbounded —
which is exactly the gap Algorithm 3 closes by embedding a fast conciliator
in the idle branch.

The standalone class exists as a baseline (experiment E8) and as the
reference for testing the embedded version's outer mechanism.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.conciliator import Conciliator
from repro.core.persona import Persona
from repro.core.rounds import cil_write_probability
from repro.memory.register import AtomicRegister
from repro.runtime.operations import Operation, Read, Write
from repro.runtime.process import ProcessContext

__all__ = ["CILConciliator"]


class CILConciliator(Conciliator):
    """The bare CIL loop as a standalone conciliator."""

    def __init__(
        self,
        n: int,
        *,
        write_probability: Optional[float] = None,
        name: str = "cil-conciliator",
    ):
        super().__init__(n, name)
        self.write_probability = (
            write_probability
            if write_probability is not None
            else cil_write_probability(n)
        )
        self.proposal = AtomicRegister(f"{name}.proposal")

    def persona_program(
        self, ctx: ProcessContext, input_value: Any
    ) -> Generator[Operation, Any, Persona]:
        # The CIL mechanism flips per-step coins rather than per-value coins;
        # personae here exist only so the combine-stage coin can travel.
        mine = Persona(value=input_value, origin=ctx.pid, coin=ctx.rng.randrange(2))
        while True:
            seen = yield Read(self.proposal)
            if seen is not None:
                return seen
            if ctx.rng.random() < self.write_probability:
                yield Write(self.proposal, mine)
                return mine
