"""Conciliator interface and run helpers.

A **conciliator** (Section 1.2) keeps consensus's termination and validity
but weakens agreement to *probabilistic agreement*: for some fixed
``delta > 0`` and any adversary strategy, all return values are equal with
probability at least ``delta``.

Implementations expose two layers:

- :meth:`Conciliator.persona_program` — the real protocol, operating on
  :class:`~repro.core.persona.Persona` bundles and returning the surviving
  persona.  Algorithm 3 embeds inner conciliators at this layer so coin bits
  travel with values.
- :meth:`Conciliator.program` — the public entry point used as a process
  program: reads ``ctx.input_value``, runs the persona program, returns the
  bare value.

Conciliators also record, for experiment E1/E3, the persona each process
holds after each round (*local* bookkeeping — no shared-memory operations,
hence free in the step measure and invisible to the protocol itself).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence

from repro.core.persona import Persona
from repro.runtime.operations import Operation
from repro.runtime.process import ProcessContext
from repro.runtime.results import RunResult
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import Schedule
from repro.runtime.simulator import run_programs

__all__ = ["Conciliator", "run_conciliator"]


class Conciliator:
    """Base class for conciliator protocols."""

    name: str
    n: int

    def __init__(self, n: int, name: str):
        self.n = n
        self.name = name
        # _after_round[i][pid] = persona held by pid after finishing round i.
        self._after_round: Dict[int, Dict[int, Persona]] = {}
        # _initial[pid] = the persona pid generated before round 1.
        self._initial: Dict[int, Persona] = {}

    def persona_program(
        self, ctx: ProcessContext, input_value: Any
    ) -> Generator[Operation, Any, Persona]:
        """The protocol itself; yields operations, returns a persona."""
        raise NotImplementedError

    def program(
        self, ctx: ProcessContext
    ) -> Generator[Operation, Any, Any]:
        """Process program: run the conciliator on ``ctx.input_value``."""
        persona = yield from self.persona_program(ctx, ctx.input_value)
        return persona.value

    # ----- instrumentation -------------------------------------------------

    def _record_round(self, round_index: int, pid: int, persona: Persona) -> None:
        self._after_round.setdefault(round_index, {})[pid] = persona

    def _record_initial(self, pid: int, persona: Persona) -> None:
        self._initial[pid] = persona

    def personae_entering_round(self, round_index: int) -> List[Persona]:
        """Distinct personae held at the start of ``round_index`` (0-based)."""
        if round_index == 0:
            personae = self._initial.values()
        else:
            personae = self._after_round.get(round_index - 1, {}).values()
        return list(set(personae))

    def survivors_after_round(self, round_index: int) -> int:
        """Distinct personae held by processes after ``round_index``.

        This is the random variable ``Y_i`` of Lemmas 1 and 2, measured at
        each process's own round boundary.
        """
        personae = self._after_round.get(round_index, {})
        return len(set(personae.values()))

    def survivor_series(self) -> List[int]:
        """``Y_i`` for every recorded round, in round order."""
        return [
            self.survivors_after_round(index)
            for index in sorted(self._after_round)
        ]


def run_conciliator(
    conciliator: Conciliator,
    inputs: Sequence[Any],
    schedule: Schedule,
    seeds: SeedTree,
    *,
    record_trace: bool = False,
    step_limit: int = 50_000_000,
    hooks: Sequence[Any] = (),
    allow_partial: bool = False,
    skip_guard: Optional[int] = None,
    metrics: Optional[Any] = None,
) -> RunResult:
    """Run one conciliator execution: every process proposes its input.

    ``hooks`` attaches fault injectors and invariant monitors (see
    :mod:`repro.runtime.faults` and :mod:`repro.runtime.monitors`) to the
    underlying simulator; ``allow_partial``/``skip_guard`` support fault
    sweeps that deliberately crash or starve processes; ``metrics``
    optionally names a :class:`~repro.obs.metrics.MetricsRegistry` the run
    populates (surfaced on ``RunResult.metrics``).
    """
    programs = [conciliator.program] * len(inputs)
    return run_programs(
        programs,
        schedule,
        seeds,
        inputs=list(inputs),
        record_trace=record_trace,
        step_limit=step_limit,
        hooks=hooks,
        allow_partial=allow_partial,
        skip_guard=skip_guard,
        metrics=metrics,
    )
