"""Round-count and parameter formulas from the paper.

Every quantity here is taken directly from the text:

- Algorithm 1 runs ``R = log* n + ceil(log2(1/eps)) + 1`` rounds with
  priorities drawn from ``{1 .. ceil(R n^2 / eps)}`` (Section 2);
- Algorithm 2 runs ``R = ceil(log2 log2 n) + ceil(log_{4/3}(8/eps))`` rounds
  (Theorem 2), the first ``ceil(log2 log2 n)`` with the tuned probabilities
  of :mod:`repro.core.probabilities` and the rest with ``p = 1/2``;
- Algorithm 3 writes to the proposal register with probability ``1/(4n)``
  per loop iteration (Section 4).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = [
    "log_star",
    "ceil_log2",
    "ceil_log_log",
    "snapshot_rounds",
    "snapshot_priority_range",
    "sifting_switch_round",
    "sifting_rounds",
    "cil_write_probability",
]


def log_star(n: float) -> int:
    """The iterated logarithm: ``log* n = 0`` for ``n <= 1``, else
    ``1 + log*(log2 n)`` (Section 1.3)."""
    if n != n:  # NaN
        raise ConfigurationError("log* undefined for NaN")
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


def ceil_log2(x: float) -> int:
    """``ceil(log2 x)`` with exact handling of powers of two for ints."""
    if x <= 0:
        raise ConfigurationError(f"ceil_log2 needs x > 0, got {x}")
    if isinstance(x, int):
        return (x - 1).bit_length() if x > 1 else 0
    return max(0, math.ceil(math.log2(x)))


def ceil_log_log(n: int) -> int:
    """``ceil(log2 log2 n)``, the sifting switch point; 0 for ``n <= 2``."""
    if n < 1:
        raise ConfigurationError(f"ceil_log_log needs n >= 1, got {n}")
    if n <= 2:
        return 0
    return max(0, math.ceil(math.log2(math.log2(n))))


def snapshot_rounds(n: int, epsilon: float) -> int:
    """``R = log* n + ceil(log2(1/eps)) + 1`` for Algorithm 1."""
    _check(n, epsilon)
    return log_star(n) + math.ceil(math.log2(1.0 / epsilon)) + 1


def snapshot_priority_range(n: int, epsilon: float, rounds: int) -> int:
    """Priority range ``ceil(R n^2 / eps)`` for Algorithm 1.

    Chosen so a particular pair of personae collides in a given round with
    probability at most ``eps / (R n^2)``, giving total duplicate
    probability at most ``eps/2`` over all rounds and pairs.
    """
    _check(n, epsilon)
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    return math.ceil(rounds * n * n / epsilon)


def sifting_switch_round(n: int) -> int:
    """Number of tuned-probability rounds, ``ceil(log2 log2 n)``."""
    return ceil_log_log(n)


def sifting_rounds(n: int, epsilon: float) -> int:
    """``R = ceil(log2 log2 n) + ceil(log_{4/3}(8/eps))`` for Algorithm 2."""
    _check(n, epsilon)
    tail = math.ceil(math.log(8.0 / epsilon) / math.log(4.0 / 3.0))
    return sifting_switch_round(n) + tail


def cil_write_probability(n: int) -> float:
    """Per-iteration proposal write probability ``1/(4n)`` of Algorithm 3."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return 1.0 / (4.0 * n)


def _check(n: int, epsilon: float) -> None:
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
