"""Conciliator composition: chaining to boost agreement probability.

If conciliators C1, ..., Ck are run in sequence — each stage's output value
becomes the next stage's input — the chain is itself a conciliator, and its
disagreement probability is at most the *product* of the stages': once some
stage produces agreement, every later stage receives identical inputs and
validity forces it to preserve them.

This gives a second route (besides shrinking eps inside one conciliator) to
high-probability agreement, and a building block for mixing models — e.g. a
cheap sifting stage followed by a snapshot stage.  The independence needed
for the product bound holds because each stage draws fresh persona coins.
"""

from __future__ import annotations

from typing import Any, Generator, List, Sequence

from repro.core.conciliator import Conciliator
from repro.core.persona import Persona
from repro.errors import ConfigurationError
from repro.runtime.operations import Operation
from repro.runtime.process import ProcessContext

__all__ = ["ChainedConciliator"]


class ChainedConciliator(Conciliator):
    """Sequential composition of conciliators over the same n processes."""

    def __init__(self, stages: Sequence[Conciliator], name: str = "chained"):
        stages = list(stages)
        if not stages:
            raise ConfigurationError("a chain needs at least one stage")
        n = stages[0].n
        for stage in stages:
            if stage.n != n:
                raise ConfigurationError(
                    f"stage {stage.name} built for n={stage.n}, chain has n={n}"
                )
        super().__init__(n, name)
        self.stages: List[Conciliator] = stages

    def step_bound(self) -> int:
        """Worst-case steps: the sum over stages (when each defines one)."""
        return sum(stage.step_bound() for stage in self.stages)

    def persona_program(
        self, ctx: ProcessContext, input_value: Any
    ) -> Generator[Operation, Any, Persona]:
        value = input_value
        persona = None
        for stage in self.stages:
            persona = yield from stage.persona_program(ctx, value)
            value = persona.value
        assert persona is not None
        return persona
