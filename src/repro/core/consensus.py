"""Consensus from alternating conciliators and adopt-commit objects.

The framework of [5], restated in Section 1.2: each phase runs a conciliator
(which *creates* agreement with constant probability) followed by an
adopt-commit object (which *detects* it).  A process that sees
``(commit, v)`` decides ``v``; otherwise it carries the adopted value into
the next phase.

Why it is safe: coherence means a committed value is the value everyone
leaves that adopt-commit with, so the next conciliator sees identical
inputs, validity forces it to output that value, and convergence makes the
next adopt-commit commit it for everyone.  Why it is fast: each phase agrees
with probability at least ``delta = 1 - eps``, independently of the past, so
the number of phases is geometric with constant mean and the expected cost
per process is O(conciliator + adopt-commit).

Instantiations:

- :func:`snapshot_consensus` — Corollary 1: Algorithm 1 (eps = 1/2) with the
  O(1) snapshot adopt-commit; ``O(log* n)`` expected individual steps, any
  input domain.
- :func:`register_consensus` — Corollaries 2/3: Algorithm 2 (or Algorithm 3
  with ``linear_total_work=True``) with the flag adopt-commit over a known
  m-value domain; ``O(log log n + log m)`` expected individual steps (the
  paper's [9] object would shave a ``log log m`` factor off the second
  term).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Hashable, Optional, Sequence, Tuple

from repro.adoptcommit.base import AdoptCommitObject
from repro.adoptcommit.encoders import DomainEncoder
from repro.adoptcommit.flag_ac import FlagAdoptCommit
from repro.adoptcommit.snapshot_ac import SnapshotAdoptCommit
from repro.core.cil_embedded import CILEmbeddedConciliator
from repro.core.conciliator import Conciliator
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator
from repro.errors import ConfigurationError
from repro.runtime.operations import Operation
from repro.runtime.process import ProcessContext
from repro.runtime.results import RunResult
from repro.runtime.rng import SeedTree
from repro.runtime.scheduler import Schedule
from repro.runtime.simulator import run_programs

__all__ = [
    "ConsensusProtocol",
    "snapshot_consensus",
    "register_consensus",
    "run_consensus",
]

ConciliatorFactory = Callable[[int, int], Conciliator]
AdoptCommitFactory = Callable[[int, int], AdoptCommitObject]


class ConsensusProtocol:
    """Wait-free randomized consensus for ``n`` processes.

    Phases (a conciliator plus an adopt-commit object each) are materialized
    lazily, so the protocol is conceptually unbounded but only allocates
    what executions actually touch.

    Args:
        n: number of processes.
        conciliator_factory: ``(n, phase_index) -> Conciliator``.
        adopt_commit_factory: ``(n, phase_index) -> AdoptCommitObject``.
    """

    def __init__(
        self,
        n: int,
        conciliator_factory: ConciliatorFactory,
        adopt_commit_factory: AdoptCommitFactory,
        name: str = "consensus",
    ):
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        self.n = n
        self.name = name
        self._conciliator_factory = conciliator_factory
        self._adopt_commit_factory = adopt_commit_factory
        self._phases: Dict[int, Tuple[Conciliator, AdoptCommitObject]] = {}
        # pid -> number of phases that process executed (instrumentation).
        self.phases_used: Dict[int, int] = {}

    def phase(self, index: int) -> Tuple[Conciliator, AdoptCommitObject]:
        """The shared (conciliator, adopt-commit) pair for a phase."""
        if index not in self._phases:
            self._phases[index] = (
                self._conciliator_factory(self.n, index),
                self._adopt_commit_factory(self.n, index),
            )
        return self._phases[index]

    @property
    def phases_allocated(self) -> int:
        """How many phases any execution has touched so far."""
        return len(self._phases)

    def program(self, ctx: ProcessContext) -> Generator[Operation, Any, Any]:
        """Process program: decide on a value equal to some input."""
        decision = yield from self.decide_program(ctx, ctx.input_value)
        return decision

    def decide_program(
        self, ctx: ProcessContext, value: Any
    ) -> Generator[Operation, Any, Any]:
        """Run consensus as a sub-program with an explicit proposal.

        Used by protocols that embed consensus (e.g. the test-and-set
        backup), where the proposal is computed rather than taken from
        ``ctx.input_value``.
        """
        phase_index = 0
        while True:
            conciliator, adopt_commit = self.phase(phase_index)
            persona = yield from conciliator.persona_program(ctx, value)
            value = persona.value
            result = yield from adopt_commit.invoke(ctx, value)
            value = result.value
            phase_index += 1
            if result.committed:
                self.phases_used[ctx.pid] = phase_index
                return value


def snapshot_consensus(
    n: int,
    *,
    epsilon: float = 0.5,
    use_max_registers: bool = False,
    name: str = "snapshot-consensus",
) -> ConsensusProtocol:
    """Corollary 1: ``O(log* n)`` expected individual steps, snapshot model."""
    return ConsensusProtocol(
        n,
        conciliator_factory=lambda count, phase: SnapshotConciliator(
            count,
            epsilon=epsilon,
            use_max_registers=use_max_registers,
            name=f"{name}.conciliator[{phase}]",
        ),
        adopt_commit_factory=lambda count, phase: SnapshotAdoptCommit(
            count, name=f"{name}.ac[{phase}]"
        ),
        name=name,
    )


def register_consensus(
    n: int,
    value_domain: Sequence[Hashable],
    *,
    epsilon: float = 0.5,
    linear_total_work: bool = False,
    name: str = "register-consensus",
) -> ConsensusProtocol:
    """Corollaries 2 and 3: register-model consensus for m known values.

    With ``linear_total_work=True`` the conciliator is Algorithm 3
    (Corollary 3: O(n) expected total steps); otherwise plain Algorithm 2
    (Corollary 2).
    """
    domain = list(value_domain)

    def make_conciliator(count: int, phase: int) -> Conciliator:
        if linear_total_work:
            return CILEmbeddedConciliator(
                count, name=f"{name}.conciliator[{phase}]"
            )
        return SiftingConciliator(
            count, epsilon=epsilon, name=f"{name}.conciliator[{phase}]"
        )

    return ConsensusProtocol(
        n,
        conciliator_factory=make_conciliator,
        adopt_commit_factory=lambda count, phase: FlagAdoptCommit(
            count, DomainEncoder(domain), name=f"{name}.ac[{phase}]"
        ),
        name=name,
    )


def run_consensus(
    protocol: ConsensusProtocol,
    inputs: Sequence[Any],
    schedule: Schedule,
    seeds: SeedTree,
    *,
    record_trace: bool = False,
    step_limit: int = 50_000_000,
    hooks: Sequence[Any] = (),
    allow_partial: bool = False,
    skip_guard: Optional[int] = None,
    metrics: Optional[Any] = None,
) -> RunResult:
    """Run one consensus execution with the given input assignment.

    ``hooks`` attaches fault injectors and invariant monitors (see
    :mod:`repro.runtime.faults` and :mod:`repro.runtime.monitors`);
    ``allow_partial``/``skip_guard`` support fault sweeps that crash or
    starve processes on purpose.  ``metrics`` attaches a
    :class:`~repro.obs.metrics.MetricsRegistry` for the run.
    """
    if len(inputs) != protocol.n:
        raise ConfigurationError(
            f"{len(inputs)} inputs supplied for n={protocol.n} processes"
        )
    programs = [protocol.program] * protocol.n
    return run_programs(
        programs,
        schedule,
        seeds,
        inputs=list(inputs),
        record_trace=record_trace,
        step_limit=step_limit,
        hooks=hooks,
        allow_partial=allow_partial,
        skip_guard=skip_guard,
        metrics=metrics,
    )
