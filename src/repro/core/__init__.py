"""The paper's contribution: conciliators and consensus built from them."""

from repro.core.cil import CILConciliator
from repro.core.cil_embedded import CILEmbeddedConciliator, INNER_EPSILON
from repro.core.compose import ChainedConciliator
from repro.core.conciliator import Conciliator, run_conciliator
from repro.core.emulated_conciliator import EmulatedSnapshotConciliator
from repro.core.indirect_conciliator import IndirectSnapshotConciliator
from repro.core.consensus import (
    ConsensusProtocol,
    register_consensus,
    run_consensus,
    snapshot_consensus,
)
from repro.core.persona import Persona
from repro.core.probabilities import (
    SIFT_TAIL_FACTOR,
    iterate_snapshot_f,
    paper_sift_p,
    sift_p,
    sift_p_schedule,
    sift_x,
    snapshot_f,
)
from repro.core.rounds import (
    ceil_log2,
    ceil_log_log,
    cil_write_probability,
    log_star,
    sifting_rounds,
    sifting_switch_round,
    snapshot_priority_range,
    snapshot_rounds,
)
from repro.core.sifting_conciliator import SiftingConciliator
from repro.core.snapshot_conciliator import SnapshotConciliator

__all__ = [
    "Persona",
    "Conciliator",
    "run_conciliator",
    "SnapshotConciliator",
    "EmulatedSnapshotConciliator",
    "IndirectSnapshotConciliator",
    "ChainedConciliator",
    "SiftingConciliator",
    "CILConciliator",
    "CILEmbeddedConciliator",
    "INNER_EPSILON",
    "ConsensusProtocol",
    "snapshot_consensus",
    "register_consensus",
    "run_consensus",
    "log_star",
    "ceil_log2",
    "ceil_log_log",
    "snapshot_rounds",
    "snapshot_priority_range",
    "sifting_rounds",
    "sifting_switch_round",
    "cil_write_probability",
    "sift_x",
    "sift_p",
    "sift_p_schedule",
    "paper_sift_p",
    "snapshot_f",
    "iterate_snapshot_f",
    "SIFT_TAIL_FACTOR",
]
