"""Algorithm 1: the priority-based snapshot conciliator.

Each process bundles its input with a vector of ``R`` random priorities (one
per round) into a persona.  In round ``i`` it updates its component of the
round's snapshot object with its current persona, scans, and adopts the
persona with the highest round-``i`` priority among those it sees.

Lemma 1 shows each round shrinks the expected number of excess personae
``X`` to at most ``min(ln(X+1), X/2)`` — the left-to-right-maxima argument —
so ``R = log* n + ceil(log2(1/eps)) + 1`` rounds reach a unique survivor
with probability at least ``1 - eps`` (Theorem 1).  Every process takes
exactly ``2R`` steps (one update + one scan per round).

Footnote 1 of the paper notes that max registers suffice, because only the
maximum-priority persona in the view matters; ``use_max_registers=True``
selects that variant (one MaxWrite + one MaxRead per round, same step
count), and experiment E11 confirms the two variants behave alike.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.core.conciliator import Conciliator
from repro.core.persona import Persona
from repro.core.rounds import snapshot_priority_range, snapshot_rounds
from repro.errors import ConfigurationError
from repro.memory.max_register import MaxRegister
from repro.memory.register_array import SnapshotArray
from repro.runtime.operations import MaxRead, MaxWrite, Operation, Scan, Update
from repro.runtime.process import ProcessContext

__all__ = ["SnapshotConciliator"]


class SnapshotConciliator(Conciliator):
    """Algorithm 1 with agreement probability ``1 - epsilon``.

    Args:
        n: number of processes.
        epsilon: target disagreement probability (default 1/2, the setting
            used inside consensus in Corollary 1).
        rounds: override the round count ``R`` (for decay experiments that
            deliberately run extra or fewer rounds).
        priority_range: override the priority range (for the E9 ablation on
            duplicate priorities).
        use_max_registers: run the footnote-1 variant on max registers.
    """

    def __init__(
        self,
        n: int,
        epsilon: float = 0.5,
        *,
        rounds: Optional[int] = None,
        priority_range: Optional[int] = None,
        use_max_registers: bool = False,
        name: str = "snapshot-conciliator",
    ):
        super().__init__(n, name)
        self.epsilon = epsilon
        self.rounds = rounds if rounds is not None else snapshot_rounds(n, epsilon)
        if self.rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {self.rounds}")
        self.priority_range = (
            priority_range
            if priority_range is not None
            else snapshot_priority_range(n, epsilon, self.rounds)
        )
        self.use_max_registers = use_max_registers
        if use_max_registers:
            self._max_registers: List[MaxRegister] = [
                MaxRegister(f"{name}.M[{index}]") for index in range(self.rounds)
            ]
            self._arrays: Optional[SnapshotArray] = None
        else:
            self._arrays = SnapshotArray(n, f"{name}.A")
            self._max_registers = []

    def step_bound(self) -> int:
        """Exact individual step complexity: 2 per round."""
        return 2 * self.rounds

    def make_persona(self, ctx: ProcessContext, input_value: Any) -> Persona:
        """Draw the persona (priority vector + combine coin) for a process."""
        return Persona.for_snapshot(
            input_value, ctx.pid, ctx.rng, self.rounds, self.priority_range
        )

    def duplicate_priority_rounds(self) -> int:
        """Rounds in which two distinct entering personae shared a priority.

        This is the event D of Section 2; the paper's priority range is
        tuned so Pr[D] <= eps/2.  Used by the E9 ablation.
        """
        duplicates = 0
        for round_index in range(self.rounds):
            entering = self.personae_entering_round(round_index)
            priorities = [persona.priority(round_index) for persona in entering]
            if len(set(priorities)) != len(priorities):
                duplicates += 1
        return duplicates

    def persona_program(
        self, ctx: ProcessContext, input_value: Any
    ) -> Generator[Operation, Any, Persona]:
        persona = self.make_persona(ctx, input_value)
        self._record_initial(ctx.pid, persona)
        for round_index in range(self.rounds):
            if self.use_max_registers:
                persona = yield from self._max_register_round(round_index, persona)
            else:
                persona = yield from self._snapshot_round(
                    ctx.pid, round_index, persona
                )
            self._record_round(round_index, ctx.pid, persona)
        return persona

    def _snapshot_round(
        self, pid: int, round_index: int, persona: Persona
    ) -> Generator[Operation, Any, Persona]:
        assert self._arrays is not None
        array = self._arrays[round_index]
        yield Update(array, persona)
        view = yield Scan(array)
        candidates = [entry for entry in view if entry is not None]
        # Ties on priority are the duplicate event D, which the analysis
        # charges as failure; the protocol still needs a deterministic rule
        # shared by all processes, so break ties by origin id.
        return max(
            candidates,
            key=lambda entry: (entry.priority(round_index), entry.origin),
        )

    def _max_register_round(
        self, round_index: int, persona: Persona
    ) -> Generator[Operation, Any, Persona]:
        register = self._max_registers[round_index]
        # Keys order first by round priority, then by origin (deterministic
        # tiebreak); the persona rides along and is never itself compared,
        # because equal (priority, origin) implies the personae are equal.
        yield MaxWrite(
            register, (persona.priority(round_index), persona.origin, persona)
        )
        top = yield MaxRead(register)
        return top[2]
